#!/usr/bin/env python3
"""DoS mitigation lab: sweep flood rates against NGINX configurations.

Reproduces the Table 1 methodology and extends it into a full rate
sweep: for each attack rate, measure service availability with

  (a) 4 workers, no RETRY        (the paper's collapse case),
  (b) auto=128 workers, no RETRY (scale-out helps, then saturates),
  (c) 4 workers with RETRY       (stateless defense, +1 RTT).

Prints the availability crossover points — where each configuration
stops serving legitimate users.

Usage:  python examples/dos_mitigation_lab.py
"""

from repro.server import NginxConfig, NginxQuicServer, run_attack
from repro.util.render import format_table

RATES = [10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000]
TEST_SECONDS = 120.0


def availability(config: NginxConfig, rate: float) -> float:
    server = NginxQuicServer(config)
    requests = int(rate * TEST_SECONDS)
    row = run_attack(server, rate_pps=rate, total_requests=requests)
    return row.legit_availability


def main() -> None:
    configs = {
        "4 workers": NginxConfig(workers=4),
        "auto=128": NginxConfig.auto(),
        "4 workers + RETRY": NginxConfig(workers=4, retry_enabled=True),
    }
    rows = []
    crossover = {name: None for name in configs}
    for rate in RATES:
        row = [f"{rate:,}"]
        for name, config in configs.items():
            avail = availability(config, rate)
            row.append(f"{avail * 100:.0f}%")
            if avail < 0.5 and crossover[name] is None:
                crossover[name] = rate
        rows.append(row)

    print(
        format_table(
            ["attack pps"] + list(configs),
            rows,
            title=f"Legitimate-client availability under Initial floods ({TEST_SECONDS:.0f}s tests)",
        )
    )
    print()
    for name, rate in crossover.items():
        if rate is None:
            print(f"{name}: never drops below 50% in this sweep")
        else:
            print(f"{name}: drops below 50% availability at {rate:,} pps")
    print()
    print("paper context: a 1 max-pps telescope flood extrapolates to ~512 pps")
    print("Internet-wide; the paper extrapolates its largest event (27 pps at")
    print("the /9) to ~13,824 pps — enough to take down the 4-worker setup")
    print("and stress auto=128, while RETRY holds at every rate (+1 RTT).")


if __name__ == "__main__":
    main()
