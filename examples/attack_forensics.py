#!/usr/bin/env python3
"""Attack forensics: dissect one victim's multi-vector campaign.

Drills into the DoS half of the paper the way an analyst would after
the pipeline has flagged attacks:

1. run the pipeline over a day of telescope traffic;
2. pick the most multi-vector victim and lay out its timeline
   (the Figure 11 view);
3. extrapolate each flood's telescope rate to the Internet-wide rate
   with confidence bands (the 512x arithmetic of Section 5.2) and
   compare against the NGINX collapse thresholds of Table 1;
4. export the full result set as CSV/JSON for external plotting.

Usage:  python examples/attack_forensics.py [export_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import QuicsandPipeline
from repro.core.export import export_results
from repro.core.extrapolate import TelescopeExtrapolator
from repro.net.addresses import format_ipv4
from repro.server import NginxConfig
from repro.telescope import Scenario
from repro.telescope.presets import demo
from repro.util.render import format_table
from repro.util.timeutil import HOUR


def main() -> None:
    export_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "quicsand_forensics"
    )
    scenario = Scenario(demo(seed=616, duration=12 * HOUR, research_sample=1 / 512))
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    print("analyzing 12 hours of telescope traffic ...")
    result = pipeline.process(scenario.packets())
    extrapolator = TelescopeExtrapolator(scenario.telescope.prefix)

    # the busiest multi-vector victim
    best_victim, best_score = None, -1
    for item in result.multivector.correlated:
        rows = result.multivector.victim_timeline(item.attack.victim_ip)
        quic = sum(1 for r in rows if r[0] == "quic")
        other = len(rows) - quic
        if quic >= 2 and other >= 1 and quic + 2 * other > best_score:
            best_victim, best_score = item.attack.victim_ip, quic + 2 * other
    if best_victim is None:
        print("no multi-vector victim in this window; try another seed")
        return

    record = scenario.internet.census.get(best_victim)
    print(f"\nvictim {format_ipv4(best_victim)} "
          f"({record.provider if record else 'unknown'}, "
          f"{record.versions[0] if record else '-'})\n")

    timeline = result.multivector.victim_timeline(best_victim)
    start0 = timeline[0][1]
    print(
        format_table(
            ["vector", "start [+min]", "end [+min]", "category"],
            [
                [vec, f"{(s - start0) / 60:.1f}", f"{(e - start0) / 60:.1f}", cat]
                for vec, s, e, cat in timeline
            ],
            title="Campaign timeline (the Figure 11 view)",
        )
    )

    nginx4 = NginxConfig(workers=4).sustainable_handshake_rate
    nginx128 = NginxConfig.auto().sustainable_handshake_rate
    rows = []
    for attack in result.quic_attacks:
        if attack.victim_ip != best_victim:
            continue
        estimate = extrapolator.attack_rate(attack)
        danger = (
            "kills 4-worker NGINX" if estimate.estimated_pps > nginx4 * 4
            else "stresses 4 workers" if estimate.estimated_pps > nginx4
            else "survivable"
        )
        rows.append(
            [
                f"{attack.duration:.0f}s",
                attack.packet_count,
                f"{attack.max_pps:.2f}",
                f"{estimate.estimated_pps:,.0f} [{estimate.low_pps:,.0f}-{estimate.high_pps:,.0f}]",
                danger,
            ]
        )
    print()
    print(
        format_table(
            ["duration", "packets", "telescope pps", "Internet-wide pps (95% CI)", "vs Table 1"],
            rows,
            title=f"QUIC floods on this victim, extrapolated x{int(extrapolator.factor)} "
            f"(4-worker NGINX sustains ~{nginx4:.0f} hs/s, auto=128 ~{nginx128:.0f})",
        )
    )

    files = export_results(result, export_dir)
    print(f"\nexported {len(files)} data files to {export_dir}")


if __name__ == "__main__":
    main()
