#!/usr/bin/env python3
"""Quickstart: generate six hours of telescope traffic and analyze it.

Runs the full QUICsand loop end to end:

1. build a synthetic Internet (content providers, eyeball bots,
   research scanners) and a /9 network telescope;
2. generate the telescope's capture for a six-hour window — research
   sweeps, bot scans, spoofed-flood backscatter, misconfiguration noise;
3. run the analysis pipeline (classify -> sessionize -> detect floods
   -> correlate multi-vector attacks -> audit RETRY);
4. print the headline numbers next to the paper's.

Usage:  python examples/quickstart.py [seed]
"""

import sys

from repro.core import QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.render import format_table
from repro.util.timeutil import HOUR


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 20210401
    config = ScenarioConfig(seed=seed, duration=6 * HOUR, research_sample=1 / 256)
    scenario = Scenario(config)
    print(f"telescope: {scenario.telescope.prefix} "
          f"(1/{int(scenario.telescope.extrapolation_factor)} of IPv4)")
    print(f"planned QUIC floods: {len(scenario.plan.quic_floods)}, "
          f"TCP/ICMP floods: {len(scenario.plan.common_floods)}")

    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    print("analyzing the capture (single streaming pass)...")
    result = pipeline.process(scenario.packets())

    victims = result.victim_analysis
    shares = result.multivector.category_shares()
    print()
    print(
        format_table(
            ["metric", "paper (April 2021)", "this run (6 h synthetic)"],
            [
                ["packets captured", "92M", f"{result.total_packets:,}"],
                ["research scanner share", "98.5%", f"{result.research_share * 100:.1f}% (sampled)"],
                ["request share (sanitized)", "15%", f"{result.request_share * 100:.0f}%"],
                ["QUIC floods detected", "2905 (~4/hour)", f"{len(result.quic_attacks)} (~{len(result.quic_attacks) / 6:.1f}/hour)"],
                ["share of response sessions", "11%", f"{result.quic_detector.detection_rate * 100:.0f}%"],
                ["victims are known QUIC servers", "98%", f"{victims.known_server_share * 100:.0f}%"],
                ["attacks on Google / Facebook", "58% / 25%",
                 f"{victims.provider_share('Google') * 100:.0f}% / {victims.provider_share('Facebook') * 100:.0f}%"],
                ["concurrent / sequential / isolated", "51% / 40% / 9%",
                 f"{shares['concurrent'] * 100:.0f}% / {shares['sequential'] * 100:.0f}% / {shares['isolated'] * 100:.0f}%"],
                ["RETRY observed", "never", "never" if not result.retry_audit.retry_deployed else "yes (!)"],
            ],
            title="QUICsand quickstart — paper vs this run",
        )
    )


if __name__ == "__main__":
    main()
