#!/usr/bin/env python3
"""A custom measurement campaign with pcap round-trip.

Demonstrates the workflow a darknet operator would use with this
library on *real* captures:

1. configure a campaign (window, telescope size, attack intensity);
2. record the telescope feed to a pcap file — real wire bytes with
   correct checksums, readable by any pcap tool;
3. re-read the pcap and run the pipeline on it (proving the analysis
   is agnostic to whether packets come from the simulator or a file);
4. report per-figure results and dump the detected attack list.

Usage:  python examples/telescope_campaign.py [output.pcap]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import QuicsandPipeline
from repro.net.addresses import format_ipv4
from repro.net.pcap import read_pcap
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.attacks import AttackPlanConfig
from repro.util.render import format_table
from repro.util.timeutil import HOUR


def main() -> None:
    if len(sys.argv) > 1:
        pcap_path = Path(sys.argv[1])
    else:
        pcap_path = Path(tempfile.gettempdir()) / "quicsand_campaign.pcap"

    # An intense three-hour campaign: double the paper's flood rate.
    config = ScenarioConfig(
        seed=7,
        duration=3 * HOUR,
        research_sample=1 / 512,
        attacks=AttackPlanConfig(quic_floods_per_hour=8.0, common_floods_per_hour=10.0),
    )
    scenario = Scenario(config)

    print(f"recording capture to {pcap_path} ...")
    count = scenario.telescope.capture_to_pcap(scenario.packets(), pcap_path)
    size_mb = pcap_path.stat().st_size / 1e6
    print(f"wrote {count:,} packets ({size_mb:.1f} MB)")

    print("re-reading pcap and analyzing ...")
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    result = pipeline.process(read_pcap(pcap_path))

    print()
    print(
        format_table(
            ["class", "packets"],
            sorted(result.class_counts.items(), key=lambda kv: -kv[1]),
            title="Packet classification (port + dissector)",
        )
    )

    rows = []
    for attack in sorted(result.quic_attacks, key=lambda a: a.start)[:15]:
        record = scenario.internet.census.get(attack.victim_ip)
        rows.append(
            [
                format_ipv4(attack.victim_ip),
                record.provider if record else "unknown",
                f"{attack.duration:.0f}s",
                attack.packet_count,
                f"{attack.max_pps:.2f}",
                f"{attack.max_pps * scenario.telescope.extrapolation_factor:.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["victim", "provider", "duration", "packets", "max pps", "est. Internet pps"],
            rows,
            title=f"Detected QUIC floods (first 15 of {len(result.quic_attacks)})",
        )
    )
    print(f"\npcap kept at {pcap_path}")


if __name__ == "__main__":
    main()
