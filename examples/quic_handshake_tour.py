#!/usr/bin/env python3
"""A wire-level tour of the QUIC handshakes the paper measures.

Walks through the exact packet exchanges behind the paper's analysis,
dissecting every datagram with the same dissector the telescope
pipeline uses:

1. the typical 1-RTT handshake of Figure 1 (Initial/ClientHello ->
   Initial+Handshake coalesced, Handshake -> client Finished);
2. a RETRY handshake — the resource-exhaustion defense of Section 2;
3. a version negotiation (the 3-RTT worst case);
4. what a *telescope* sees of all this: why backscatter Initials have
   zero-length DCIDs and no visible ClientHello.

Usage:  python examples/quic_handshake_tour.py
"""

from repro.core.dissect import QuicDissector
from repro.quic import ClientConnection, ServerConnection
from repro.quic.versions import DRAFT_29, QUIC_V1
from repro.util.rng import SeededRng

DISSECTOR = QuicDissector()


def show(label: str, datagram: bytes) -> None:
    dissection = DISSECTOR.dissect(datagram)
    parts = []
    for packet in dissection.packets:
        name = packet.packet_type.name
        extra = ""
        if packet.has_plain_client_hello:
            extra = f" [ClientHello, SNI={packet.client_hello_sni}]"
        elif packet.packet_type.name == "RETRY":
            extra = f" [token {packet.token_length}B]"
        scid = packet.scid.hex() or "-"
        dcid = packet.dcid.hex() or "(len 0)"
        parts.append(f"{name} v={packet.version_name} dcid={dcid} scid={scid}{extra}")
    print(f"  {label:<22} {len(datagram):>5}B  " + " | ".join(parts))


def ferry(client, server, max_rounds=6):
    pending = [client.initial_datagram()]
    show("client -> Initial", pending[0])
    for _ in range(max_rounds):
        if not pending:
            break
        next_pending = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, 0x0A000001, 4433, now=1.0):
                show("server ->", response.data)
                for reply in client.handle_datagram(response.data):
                    show("client ->", reply.data)
                    next_pending.append(reply.data)
        pending = next_pending
    return client.result()


def main() -> None:
    rng = SeededRng(20210401)

    print("1) typical 1-RTT handshake (Figure 1)")
    result = ferry(
        ClientConnection(rng.child("c1"), server_name="cdn.example"),
        ServerConnection(rng.child("s1")),
    )
    print(f"   => completed={result.completed}, round-trips={result.round_trips}\n")

    print("2) RETRY handshake (address validation before server state)")
    result = ferry(
        ClientConnection(rng.child("c2")),
        ServerConnection(rng.child("s2"), retry_enabled=True),
    )
    print(f"   => completed={result.completed}, retries={result.retries_seen}, "
          f"round-trips={result.round_trips} (one extra)\n")

    print("3) version negotiation (client offers draft-29, server speaks v1)")
    result = ferry(
        ClientConnection(rng.child("c3"), version=DRAFT_29,
                         supported_versions=(DRAFT_29, QUIC_V1)),
        ServerConnection(rng.child("s3"), supported_versions=(QUIC_V1,)),
    )
    print(f"   => completed={result.completed} on {result.version.name}, "
          f"round-trips={result.round_trips} (the 3-RTT worst case)\n")

    print("4) the telescope's view of a spoofed flood")
    client = ClientConnection(rng.child("c4"))
    server = ServerConnection(rng.child("s4"))
    responses = server.handle_datagram(client.initial_datagram(), 0x2C000001, 50000, now=0.0)
    print("   a victim answers a spoofed Initial with this train:")
    for response in responses:
        show("backscatter ->", response.data)
    print("   note: DCID length 0 (the paper's validity check) and no")
    print("   plaintext ClientHello — these are ServerHello replies, which")
    print("   is how Section 6 validates the attack patterns.")


if __name__ == "__main__":
    main()
