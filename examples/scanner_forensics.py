#!/usr/bin/env python3
"""Scanner forensics: who is probing UDP/443, and how?

The reconnaissance half of the paper (Section 5.1): identify the
research scanners dominating QUIC IBR, profile their sweep behaviour,
and contextualize the remaining scan sources with honeypot intel.

The script runs two passes over the same deterministic capture — the
first to find the heavy hitters, the second to profile them — which is
exactly how one would work with an on-disk pcap.

Usage:  python examples/scanner_forensics.py
"""

from collections import Counter

from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.extrapolate import TelescopeExtrapolator
from repro.core.scanprofile import ScanProfiler
from repro.net.addresses import format_ipv4
from repro.telescope import Scenario, ScenarioConfig
from repro.util.render import format_table
from repro.util.timeutil import DAY


def main() -> None:
    config = ScenarioConfig(seed=404, duration=1 * DAY, research_sample=1 / 256)
    scenario = Scenario(config)
    extrapolator = TelescopeExtrapolator(scenario.telescope.prefix)

    # pass 1: count QUIC request packets per source
    print("pass 1: finding UDP/443 scan sources ...")
    classifier = TrafficClassifier()
    per_source = Counter()
    for packet in scenario.packets():
        if classifier.classify(packet).packet_class is PacketClass.QUIC_REQUEST:
            per_source[packet.src] += 1
    heavy_hitters = [src for src, count in per_source.most_common(10)]

    # pass 2: profile the heavy hitters
    print("pass 2: profiling the top sources ...\n")
    profiler = ScanProfiler(heavy_hitters, scenario.telescope.prefix, sweep_gap=7200.0)
    for packet in scenario.packets():
        profiler.observe(packet)

    weight = scenario.truth.research_weight
    rows = []
    for source in heavy_hitters:
        profile = profiler.profile(source)
        if profile is None or not profile.packet_count:
            continue
        verdict = profiler.classify(source, min_coverage_per_sweep=0.4 / weight)
        system = scenario.internet.registry.lookup(source)
        greynoise = scenario.internet.greynoise.query(source)
        interval = profile.sweep_interval()
        rows.append(
            [
                format_ipv4(source),
                system.name if system else "unrouted",
                profile.packet_count,
                profile.sweep_count,
                f"{interval / 3600:.1f}h" if interval else "-",
                f"{profile.coverage(scenario.telescope.prefix) * weight:.1f}x" ,
                "RESEARCH" if verdict.is_research_sweep else "other",
                greynoise.actor if greynoise else "-",
            ]
        )
    print(
        format_table(
            ["source", "AS", "packets", "sweeps", "period", "coverage", "class", "GreyNoise"],
            rows,
            title="Top UDP/443 scan sources (coverage rescaled by sweep sampling)",
        )
    )

    research = [r for r in rows if r[6] == "RESEARCH"]
    research_packets = sum(r[2] for r in research) * weight
    other_packets = sum(count for count in per_source.values()) - sum(
        r[2] for r in research
    )
    print()
    print(f"research sweeps: {len(research)} sources, "
          f"~{int(research_packets):,} packets/day at full scale "
          f"(paper: 98.5% of QUIC IBR from 2 universities)")
    print(f"other scan traffic: {other_packets:,} packets/day "
          f"from {len(per_source) - len(research)} sources")
    sweep = extrapolator.scan_packets_per_sweep()
    print(f"one full-IPv4 sweep delivers {sweep:,} packets to this telescope "
          f"(2^32 / {int(extrapolator.factor)})")

    research_sources = {
        p.source for p in profiler.profiles()
        if (v := profiler.classify(p.source, min_coverage_per_sweep=0.4 / weight))
        and v.is_research_sweep
    }
    summary = scenario.internet.greynoise.classify_sources(
        src for src in per_source if src not in research_sources
    )
    print(f"GreyNoise on non-research sources: {summary}")


if __name__ == "__main__":
    main()
