"""FIG4 — influence of the session timeout on the number of sessions.

Paper: sweeping the inactivity timeout from 1 to 60 minutes shows a
significant reduction until ~5 minutes (the knee, chosen as the
threshold); the lower bound is the timeout=infinity grouping (one
session per source).
"""

from repro.util.render import format_table, sparkline


def _fig4(result):
    sweep = result.timeout_sweep
    series = sweep.sweep(range(1, 61))
    return series, sweep.knee_minutes(), sweep.source_count


def test_fig4_timeout_sweep(result, emit, benchmark):
    series, knee, floor = benchmark(_fig4, result)
    counts = [count for _m, count in series]
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["chosen knee", "~5 minutes", f"{knee:.0f} minutes"],
            ["sessions @ 1 min", "(high)", f"{counts[0]:,}"],
            ["sessions @ 5 min", "(knee)", f"{counts[4]:,}"],
            ["sessions @ 60 min", "(flat)", f"{counts[-1]:,}"],
            ["floor (timeout = inf)", "(one per source)", f"{floor:,}"],
        ],
        title="Figure 4 — session count vs timeout",
    )
    chart = "sessions(1..60 min): " + sparkline(counts)
    emit("fig4_timeout", table + "\n\n" + chart)
    assert counts[0] > counts[4] >= counts[-1] >= floor
    drop_to_knee = counts[0] - counts[4]
    drop_after = counts[4] - counts[-1]
    assert drop_to_knee > drop_after  # the knee sits at/before 5 minutes
    assert 2 <= knee <= 10
