"""Streaming monitor: throughput, alert latency, and peak memory.

Engineering benchmark for :mod:`repro.stream` (not a paper figure).
Measures exact-mode :class:`StreamAnalyzer` packets/second against the
serial batch pipeline on the same capture — the per-batch watermark
sweep and per-packet detector hook are the streaming overhead, and the
acceptance bound is that they cost at most half the batch rate — plus
the median/maximum event-time alert latency (watermark at the emitting
batch minus the threshold-crossing packet's timestamp).  Separate
``tracemalloc``-traced runs record the peak allocation of each analyzer
mode (exact / bounded / sketch) so the trajectory captures the memory
story alongside the throughput one; the traced runs are never the
timed runs.  Results are appended to the
``benchmarks/out/BENCH_stream.json`` trajectory (schema 2; rows written
by schema 1 are backfilled with nulls for the new columns).
"""

import json
import statistics
import time
import tracemalloc
from pathlib import Path

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.stream import StreamAnalyzer, StreamConfig
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR

BATCH_SIZE = 512
ROUNDS = 3
TRAJECTORY = Path(__file__).parent / "out" / "BENCH_stream.json"
TRAJECTORY_SCHEMA = 2
#: every key a schema-2 row carries; older rows are backfilled with
#: nulls so consumers can index columns without per-row key checks.
TRAJECTORY_KEYS = (
    "unix_time",
    "packets",
    "batch_size",
    "batch_pps",
    "stream_pps",
    "stream_vs_batch",
    "alerts",
    "median_alert_latency_s",
    "max_alert_latency_s",
    "peak_mem_exact_kb",
    "peak_mem_bounded_kb",
    "peak_mem_sketch_kb",
)


def _correlation(scenario):
    return dict(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )


def _run_batch(scenario, packets):
    pipeline = QuicsandPipeline(**_correlation(scenario), config=AnalysisConfig())
    return pipeline.process(iter(packets))


def _run_stream(scenario, packets, stream_config=None):
    analyzer = StreamAnalyzer(
        **_correlation(scenario),
        config=AnalysisConfig(),
        stream_config=stream_config or StreamConfig(),
    )
    for _event in analyzer.events(batched(iter(packets), BATCH_SIZE)):
        pass
    return analyzer


def _peak_memory_kb(fn):
    """Peak tracemalloc allocation of one run, in KiB.  Traced runs are
    slow (every allocation is hooked) — never reuse them for timing."""
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / 1024)


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    # normalize: every row carries the full schema-2 key set, extra
    # keys from future revisions are preserved as-is
    runs = [
        {**{key: run.get(key) for key in TRAJECTORY_KEYS}, **run} for run in runs
    ]
    TRAJECTORY.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": runs}, indent=2) + "\n"
    )


def _timed(fn, rounds=ROUNDS):
    best = None
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return value, best


def test_stream_latency(emit):
    config = ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 512)
    scenario = Scenario(config)
    packets = list(scenario.packets())

    batch_result, batch_time = _timed(lambda: _run_batch(scenario, packets))
    analyzer, stream_time = _timed(lambda: _run_stream(scenario, packets))

    batch_rate = len(packets) / batch_time
    stream_rate = len(packets) / stream_time
    ratio = stream_rate / batch_rate

    latencies = [alert.latency for alert in analyzer.alerts]
    median_latency = statistics.median(latencies) if latencies else 0.0
    max_latency = max(latencies) if latencies else 0.0

    peaks = {
        mode: _peak_memory_kb(
            lambda mode=mode: _run_stream(
                scenario, packets, StreamConfig(mode=mode)
            )
        )
        for mode in ("exact", "bounded", "sketch")
    }

    _append_trajectory(
        {
            "unix_time": round(time.time()),
            "packets": len(packets),
            "batch_size": BATCH_SIZE,
            "batch_pps": round(batch_rate),
            "stream_pps": round(stream_rate),
            "stream_vs_batch": round(ratio, 3),
            "alerts": len(latencies),
            "median_alert_latency_s": round(median_latency, 2),
            "max_alert_latency_s": round(max_latency, 2),
            "peak_mem_exact_kb": peaks["exact"],
            "peak_mem_bounded_kb": peaks["bounded"],
            "peak_mem_sketch_kb": peaks["sketch"],
        }
    )
    emit(
        "stream_latency",
        f"packets streamed: {len(packets):,}  (batch size: {BATCH_SIZE})\n"
        f"batch pipeline:   {batch_rate:,.0f} packets/s\n"
        f"stream analyzer:  {stream_rate:,.0f} packets/s  "
        f"({ratio:.2f}x batch)\n"
        f"flood alerts: {len(latencies)}  "
        f"median latency: {median_latency:.1f} s  max: {max_latency:.1f} s\n"
        f"(event-time latency: threshold crossing -> emitting batch "
        f"watermark; shrink --batch-size to trade throughput for it)\n"
        f"peak allocation (tracemalloc): exact {peaks['exact']:,} KiB  "
        f"bounded {peaks['bounded']:,} KiB  sketch {peaks['sketch']:,} KiB",
    )

    # the monitor must alert on this capture, and every alert must map
    # to a batch-detected attack
    attacks = batch_result.quic_attacks + batch_result.common_attacks
    assert len(latencies) == len(attacks) > 0
    assert all(latency >= 0.0 for latency in latencies)
    # acceptance bound: streaming >= 0.5x batch serial throughput
    assert ratio >= 0.5, f"streaming overhead too high: {ratio:.2f}x batch"
    assert all(peak > 0 for peak in peaks.values())
