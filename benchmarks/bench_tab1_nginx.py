"""TAB1 — NGINX DoS resiliency under replayed Initial floods.

Paper: on a 128-core machine, 4 NGINX workers collapse to 68% service
at 100 pps and 7% at 1000 pps; auto=128 workers survive 1000 pps but
fall to 26% at 10k and 100k pps; RETRY restores 100% availability at
every rate for the cost of one extra round-trip.
"""

from repro.server import run_table1, table1_rows
from repro.server.nginx import AUTO_WORKERS
from repro.util.render import format_table

PAPER_AVAILABILITY = {
    (10, False, 4): 1.00,
    (100, False, 4): 0.68,
    (1_000, False, 4): 0.07,
    (1_000, False, AUTO_WORKERS): 1.00,
    (10_000, False, AUTO_WORKERS): 0.26,
    (100_000, False, AUTO_WORKERS): 0.26,
    (1_000, True, 4): 1.00,
    (10_000, True, 4): 1.00,
    (100_000, True, 4): 1.00,
}


def test_tab1_nginx_resiliency(emit, benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    headers, table = table1_rows(rows)
    comparison_rows = []
    for row in rows:
        paper = PAPER_AVAILABILITY[(int(row.volume_pps), row.retry, row.workers)]
        comparison_rows.append(
            [
                f"{int(row.volume_pps):,}",
                "yes" if row.retry else "no",
                "auto=128" if row.workers == AUTO_WORKERS else row.workers,
                f"{paper * 100:.0f}%",
                f"{row.availability * 100:.0f}%",
            ]
        )
    comparison = format_table(
        ["pps", "retry", "workers", "paper avail.", "measured avail."],
        comparison_rows,
        title="Table 1 — paper vs measured availability",
    )
    emit("tab1_nginx", format_table(headers, table, title="Table 1 — full columns") + "\n\n" + comparison)
    for row in rows:
        paper = PAPER_AVAILABILITY[(int(row.volume_pps), row.retry, row.workers)]
        assert abs(row.availability - paper) < 0.12, (
            f"{row.volume_pps} pps retry={row.retry} workers={row.workers}: "
            f"paper {paper}, measured {row.availability:.2f}"
        )
