"""FIG3 — QUIC packets by type: requests vs responses per hour.

Paper: after removing research scanners, 15% of QUIC packets are
requests and 85% responses; requests follow a stable diurnal pattern
with peaks at 06:00 and 18:00 UTC while responses are erratic
(flood-driven).
"""

from repro.util.render import format_table, sparkline
from repro.util.timeutil import HOUR


def _fig3(result):
    hours = sorted(set(result.hourly_requests) | set(result.hourly_responses))
    requests = [result.hourly_requests.get(h, 0) for h in hours]
    responses = [result.hourly_responses.get(h, 0) for h in hours]
    # hour-of-day profile of requests (diurnal check)
    profile = [0.0] * 24
    for hour, count in result.hourly_requests.items():
        profile[int(hour % 24)] += count
    peak_hours = sorted(range(24), key=lambda h: profile[h], reverse=True)[:4]
    # burstiness: coefficient of variation of the hourly series
    def cov(series):
        if not series:
            return 0.0
        mean = sum(series) / len(series)
        if mean == 0:
            return 0.0
        var = sum((x - mean) ** 2 for x in series) / len(series)
        return var ** 0.5 / mean

    return requests, responses, peak_hours, cov(requests), cov(responses)


def test_fig3_traffic_types(result, emit, benchmark):
    requests, responses, peak_hours, cov_req, cov_resp = benchmark(_fig3, result)
    share = result.request_share
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["request share (sanitized)", "15%", f"{share * 100:.1f}%"],
            ["response share (sanitized)", "85%", f"{(1 - share) * 100:.1f}%"],
            ["request peak hours (UTC)", "6:00, 18:00", ", ".join(f"{h}:00" for h in sorted(peak_hours[:2]))],
            ["requests: hourly CoV (stable)", "low", f"{cov_req:.2f}"],
            ["responses: hourly CoV (erratic)", "high", f"{cov_resp:.2f}"],
        ],
        title="Figure 3 — QUIC packets by type",
    )
    chart = (
        "requests/h : " + sparkline(requests) + "\n"
        "responses/h: " + sparkline(responses)
    )
    emit("fig3_traffic_types", table + "\n\n" + chart)
    assert 0.05 < share < 0.35
    assert cov_resp > cov_req  # responses are the erratic series
    assert set(peak_hours) & {5, 6, 7, 17, 18, 19}
