"""A5 (ablation) — how much telescope does this methodology need?

The paper's detection hinges on the UCSD /9 seeing 1/512 of randomly
spoofed traffic ("we are thus able to capture at least 2 permil of any
horizontal scan or randomly spoofed attack").  This ablation re-runs
identical Internet-wide attack populations against smaller darknets:
the observable per-flood rate shrinks with the prefix, pushing events
under the fixed Moore thresholds.  A /16 telescope misses nearly every
QUIC flood the /9 catches.
"""

from dataclasses import replace

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.internet.topology import TopologyConfig
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.attacks import AttackPlanConfig
from repro.util.render import format_table
from repro.util.timeutil import HOUR

PREFIXES = (9, 12, 16)
BASE_PREFIX = 9  # attack rates in AttackPlanConfig are calibrated for a /9


def _scenario_for(prefix_len: int) -> Scenario:
    scale = 2.0 ** (BASE_PREFIX - prefix_len)  # < 1 for smaller telescopes
    base = AttackPlanConfig()
    attacks = replace(
        base,
        quic_rate_median=base.quic_rate_median * scale,
        quic_min_rate=base.quic_min_rate * scale,
        quic_max_rate=base.quic_max_rate * scale,
        common_rate_median=base.common_rate_median * scale,
        common_min_rate=base.common_min_rate * scale,
        common_max_rate=base.common_max_rate * scale,
        common_floods_per_hour=4.0,
    )
    return Scenario(
        ScenarioConfig(
            seed=777,
            duration=8 * HOUR,
            research_sample=1.0 / 4096,
            topology=TopologyConfig(telescope_cidr=f"44.0.0.0/{prefix_len}"),
            attacks=attacks,
        )
    )


def _a5():
    rows = []
    for prefix_len in PREFIXES:
        scenario = _scenario_for(prefix_len)
        pipeline = QuicsandPipeline(
            registry=scenario.internet.registry,
            census=scenario.internet.census,
            config=AnalysisConfig(retry_probe_count=0),
        )
        result = pipeline.process(scenario.packets())
        planned = len(scenario.plan.quic_floods)
        detected = len(result.quic_attacks)
        rows.append(
            (
                prefix_len,
                scenario.telescope.extrapolation_factor,
                planned,
                detected,
                detected / planned if planned else 0.0,
            )
        )
    return rows


def test_a5_telescope_size(emit, benchmark):
    rows = benchmark.pedantic(_a5, rounds=1, iterations=1)
    table = format_table(
        ["telescope", "extrapolation", "planned QUIC floods", "detected", "recall"],
        [
            [f"/{p}", f"x{int(f):,}", planned, detected, f"{recall * 100:.0f}%"]
            for p, f, planned, detected, recall in rows
        ],
        title="Ablation A5 — detection vs telescope size "
        "(identical Internet-wide attack population)",
    )
    emit("a5_telescope_size", table)
    recalls = {p: recall for p, _f, _pl, _d, recall in rows}
    assert recalls[9] > 0.6
    assert recalls[9] > recalls[12] > recalls[16]
    assert recalls[16] < 0.25
