"""FIG12 (Appendix C) — attack overlap of multi-vector attacks.

Paper: three quarters of concurrent QUIC attacks run completely in
parallel with a TCP/ICMP attack (overlap share 1.0 in the CDF); on
average concurrent QUIC attacks share 95% of their attack time with
common attacks.
"""

from repro.util.render import cdf_points, format_table
from repro.util.stats import EmpiricalCdf


def _fig12(result):
    shares = result.multivector.overlap_shares
    if not shares:
        return None, 0.0, 0.0
    cdf = EmpiricalCdf(shares)
    full = sum(1 for s in shares if s >= 0.999) / len(shares)
    mean = sum(shares) / len(shares)
    return cdf, full, mean


def test_fig12_overlap_shares(result, emit, benchmark):
    cdf, full, mean = benchmark(_fig12, result)
    assert cdf is not None, "no concurrent attacks detected"
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["fully parallel concurrent attacks", "75%", f"{full * 100:.0f}%"],
            ["mean overlap share", "95%", f"{mean * 100:.0f}%"],
            ["concurrent attacks", "(n)", str(len(cdf))],
        ],
        title="Figure 12 — overlap share of concurrent QUIC attacks",
    )
    chart = "overlap-share CDF:\n" + cdf_points(cdf.steps())
    emit("fig12_overlap", table + "\n\n" + chart)
    assert full > 0.5
    assert mean > 0.75
