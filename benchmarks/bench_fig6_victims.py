"""FIG6 — CDF of attacks per QUIC flood victim.

Paper: 2905 attacks against 394 unique victims; more than half of the
victims are attacked exactly once, with a heavy tail of repeatedly
attacked servers (the last five data points highlighted in the figure).
98% of attacks target known QUIC servers.
"""

from repro.net.addresses import format_ipv4
from repro.util.render import cdf_points, format_table
from repro.util.stats import EmpiricalCdf


def _fig6(result):
    analysis = result.victim_analysis
    counts = analysis.attacks_per_victim_sorted()
    cdf = EmpiricalCdf(counts) if counts else None
    return analysis, counts, cdf


def test_fig6_attacks_per_victim(result, emit, benchmark):
    analysis, counts, cdf = benchmark(_fig6, result)
    assert cdf is not None, "no attacks detected"
    top = [
        f"{format_ipv4(ip)}: {n}" for ip, n in analysis.top_victims(5)
    ]
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["attacks", "2905 (month)", f"{analysis.attack_count} ({'window-scaled'})"],
            ["unique victims", "394 (month)", str(analysis.victim_count)],
            ["victims attacked once", ">50%", f"{analysis.single_attack_victim_share * 100:.0f}%"],
            ["attacks on known QUIC servers", "98%", f"{analysis.known_server_share * 100:.0f}%"],
            ["top-5 victims (attacks)", "(highlighted)", "; ".join(top)],
        ],
        title="Figure 6 — attacks per victim",
    )
    chart = "CDF of attacks per victim:\n" + cdf_points(cdf.steps())
    emit("fig6_victims", table + "\n\n" + chart)
    assert analysis.single_attack_victim_share > 0.4
    assert analysis.known_server_share > 0.85
