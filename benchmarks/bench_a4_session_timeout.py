"""A4 (ablation) — attack detection vs session-timeout choice.

The paper picks the 5-minute knee of Figure 4 as the sessionization
timeout.  This ablation re-sessionizes the same capture under different
timeouts and re-runs flood detection, showing the detected-attack count
is stable around the knee: too-short timeouts fragment pulsed floods
below the 25-packet/60-second thresholds, while longer timeouts merge
distinct floods on the same victim.
"""

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.render import format_table
from repro.util.timeutil import HOUR, MINUTE

TIMEOUTS_MINUTES = (0.5, 1.0, 5.0, 15.0, 60.0)


def _a4():
    scenario = Scenario(
        ScenarioConfig(duration=8 * HOUR, research_sample=1.0 / 2048)
    )
    packets = list(scenario.packets())
    rows = []
    for minutes in TIMEOUTS_MINUTES:
        pipeline = QuicsandPipeline(
            registry=scenario.internet.registry,
            census=scenario.internet.census,
            config=AnalysisConfig(
                session_timeout=minutes * MINUTE, retry_probe_count=0
            ),
        )
        result = pipeline.process(iter(packets))
        rows.append(
            (
                minutes,
                len(result.response_sessions),
                len(result.quic_attacks),
                result.victim_analysis.victim_count,
            )
        )
    return rows, len(scenario.plan.quic_floods)


def test_a4_session_timeout(emit, benchmark):
    rows, planned = benchmark.pedantic(_a4, rounds=1, iterations=1)
    table = format_table(
        ["timeout [min]", "response sessions", "detected attacks", "victims"],
        [[f"{m:g}", s, a, v] for m, s, a, v in rows],
        title=f"Ablation A4 — detection vs session timeout (planned floods: {planned})",
    )
    emit("a4_session_timeout", table)
    by_timeout = {m: (s, a, v) for m, s, a, v in rows}
    # session counts shrink monotonically with the timeout
    session_counts = [s for _m, s, _a, _v in rows]
    assert session_counts == sorted(session_counts, reverse=True)
    # detection at the paper's 5-minute knee is close to the plan
    assert by_timeout[5.0][1] >= 0.6 * planned
    # and not catastrophically different one step to either side
    assert by_timeout[15.0][1] >= 0.8 * by_timeout[5.0][1]
