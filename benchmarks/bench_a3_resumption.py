"""A3 (ablation) — RETRY's round-trip penalty amortized by resumption.

Section 6: providers leave RETRY off "potentially due to the
performance penalty", but "for frequently utilized services ... this
penalty could be alleviated by the session resumption feature".  This
bench measures it: handshake round-trips against a RETRY-enabled server
for (a) fresh clients, (b) clients resuming with a NEW_TOKEN address
token, and (c) resuming clients that additionally ship 0-RTT data.
"""

from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.resumption import SessionCache
from repro.util.render import format_table
from repro.util.rng import SeededRng

CLIENTS = 40


def _run(client, server, ip=0x0A000001):
    pending = [client.initial_datagram()]
    for _ in range(8):
        if not pending:
            break
        nxt = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, ip, 4433, now=100.0):
                for reply in client.handle_datagram(response.data):
                    nxt.append(reply.data)
        pending = nxt
    return client.result()


def _a3():
    rng = SeededRng(33)
    server = ServerConnection(rng.child("server"), retry_enabled=True)
    cache = SessionCache()
    fresh_rts, resumed_rts, zero_rtt_rts = [], [], []
    for i in range(CLIENTS):
        first = ClientConnection(
            rng.child(f"fresh{i}"), server_name="svc.example", session_cache=cache
        )
        result = _run(first, server)
        assert result.completed
        fresh_rts.append(result.round_trips)

        state = cache.lookup("svc.example")
        resumed = ClientConnection(
            rng.child(f"resumed{i}"), server_name="svc.example", resumption=state
        )
        result = _run(resumed, server)
        assert result.completed
        resumed_rts.append(result.round_trips)

        early = ClientConnection(
            rng.child(f"early{i}"),
            server_name="svc.example",
            resumption=state,
            early_data=b"GET / HTTP/3",
        )
        result = _run(early, server)
        assert result.completed and result.used_0rtt
        zero_rtt_rts.append(result.round_trips)
    return fresh_rts, resumed_rts, zero_rtt_rts, server.stats


def test_a3_retry_resumption(emit, benchmark):
    fresh, resumed, zero_rtt, stats = benchmark.pedantic(_a3, rounds=1, iterations=1)

    def mean(xs):
        return sum(xs) / len(xs)

    table = format_table(
        ["client", "mean handshake RTs", "RETRY round-trips paid"],
        [
            ["fresh (no session state)", f"{mean(fresh):.2f}", "every connection"],
            ["resuming (NEW_TOKEN)", f"{mean(resumed):.2f}", "none"],
            ["resuming + 0-RTT data", f"{mean(zero_rtt):.2f}", "none, data in flight 0"],
        ],
        title="Ablation A3 — RETRY penalty vs session resumption "
        "(Section 6: the penalty 'could be alleviated by session resumption')",
    )
    note = (
        f"server: retries sent {stats['retries_sent']}, handshakes "
        f"{stats['handshakes']}, 0-RTT accepted {stats['zero_rtt_accepted']}"
    )
    emit("a3_resumption", table + "\n" + note)
    assert mean(fresh) == 2.0  # RETRY costs the extra round-trip
    assert mean(resumed) == 1.0  # token skips it entirely
    assert mean(zero_rtt) == 1.0
    assert stats["zero_rtt_accepted"] == CLIENTS
