"""Federation: merge throughput and vantage lag vs fleet size.

Engineering benchmark for :mod:`repro.federate` (not a paper figure).
One capture is generated once and fanned out to K in-process vantages
(K in {1, 2, 4}) tiling the /9 by destination prefix; each spools its
frame stream to disk and the aggregator consumes and merges them.  We
report, per K,

- vantage wall time (the K per-tile analysis passes, run serially
  here so the number is comparable across K);
- spool decode rate (frames and MiB through ``SpoolReader``);
- merge throughput: global packets through
  ``merge_federated_states`` + finalization per second;
- cross-telescope dedup hits and the worst per-vantage event-time lag
  behind the federation horizon.

The hard gate is the equivalence pin re-asserted from the bench seat:
every K must render the byte-identical global report.  Results append
to ``benchmarks/out/BENCH_federation.json``; ``REPRO_BENCH_QUICK=1``
shrinks the window for CI and skips the append.
"""

import json
import os
import time
from pathlib import Path

from repro.core import QuicsandPipeline
from repro.core.pipeline import AnalysisConfig
from repro.core.report import build_report
from repro.federate import (
    Aggregator,
    SpoolWriter,
    Vantage,
    VantageConfig,
    tile_prefixes,
)
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

TRAJECTORY = Path(__file__).parent / "out" / "BENCH_federation.json"
TRAJECTORY_SCHEMA = 1
#: every key a schema-1 row carries; older rows are backfilled with
#: nulls so consumers can index columns without per-row key checks.
TRAJECTORY_KEYS = (
    "unix_time",
    "seed",
    "hours",
    "packets",
    "fleets",
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SEED = 11
SCENARIO_HOURS = 1.0 if QUICK else 2.0
SNAPSHOT_EVERY = 900.0
FLEETS = (1, 2, 4)

SCENARIO_KW = dict(
    seed=SEED,
    duration=SCENARIO_HOURS * HOUR,
    research_sample=1 / 2048,
)


def _aggregator(scenario):
    return Aggregator(
        QuicsandPipeline(
            registry=scenario.internet.registry,
            census=scenario.internet.census,
            greynoise=scenario.internet.greynoise,
            config=AnalysisConfig(),
        ),
        research_weight=scenario.truth.research_weight,
    )


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    runs = [
        {**{key: run.get(key) for key in TRAJECTORY_KEYS}, **run} for run in runs
    ]
    TRAJECTORY.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": runs}, indent=2) + "\n"
    )


def test_federation_merge_throughput(emit, tmp_path):
    # one capture, fanned out: every fleet size sees identical packets
    shared_packets = list(Scenario(ScenarioConfig(**SCENARIO_KW)).packets())

    fleets = []
    reports = {}
    for vantages in FLEETS:
        spool = tmp_path / f"k{vantages}"
        spool.mkdir()
        tiles = tile_prefixes("44.0.0.0/9", vantages)

        t0 = time.perf_counter()
        for index, tile in enumerate(tiles):
            vantage = Vantage(
                VantageConfig(
                    name=f"v{index}",
                    prefix=str(tile),
                    snapshot_every=SNAPSHOT_EVERY,
                    scenario=ScenarioConfig(**SCENARIO_KW),
                    analysis=AnalysisConfig(),
                )
            )
            with SpoolWriter(str(spool), f"v{index}") as writer:
                vantage.run(writer, packets=shared_packets)
        vantage_seconds = time.perf_counter() - t0

        scenario = Scenario(ScenarioConfig(**SCENARIO_KW))
        aggregator = _aggregator(scenario)
        t0 = time.perf_counter()
        aggregator.consume_spool(str(spool))
        consume_seconds = time.perf_counter() - t0
        frames = sum(s.frames for s in aggregator.streams)
        spool_bytes = sum(p.stat().st_size for p in spool.glob("*.qsf"))

        fed = aggregator.federate()
        reports[vantages] = build_report(
            fed.global_result, research_weight=scenario.truth.research_weight
        )
        max_lag = max(
            fed.global_result.window_end - result.window_end
            for result in fed.vantage_results.values()
        )
        fleets.append(
            {
                "vantages": vantages,
                "vantage_seconds": round(vantage_seconds, 4),
                "consume_seconds": round(consume_seconds, 4),
                "spool_frames": frames,
                "spool_mib": round(spool_bytes / 2**20, 3),
                "merge_seconds": round(fed.merge_seconds, 4),
                "merge_pps": round(
                    fed.global_result.total_packets / fed.merge_seconds
                ),
                "dedup_hits": fed.dedup_hits,
                "global_floods": len(fed.global_floods),
                "max_lag_seconds": round(max_lag, 1),
            }
        )

    # the bench-seat equivalence gate: fleet size never changes a byte
    for vantages in FLEETS[1:]:
        assert reports[vantages] == reports[FLEETS[0]], (
            f"K={vantages} report diverges from K={FLEETS[0]}"
        )
    by_k = {row["vantages"]: row for row in fleets}
    assert by_k[1]["dedup_hits"] == 0, "a lone vantage has nothing to dedup"
    assert all(row["merge_pps"] > 0 for row in fleets)
    # more tiles -> more interim snapshots on the wire
    assert by_k[4]["spool_frames"] > by_k[1]["spool_frames"]

    packets = len(shared_packets)
    lines = [
        f"seed: {SEED}  window: {SCENARIO_HOURS:g} h  "
        f"generated packets: {packets:,}  snapshot every {SNAPSHOT_EVERY:g}s",
        f"{'K':>3}  {'vantage s':>9}  {'decode s':>8}  {'frames':>6}  "
        f"{'MiB':>6}  {'merge s':>8}  {'merge pps':>9}  {'dedup':>5}  "
        f"{'lag s':>6}",
    ]
    for row in fleets:
        lines.append(
            f"{row['vantages']:>3}  {row['vantage_seconds']:>9.3f}  "
            f"{row['consume_seconds']:>8.3f}  {row['spool_frames']:>6}  "
            f"{row['spool_mib']:>6.2f}  {row['merge_seconds']:>8.4f}  "
            f"{row['merge_pps']:>9,}  {row['dedup_hits']:>5}  "
            f"{row['max_lag_seconds']:>6.1f}"
        )
    lines.append("global reports byte-identical across fleet sizes: yes")
    emit("federation_merge_throughput", "\n".join(lines))

    if not QUICK:
        _append_trajectory(
            {
                "unix_time": round(time.time()),
                "seed": SEED,
                "hours": SCENARIO_HOURS,
                "packets": packets,
                "fleets": fleets,
            }
        )
