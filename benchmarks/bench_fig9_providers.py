"""FIG9 — attack properties per content provider (Google vs Facebook).

Paper: >83% of attacks target the two providers.  Floods spoof few
client addresses but randomize ports; port randomization drives SCID
allocation.  Google reacts with more SCIDs despite a lower packet count
(higher per-packet server load); backscatter shows mvfst-draft-27 (95%)
for Facebook and draft-29 (78%) for Google.
"""

from repro.util.render import format_table


def _fig9(result):
    out = {}
    for name in ("Google", "Facebook"):
        profile = result.profiles.get(name)
        if profile is None or not profile.attack_count:
            continue
        out[name] = {
            "attacks": profile.attack_count,
            "packets": profile.median("packet_count"),
            "client_ips": profile.median("unique_client_ips"),
            "client_ports": profile.median("unique_client_ports"),
            "scids": profile.median("unique_scids"),
            "version": profile.dominant_version(),
        }
    return out


def test_fig9_provider_fingerprints(result, emit, benchmark):
    data = benchmark(_fig9, result)
    assert "Google" in data and "Facebook" in data
    google, facebook = data["Google"], data["Facebook"]
    rows = [
        ["attacks", google["attacks"], facebook["attacks"]],
        ["median packets", f"{google['packets']:.0f}", f"{facebook['packets']:.0f}"],
        ["median spoofed client IPs", f"{google['client_ips']:.0f}", f"{facebook['client_ips']:.0f}"],
        ["median spoofed client ports", f"{google['client_ports']:.0f}", f"{facebook['client_ports']:.0f}"],
        ["median SCIDs", f"{google['scids']:.0f}", f"{facebook['scids']:.0f}"],
        [
            "dominant version (paper: d-29 78% / mvfst-27 95%)",
            f"{google['version'][0]} {google['version'][1] * 100:.0f}%",
            f"{facebook['version'][0]} {facebook['version'][1] * 100:.0f}%",
        ],
    ]
    table = format_table(
        ["property (median per attack)", "Google", "Facebook"],
        rows,
        title="Figure 9 — provider attack fingerprints",
    )
    share = (
        result.victim_analysis.provider_share("Google")
        + result.victim_analysis.provider_share("Facebook")
    )
    note = f"attacks on the two providers: paper >83%, measured {share * 100:.0f}%"
    emit("fig9_providers", table + "\n" + note)
    # shape: ports >> ips for both; Google more SCIDs despite fewer packets
    assert google["client_ports"] > google["client_ips"]
    assert facebook["client_ports"] > facebook["client_ips"]
    assert google["scids"] > facebook["scids"]
    assert google["packets"] < facebook["packets"]
    assert google["version"][0] == "draft-29"
    assert facebook["version"][0] == "mvfst-draft-27"
    assert share > 0.7
