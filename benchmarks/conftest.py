"""Shared fixtures for the figure/table benchmarks.

One paper-scale scenario is generated and analyzed once per benchmark
session; each bench then times its figure-specific computation and
prints a paper-vs-measured comparison.  Rendered figures are also
written to ``benchmarks/out/`` so they survive pytest's capture.

Environment knobs:

- ``REPRO_BENCH_HOURS``  — measurement window length (default 24).
- ``REPRO_BENCH_SEED``   — scenario seed (default 20210401).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.core import QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

OUT_DIR = Path(__file__).parent / "out"

BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "24"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210401"))


@pytest.fixture(scope="session")
def scenario():
    config = ScenarioConfig(
        seed=BENCH_SEED,
        duration=BENCH_HOURS * HOUR,
        research_sample=1.0 / 64.0,
    )
    return Scenario(config)


@pytest.fixture(scope="session")
def result(scenario):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    return pipeline.process(scenario.packets())


_EMISSIONS: list = []


@pytest.fixture(scope="session")
def emit():
    """Record a rendered figure: persisted under benchmarks/out/ and
    printed in the terminal summary (pytest's fd capture would swallow
    a plain print)."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        _EMISSIONS.append((name, text))
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def pytest_terminal_summary(terminalreporter):
    if not _EMISSIONS:
        return
    terminalreporter.section("paper figures and tables (also in benchmarks/out/)")
    for name, text in _EMISSIONS:
        terminalreporter.write_line(f"\n=== {name} ===")
        terminalreporter.write_line(text)
