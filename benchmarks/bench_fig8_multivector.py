"""FIG8 — multi-vector attacks: QUIC floods vs TCP/ICMP floods.

Paper: 51% of QUIC floods overlap in time (≥1 s) with a common flood on
the same victim (concurrent / multi-vector), another 40% hit a victim
that also saw common floods at other times (sequential), and only 9%
are unrelated to any TCP/ICMP event.
"""

from repro.util.render import bar_chart, format_table


def _fig8(result):
    return result.multivector.category_shares(), result.multivector.by_category()


def test_fig8_multivector(result, emit, benchmark):
    shares, counts = benchmark(_fig8, result)
    table = format_table(
        ["category", "paper", "measured", "count"],
        [
            ["concurrent", "51%", f"{shares['concurrent'] * 100:.0f}%", counts["concurrent"]],
            ["sequential", "40%", f"{shares['sequential'] * 100:.0f}%", counts["sequential"]],
            ["isolated", "9%", f"{shares['isolated'] * 100:.0f}%", counts["isolated"]],
        ],
        title="Figure 8 — multi-vector attack classification",
    )
    chart = bar_chart(
        ["concurrent", "sequential", "isolated"],
        [shares["concurrent"], shares["sequential"], shares["isolated"]],
        title="category shares",
    )
    emit("fig8_multivector", table + "\n\n" + chart)
    assert shares["concurrent"] > 0.35
    assert shares["sequential"] > 0.2
    assert shares["isolated"] < 0.3
    assert shares["concurrent"] > shares["isolated"]
