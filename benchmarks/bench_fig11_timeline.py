"""FIG11 (Appendix C) — attacks towards a single victim.

Paper: an illustrative victim first sees one QUIC and one TCP/ICMP
attack concurrently (a multi-vector attack with near-perfect overlap),
followed by several sequential QUIC floods.  The bench renders the
timeline of the victim with the richest attack mix.
"""

from repro.net.addresses import format_ipv4
from repro.util.render import format_table


def _fig11(result):
    best_victim, best_rows, best_score = None, [], -1
    for item in result.multivector.correlated:
        victim = item.attack.victim_ip
        rows = result.multivector.victim_timeline(victim)
        quic_rows = sum(1 for r in rows if r[0] == "quic")
        common_rows = len(rows) - quic_rows
        score = min(quic_rows, 5) + 2 * min(common_rows, 3)
        if quic_rows >= 2 and common_rows >= 1 and score > best_score:
            best_victim, best_rows, best_score = victim, rows, score
    return best_victim, best_rows


def test_fig11_victim_timeline(result, emit, benchmark):
    victim, rows = benchmark(_fig11, result)
    assert victim is not None, "no victim with a multi-vector timeline"
    start0 = rows[0][1]
    rendered = format_table(
        ["vector", "start [+h]", "end [+h]", "category"],
        [
            [vector, f"{(s - start0) / 3600:.2f}", f"{(e - start0) / 3600:.2f}", cat]
            for vector, s, e, cat in rows
        ],
        title=f"Figure 11 — timeline for victim {format_ipv4(victim)} "
        "(paper: one concurrent multi-vector attack, then sequential QUIC floods)",
    )
    emit("fig11_timeline", rendered)
    vectors = [r[0] for r in rows]
    assert vectors.count("quic") >= 2
    assert any(v in ("tcp", "icmp") for v in vectors)
