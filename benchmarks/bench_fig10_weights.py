"""FIG10 (Appendix B) — DoS threshold weight sweep.

Paper: scaling the Moore et al. thresholds by a weight w (relaxed w<1,
stricter w>1) shows many low-volume events excluded for w <= 0.3, yet
even at w = 10 QUIC attacks remain, and the share of attacks hitting
well-known content providers stays high for every w.
"""

from repro.core.dos import weight_sweep
from repro.util.render import format_table

WEIGHTS = (0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0)


def _fig10(result, census):
    rows = []
    for weight, detector in weight_sweep(result.response_sessions, WEIGHTS):
        attacks = detector.attacks
        known = sum(1 for a in attacks if census.is_known_quic_server(a.victim_ip))
        share = known / len(attacks) if attacks else 0.0
        rows.append((weight, len(attacks), share))
    return rows


def test_fig10_threshold_weights(result, scenario, emit, benchmark):
    rows = benchmark(_fig10, result, scenario.internet.census)
    table = format_table(
        ["weight w", "detected attacks", "content-provider share"],
        [[f"{w:.1f}", n, f"{share * 100:.0f}%"] for w, n, share in rows],
        title="Figure 10 — detected attacks vs threshold weight "
        "(paper: attacks persist at w=10, content share stays high)",
    )
    emit("fig10_weights", table)
    counts = [n for _w, n, _s in rows]
    assert counts == sorted(counts, reverse=True)
    by_weight = {w: (n, share) for w, n, share in rows}
    assert by_weight[0.1][0] > by_weight[1.0][0]  # relaxed finds low-volume events
    assert by_weight[10.0][0] >= 1  # attacks persist at the strictest setting
    for w, (n, share) in by_weight.items():
        if n:
            assert share > 0.7, f"content share collapsed at w={w}"
