"""Scenario-matrix throughput: every registered scenario, gen + analyze.

Engineering benchmark for the :data:`repro.telescope.presets.SCENARIOS`
registry (not a paper figure).  Every registered scenario — the four
isolated IBR classes and each adversarial family — is generated and
analyzed once, and we report

- generation throughput (captured packets per second of wall clock);
- analysis throughput (pipeline packets per second over the captured
  stream, so the two timings share the exact same input);
- the registry size itself, so scenario count becomes a tracked axis
  alongside throughput — a new scenario that tanks the matrix shows up
  in the trajectory, not just in CI wall-clock.

Results append to the ``benchmarks/out/BENCH_scenarios.json``
trajectory.  ``REPRO_BENCH_QUICK=1`` shrinks the windows for CI and
skips the append.
"""

import json
import os
import time
from pathlib import Path

from repro.core import QuicsandPipeline
from repro.telescope import Scenario
from repro.telescope.presets import (
    adversarial_scenario_names,
    get_scenario,
    scenario_config,
    scenario_names,
)
from repro.util.timeutil import HOUR

TRAJECTORY = Path(__file__).parent / "out" / "BENCH_scenarios.json"
TRAJECTORY_SCHEMA = 1
#: every key a schema-1 row carries; older rows are backfilled with
#: nulls so consumers can index columns without per-row key checks.
TRAJECTORY_KEYS = (
    "unix_time",
    "scenario_count",
    "adversarial_count",
    "packets",
    "gen_seconds",
    "analyze_seconds",
    "gen_pps",
    "analyze_pps",
    "rows",
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: quick mode shrinks every scenario window to a common short slice;
#: full mode runs each preset at its registered duration.
QUICK_DURATION = HOUR / 6


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    # normalize: every row carries the full schema-1 key set, extra
    # keys from future revisions are preserved as-is
    runs = [
        {**{key: run.get(key) for key in TRAJECTORY_KEYS}, **run} for run in runs
    ]
    TRAJECTORY.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": runs}, indent=2) + "\n"
    )


def _bench_one(name):
    config = (
        scenario_config(name, duration=QUICK_DURATION)
        if QUICK
        else scenario_config(name)
    )
    scenario = Scenario(config)

    t0 = time.perf_counter()
    packets = list(scenario.packets())
    gen_seconds = time.perf_counter() - t0

    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    t0 = time.perf_counter()
    result = pipeline.process(iter(packets))
    analyze_seconds = time.perf_counter() - t0

    return {
        "scenario": name,
        "adversarial": get_scenario(name).adversarial,
        "packets": len(packets),
        "attacks": len(result.quic_attacks) + len(result.common_attacks),
        "gen_seconds": round(gen_seconds, 4),
        "analyze_seconds": round(analyze_seconds, 4),
        "gen_pps": round(len(packets) / gen_seconds) if gen_seconds else 0,
        "analyze_pps": (
            round(len(packets) / analyze_seconds) if analyze_seconds else 0
        ),
    }


def test_scenario_matrix_throughput(emit):
    names = scenario_names()
    adversarial = adversarial_scenario_names()
    # the registry is the tracked axis: the matrix must keep covering
    # the IBR classes and at least the five adversarial families
    assert len(adversarial) >= 5, adversarial
    assert len(names) >= len(adversarial) + 4, names

    rows = [_bench_one(name) for name in names]
    packets_total = sum(row["packets"] for row in rows)
    gen_total = sum(row["gen_seconds"] for row in rows)
    analyze_total = sum(row["analyze_seconds"] for row in rows)
    assert packets_total > 0
    assert all(row["packets"] > 0 for row in rows), rows

    lines = [
        f"scenarios: {len(names)} registered ({len(adversarial)} "
        f"adversarial)  mode: {'quick' if QUICK else 'full'}  "
        f"packets: {packets_total:,}",
        f"{'scenario':>18}  {'adv':>3}  {'packets':>8}  {'attacks':>7}  "
        f"{'gen pps':>9}  {'analyze pps':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:>18}  {'yes' if row['adversarial'] else '':>3}  "
            f"{row['packets']:>8,}  {row['attacks']:>7}  "
            f"{row['gen_pps']:>9,}  {row['analyze_pps']:>11,}"
        )
    lines.append(
        f"totals: generate {gen_total:.2f} s, analyze {analyze_total:.2f} s "
        f"({packets_total / (gen_total + analyze_total):,.0f} pps end to end)"
    )
    emit("scenario_matrix", "\n".join(lines))

    if not QUICK:
        _append_trajectory(
            {
                "unix_time": round(time.time()),
                "scenario_count": len(names),
                "adversarial_count": len(adversarial),
                "packets": packets_total,
                "gen_seconds": round(gen_total, 4),
                "analyze_seconds": round(analyze_total, 4),
                "gen_pps": (
                    round(packets_total / gen_total) if gen_total else 0
                ),
                "analyze_pps": (
                    round(packets_total / analyze_total)
                    if analyze_total
                    else 0
                ),
                "rows": rows,
            }
        )
