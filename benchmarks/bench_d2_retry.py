"""D2 (Section 6) — RETRY attack mitigation is not deployed.

Paper: no RETRY packets captured passively; actively connecting to the
ten most-attacked Google/Facebook servers yields no RETRY either —
the providers support the mechanism but deliberately leave it off.
"""

from repro.net.addresses import format_ipv4
from repro.util.render import format_table


def _d2(result):
    audit = result.retry_audit
    return audit


def test_d2_retry_audit(result, scenario, emit, benchmark):
    audit = benchmark(_d2, result)
    assert audit is not None
    probe_rows = [
        [
            format_ipv4(p.address),
            p.provider,
            "yes" if p.handshake_completed else "no",
            "yes" if p.retry_received else "no",
            p.round_trips,
        ]
        for p in audit.probes
    ]
    probes = format_table(
        ["victim", "provider", "handshake", "retry seen", "RTs"],
        probe_rows,
        title="Active probes of the most-attacked servers",
    )
    summary = format_table(
        ["metric", "paper", "measured"],
        [
            ["RETRY packets in backscatter", "0", str(audit.passive_retry_packets)],
            ["QUIC backscatter packets checked", "(all)", f"{audit.passive_quic_packets:,}"],
            ["active probes returning RETRY", "0 / 10", f"{sum(1 for p in audit.probes if p.retry_received)} / {len(audit.probes)}"],
            ["providers support RETRY", "yes (unused)", str(all(r.supports_retry for r in scenario.internet.census.all_records()))],
        ],
        title="Section 6 — RETRY deployment audit",
    )
    emit("d2_retry", summary + "\n\n" + probes)
    assert not audit.retry_deployed
    assert audit.passive_retry_packets == 0
    assert len(audit.probes) >= 5
    assert all(p.handshake_completed for p in audit.probes)
