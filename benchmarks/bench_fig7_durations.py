"""FIG7 — CDFs of flood durations and intensities, QUIC vs TCP/ICMP.

Paper: QUIC floods are shorter (median 255 s vs 1499 s) but the median
intensity is ~1 max-pps for both — as severe as classical backscatter
events.  Extrapolating with the /9 coverage, 1 max-pps at the telescope
is ~512 pps toward the victim.
"""

from repro.util.render import cdf_points, format_table
from repro.util.stats import EmpiricalCdf


def _fig7(result):
    quic_durations = [a.duration for a in result.quic_attacks]
    common_durations = [a.duration for a in result.common_attacks]
    quic_pps = [a.max_pps for a in result.quic_attacks]
    common_pps = [a.max_pps for a in result.common_attacks]
    return (
        EmpiricalCdf(quic_durations),
        EmpiricalCdf(common_durations),
        EmpiricalCdf(quic_pps),
        EmpiricalCdf(common_pps),
    )


def test_fig7_durations_intensities(result, emit, benchmark):
    quic_dur, common_dur, quic_pps, common_pps = benchmark(_fig7, result)
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["median QUIC flood duration", "255 s", f"{quic_dur.median_value:.0f} s"],
            ["median TCP/ICMP flood duration", "1499 s", f"{common_dur.median_value:.0f} s"],
            ["median QUIC max pps", "~1", f"{quic_pps.median_value:.2f}"],
            ["median TCP/ICMP max pps", "~1", f"{common_pps.median_value:.2f}"],
            ["median QUIC rate, Internet-wide (x512)", "~512 pps", f"{quic_pps.median_value * 512:.0f} pps"],
            ["QUIC attacks", "2905 (month)", str(len(quic_dur))],
            ["TCP/ICMP attacks", "282k (month, unscaled)", str(len(common_dur))],
        ],
        title="Figure 7 — flood durations and intensities",
    )
    charts = (
        "(a) duration CDF, QUIC [s]:\n" + cdf_points(quic_dur.steps()) + "\n"
        "(a) duration CDF, TCP/ICMP [s]:\n" + cdf_points(common_dur.steps()) + "\n"
        "(b) max-pps CDF, QUIC:\n" + cdf_points(quic_pps.steps()) + "\n"
        "(b) max-pps CDF, TCP/ICMP:\n" + cdf_points(common_pps.steps())
    )
    emit("fig7_durations", table + "\n\n" + charts)
    # the shape claims
    assert quic_dur.median_value < common_dur.median_value
    assert 0.5 < quic_pps.median_value < 4
    assert 0.5 < common_pps.median_value < 4
