"""D1 (Section 6) — validity of the captured attack patterns.

Paper: DoS-suspect QUIC events consist of 31% Initial and 57% Handshake
messages on average; observed Initials carry no plaintext ClientHello
(they are ServerHello replies); all backscatter long headers have a
zero-length DCID; the roughly one-third / two-thirds split matches the
server's response train.
"""

from repro.util.render import format_table


def _d1(result):
    shares = result.message_type_shares()
    return shares, result.empty_dcid_share


def test_d1_message_mix(result, emit, benchmark):
    shares, empty_dcid = benchmark(_d1, result)
    rows = [
        ["Initial share", "31%", f"{shares.get('initial', 0) * 100:.0f}%"],
        ["Handshake share", "57%", f"{shares.get('handshake', 0) * 100:.0f}%"],
        [
            "other (VN, 1-RTT, ...)",
            "12%",
            f"{(1 - shares.get('initial', 0) - shares.get('handshake', 0)) * 100:.0f}%",
        ],
        ["backscatter DCID length 0", "all (validity check)", f"{empty_dcid * 100:.1f}%"],
        ["plaintext ClientHello in responses", "none", "none (keys derive from attacker DCID)"],
    ]
    table = format_table(
        ["metric", "paper", "measured"],
        rows,
        title="Section 6 — message mix of DoS-suspect QUIC events",
    )
    emit("d1_message_mix", table)
    initial = shares.get("initial", 0)
    handshake = shares.get("handshake", 0)
    assert 0.2 < initial < 0.45
    assert handshake > initial  # roughly 1/3 vs 2/3
    assert empty_dcid > 0.99
