"""FIG5 — source network types of sessions (PeeringDB info_type).

Paper: request sessions originate predominantly from eyeball
(Cable/DSL/ISP) networks; response sessions are received almost
exclusively from content networks — bots scan, content providers emit
flood backscatter.
"""

from repro.internet.asn import NetworkType
from repro.util.render import format_table


def _fig5(result):
    def shares(counts):
        total = sum(counts.values())
        if not total:
            return {}
        return {t: counts.get(t, 0) / total for t in NetworkType}

    return shares(result.request_network_types), shares(result.response_network_types)


def test_fig5_network_types(result, emit, benchmark):
    request_shares, response_shares = benchmark(_fig5, result)
    rows = []
    for network_type in NetworkType:
        rows.append(
            [
                network_type.value,
                f"{request_shares.get(network_type, 0) * 100:.1f}%",
                f"{response_shares.get(network_type, 0) * 100:.1f}%",
            ]
        )
    table = format_table(
        ["network type", "requests", "responses"],
        rows,
        title="Figure 5 — session source network types (paper: requests ~ eyeball, responses ~ content)",
    )
    emit("fig5_network_types", table)
    assert request_shares.get(NetworkType.EYEBALL, 0) > 0.85
    assert response_shares.get(NetworkType.CONTENT, 0) > 0.6
