"""A1 (ablation) — port-only vs port+dissector classification.

Section 4.1: the paper extends the common UDP/443 port filter with
Wireshark payload dissection "to exclude false positives".  This
ablation quantifies the difference: how many UDP/443 packets would a
port-only classifier wrongly count as QUIC?
"""

from repro.core.classify import PacketClass, TrafficClassifier
from repro.telescope import Scenario, ScenarioConfig
from repro.util.render import format_table
from repro.util.timeutil import HOUR


def _classify_both():
    config = ScenarioConfig(
        duration=2 * HOUR,
        research_sample=1.0 / 1024,
        stray_packets_per_day=5000.0,  # amplify the non-QUIC population
    )
    scenario = Scenario(config)
    with_dissector = TrafficClassifier(dissect_payloads=True)
    port_only = TrafficClassifier(dissect_payloads=False)
    for packet in scenario.packets():
        with_dissector.classify(packet)
        port_only.classify(packet)
    return with_dissector, port_only


def test_a1_port_only_vs_dissector(emit, benchmark):
    with_dissector, port_only = benchmark.pedantic(_classify_both, rounds=1, iterations=1)

    def quic_count(classifier):
        return (
            classifier.counters[PacketClass.QUIC_REQUEST]
            + classifier.counters[PacketClass.QUIC_RESPONSE]
        )

    false_positives = with_dissector.false_positive_count
    port_quic = quic_count(port_only)
    dissector_quic = quic_count(with_dissector)
    table = format_table(
        ["metric", "value"],
        [
            ["QUIC packets (port-only)", f"{port_quic:,}"],
            ["QUIC packets (port+dissector)", f"{dissector_quic:,}"],
            ["false positives removed", f"{false_positives:,}"],
            ["false-positive share of port-only", f"{false_positives / port_quic * 100:.2f}%"],
        ],
        title="Ablation A1 — dissector validation vs port-only classification",
    )
    emit("a1_classifier", table)
    assert port_quic == dissector_quic + false_positives
    assert false_positives > 0
