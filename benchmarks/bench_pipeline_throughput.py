"""Pipeline throughput: packets/second through classify+dissect+sessionize.

Not a paper figure — an engineering benchmark guarding the streaming
pipeline's performance (the paper processed 92M packets; regression
here makes full-scale runs impractical).
"""

from repro.core import QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR


def test_pipeline_throughput(emit, benchmark):
    config = ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 512)
    scenario = Scenario(config)
    packets = list(scenario.packets())

    def run():
        pipeline = QuicsandPipeline(
            registry=scenario.internet.registry,
            census=scenario.internet.census,
            greynoise=scenario.internet.greynoise,
        )
        return pipeline.process(iter(packets))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = len(packets) / benchmark.stats["mean"]
    emit(
        "pipeline_throughput",
        f"packets analyzed: {len(packets):,}\n"
        f"throughput: {rate:,.0f} packets/s\n"
        f"(paper scale: 92M packets => {92e6 / rate / 3600:.1f} h at this rate)",
    )
    assert result.total_packets == len(packets)
    assert rate > 5_000
