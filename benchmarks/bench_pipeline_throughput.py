"""Pipeline throughput: packets/second through classify+dissect+sessionize.

Not a paper figure — an engineering benchmark guarding the streaming
pipeline's performance (the paper processed 92M packets; regression
here makes full-scale runs impractical).  Measures both the serial
path and the source-sharded parallel path (``workers=4``), reports the
dissector-cache hit rate, and appends the rates to the
``benchmarks/out/BENCH_pipeline.json`` trajectory so speedups are
tracked across revisions.
"""

import json
import os
import time
from pathlib import Path

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

PARALLEL_WORKERS = 4
TRAJECTORY = Path(__file__).parent / "out" / "BENCH_pipeline.json"


def _run(scenario, packets, workers):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(workers=workers),
    )
    return pipeline.process(iter(packets))


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    TRAJECTORY.write_text(json.dumps({"runs": runs}, indent=2) + "\n")


def test_pipeline_throughput(emit, benchmark):
    config = ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 512)
    scenario = Scenario(config)
    packets = list(scenario.packets())
    cpus = os.cpu_count() or 1

    result = benchmark.pedantic(
        lambda: _run(scenario, packets, workers=1), rounds=3, iterations=1
    )
    serial_rate = len(packets) / benchmark.stats["mean"]

    parallel_times = []
    for _ in range(3):
        start = time.perf_counter()
        parallel_result = _run(scenario, packets, workers=PARALLEL_WORKERS)
        parallel_times.append(time.perf_counter() - start)
    parallel_rate = len(packets) / (sum(parallel_times) / len(parallel_times))
    speedup = parallel_rate / serial_rate

    hits = result.class_counts.get("dissect-cache-hit", 0)
    misses = result.class_counts.get("dissect-cache-miss", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    _append_trajectory(
        {
            "unix_time": round(time.time()),
            "packets": len(packets),
            "cpus": cpus,
            "serial_pps": round(serial_rate),
            "parallel_workers": PARALLEL_WORKERS,
            "parallel_pps": round(parallel_rate),
            "speedup": round(speedup, 3),
            "dissect_cache_hit_rate": round(hit_rate, 4),
        }
    )
    emit(
        "pipeline_throughput",
        f"packets analyzed: {len(packets):,}  (cpus: {cpus})\n"
        f"serial throughput: {serial_rate:,.0f} packets/s\n"
        f"parallel throughput (workers={PARALLEL_WORKERS}): "
        f"{parallel_rate:,.0f} packets/s  ({speedup:.2f}x)\n"
        f"dissector cache hit rate: {hit_rate * 100:.1f}% "
        f"({hits:,} hits / {misses:,} misses)\n"
        f"(paper scale: 92M packets => "
        f"{92e6 / max(serial_rate, parallel_rate) / 3600:.1f} h at the best rate)",
    )
    assert result.total_packets == len(packets)
    assert parallel_result.total_packets == len(packets)
    assert serial_rate > 5_000
    if cpus >= 2:
        # the smoke bound: sharding must never cost throughput where
        # there is real parallel hardware
        assert parallel_rate >= serial_rate
    if cpus >= 4:
        # the target bound of the parallel pipeline work
        assert speedup >= 2.5
