"""Pipeline throughput: packets/second to generate and to analyze.

Not a paper figure — an engineering benchmark guarding the synthesis
and streaming-pipeline performance (the paper processed 92M packets;
regression here makes full-scale runs impractical).  Measures the
rates below and appends them to the ``benchmarks/out/BENCH_pipeline.json``
trajectory (``schema`` 3; rows are null-backfilled so every revision
carries the same keys) so speedups are tracked across revisions:

- ``generate_pps``  — scenario synthesis on the default path, i.e. the
  columnar generation fast lane (``Scenario.records()``, wire-template
  and Initial-sealer caches warm: the first full pass primes them, the
  timed passes replay them, which is the steady state of any
  multi-round or long-window run).  Mirrored in ``generate_fast_pps``
  so the column's meaning is explicit next to ``generate_rich_pps``;
- ``generate_rich_pps`` — the same scenario through
  ``Scenario.packets()``, the per-packet object path that was the only
  generation path before the gen lane landed (the schema-2 meaning of
  ``generate_pps``);
- ``gen_speedup``   — ``generate_fast_pps / generate_rich_pps``; the
  generation lane's headline, asserted ``>= 2.0`` in full runs;
- ``analyze_pps``   — the default serial analysis path, i.e. the
  columnar batch fast lane (kept in the legacy ``serial_pps`` field as
  well, so the trajectory stays comparable across revisions);
- ``rich_pps``      — the same stream through ``--no-fast-lane``, the
  per-packet rich-dissection path that was the default before the lane
  landed;
- ``fast_speedup``  — ``analyze_pps / rich_pps``; the lane's whole
  point, asserted ``>= 2.0`` in full runs;
- ``e2e_pps``       — generation (fast lane) and default serial
  analysis end to end;
- ``metrics_e2e_pps`` — the same end-to-end path with the ``repro.obs``
  registry recording, guarding the instrumentation's disabled-by-default
  contract: metrics-on must stay within 5% of metrics-off throughput.
  ``metrics_overhead`` is clamped at zero — both raw rates are in the
  record, and a negative overhead is timing noise, not a real speedup.
  The off reference is timed in the same loop as the on rounds
  (alternating), so machine-speed drift between bench phases cannot
  masquerade as instrumentation overhead, and the registry is reset
  per round, so the sampled cache hit rates are live per-run figures
  rather than cross-round accumulations.

The source-sharded parallel path (``workers=4``, shared-memory ring
transport under the fast lane) is only measured when the machine
actually has multiple CPUs; on a 1-core runner the fork+IPC overhead
measures the machine, not the code, so ``parallel_pps`` and
``speedup`` are recorded as ``null`` instead of a misleading number.

``REPRO_BENCH_QUICK=1`` switches to a smoke configuration for CI: a
small packet budget, one timing round, and no trajectory append (quick
rates would pollute the revision history).  Quick mode still times
*both* lanes and fails if the fast lane regresses below the rich path
(with headroom for runner noise).
"""

import json
import os
import time
from pathlib import Path

from repro import obs
from repro.core import AnalysisConfig, QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

PARALLEL_WORKERS = 4
TRAJECTORY = Path(__file__).parent / "out" / "BENCH_pipeline.json"
TRAJECTORY_SCHEMA = 3
#: every key a schema-3 row carries; older rows are backfilled with
#: nulls so consumers can index columns without per-row key checks.
TRAJECTORY_KEYS = (
    "unix_time",
    "packets",
    "cpus",
    "generate_pps",
    "generate_fast_pps",
    "generate_rich_pps",
    "gen_speedup",
    "analyze_pps",
    "rich_pps",
    "fast_speedup",
    "e2e_pps",
    "serial_pps",
    "parallel_workers",
    "parallel_pps",
    "speedup",
    "dissect_cache_hit_rate",
    "metrics_e2e_pps",
    "metrics_overhead",
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: quick mode trades fidelity for wall-clock: a shorter window is enough
#: to exercise generation, analysis, and the trajectory plumbing.
SCENARIO_HOURS = 0.25 if QUICK else 1.0
TIMING_ROUNDS = 1 if QUICK else 3


def _scenario_config():
    return ScenarioConfig(duration=SCENARIO_HOURS * HOUR, research_sample=1.0 / 512)


def _run(scenario, packets, workers, fast_lane=True):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(workers=workers, fast_lane=fast_lane),
    )
    return pipeline.process(iter(packets))


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    # normalize: every row carries the full schema-3 key set (older
    # rows null-backfilled), extra keys from future revisions are
    # preserved as-is
    runs = [
        {**{key: run.get(key) for key in TRAJECTORY_KEYS}, **run} for run in runs
    ]
    TRAJECTORY.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": runs}, indent=2) + "\n"
    )


def test_pipeline_throughput(emit, benchmark):
    cpus = os.cpu_count() or 1

    # -- generation: one priming pass per lane, then timed warm passes --
    packets = list(Scenario(_scenario_config()).packets())
    generate_rich_times = []
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        count = sum(1 for _ in Scenario(_scenario_config()).packets())
        generate_rich_times.append(time.perf_counter() - start)
        assert count == len(packets)
    # best-of-rounds: the minimum is the least noise-contaminated
    # estimate of the code's cost on a shared/1-core runner
    generate_rich_rate = len(packets) / min(generate_rich_times)

    # gen fast lane: prime its sealer/template caches before timing,
    # same warm-steady-state convention as the rich pass above
    assert sum(1 for _ in Scenario(_scenario_config()).records()) == len(packets)
    generate_times = []
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        count = sum(1 for _ in Scenario(_scenario_config()).records())
        generate_times.append(time.perf_counter() - start)
        assert count == len(packets)
    generate_time = min(generate_times)
    generate_rate = len(packets) / generate_time
    gen_speedup = generate_rate / generate_rich_rate

    # -- serial analysis, both lanes ------------------------------------
    scenario = Scenario(_scenario_config())
    rich_result = _run(scenario, packets, workers=1, fast_lane=False)  # warm-up
    rich_times = []
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        rich_result = _run(scenario, packets, workers=1, fast_lane=False)
        rich_times.append(time.perf_counter() - start)
    rich_rate = len(packets) / min(rich_times)

    result = benchmark.pedantic(
        lambda: _run(scenario, packets, workers=1),
        rounds=TIMING_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    analyze_time = benchmark.stats["min"]
    analyze_rate = len(packets) / analyze_time
    fast_speedup = analyze_rate / rich_rate
    e2e_rate = len(packets) / (generate_time + analyze_time)

    # -- observability overhead: paired off/on e2e rounds ---------------
    # Instrumentation publishes at batch/stage boundaries only, so the
    # enabled path must stay within noise of the disabled one.  The
    # reference is timed in the *same* loop, alternating off and on
    # rounds — this container's clock rate drifts between bench phases,
    # and comparing against the headline e2e timed minutes earlier
    # would let that drift masquerade as instrumentation overhead.
    obs_was = obs.enabled()
    recorded = 0
    try:
        off_generate_times = []
        off_analyze_times = []
        metrics_generate_times = []
        metrics_analyze_times = []
        for _ in range(TIMING_ROUNDS):
            obs.disable()
            start = time.perf_counter()
            count = sum(1 for _ in Scenario(_scenario_config()).records())
            off_generate_times.append(time.perf_counter() - start)
            assert count == len(packets)
            start = time.perf_counter()
            _run(scenario, packets, workers=1)
            off_analyze_times.append(time.perf_counter() - start)

            # reset per round so the sampled telemetry is a live
            # single-run figure, not an accumulation across rounds
            # (the old whole-loop sample froze the hit rate at a
            # stale cross-round constant)
            obs.REGISTRY.reset()
            obs.enable()
            start = time.perf_counter()
            count = sum(1 for _ in Scenario(_scenario_config()).records())
            metrics_generate_times.append(time.perf_counter() - start)
            assert count == len(packets)
            start = time.perf_counter()
            metrics_result = _run(scenario, packets, workers=1)
            metrics_analyze_times.append(time.perf_counter() - start)
            recorded += obs.REGISTRY.get("repro_pipeline_packets_total").value()
            # memo telemetry lives in the registry (class_counts no
            # longer carries pseudo-entries); rounds are identical, so
            # the last round's sample is the per-run figure
            hits = obs.REGISTRY.get("repro_dissect_cache_hits_total").value()
            misses = obs.REGISTRY.get("repro_dissect_cache_misses_total").value()
            lane_fast = obs.REGISTRY.get("repro_batchlane_fast_total").value()
    finally:
        obs.REGISTRY.reset()
        obs.set_enabled(obs_was)
    off_e2e_rate = len(packets) / (
        min(off_generate_times) + min(off_analyze_times)
    )
    metrics_e2e_rate = len(packets) / (
        min(metrics_generate_times) + min(metrics_analyze_times)
    )
    # clamp at zero: the raw rates carry the signal, and a "negative
    # overhead" is best-of-N timing noise dressed up as a speedup
    overhead = max(0.0, 1.0 - metrics_e2e_rate / off_e2e_rate)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    lane_fast_share = lane_fast / misses if misses else 0.0

    # -- parallel analysis (only meaningful on real parallel hardware) --
    parallel_rate = None
    speedup = None
    parallel_result = None
    if cpus >= 2:
        parallel_times = []
        for _ in range(TIMING_ROUNDS):
            start = time.perf_counter()
            parallel_result = _run(scenario, packets, workers=PARALLEL_WORKERS)
            parallel_times.append(time.perf_counter() - start)
        parallel_rate = len(packets) / min(parallel_times)
        speedup = parallel_rate / analyze_rate

    if not QUICK:
        _append_trajectory(
            {
                "unix_time": round(time.time()),
                "packets": len(packets),
                "cpus": cpus,
                "generate_pps": round(generate_rate),
                "generate_fast_pps": round(generate_rate),
                "generate_rich_pps": round(generate_rich_rate),
                "gen_speedup": round(gen_speedup, 3),
                "analyze_pps": round(analyze_rate),
                "rich_pps": round(rich_rate),
                "fast_speedup": round(fast_speedup, 3),
                "e2e_pps": round(e2e_rate),
                "serial_pps": round(analyze_rate),
                "parallel_workers": PARALLEL_WORKERS,
                "parallel_pps": None if parallel_rate is None else round(parallel_rate),
                "speedup": None if speedup is None else round(speedup, 3),
                "dissect_cache_hit_rate": round(hit_rate, 4),
                "metrics_e2e_pps": round(metrics_e2e_rate),
                "metrics_overhead": round(overhead, 4),
            }
        )
    parallel_line = (
        f"parallel throughput (workers={PARALLEL_WORKERS}, shm rings): "
        f"{parallel_rate:,.0f} packets/s  ({speedup:.2f}x vs fast serial)\n"
        if parallel_rate is not None
        else f"parallel throughput: skipped (cpus={cpus}; fork overhead "
        "would measure the runner, not the code)\n"
    )
    emit(
        "pipeline_throughput",
        f"packets: {len(packets):,}  (cpus: {cpus}, quick: {QUICK})\n"
        f"generation, gen lane (default): {generate_rate:,.0f} packets/s\n"
        f"generation, rich path (--no-gen-lane): "
        f"{generate_rich_rate:,.0f} packets/s\n"
        f"generation speedup: {gen_speedup:.2f}x\n"
        f"serial analysis, fast lane (default): {analyze_rate:,.0f} packets/s\n"
        f"serial analysis, rich path (--no-fast-lane): {rich_rate:,.0f} packets/s\n"
        f"fast-lane speedup: {fast_speedup:.2f}x "
        f"({lane_fast_share * 100:.1f}% of memo misses settled fast)\n"
        f"end-to-end (generate + analyze): {e2e_rate:,.0f} packets/s\n"
        f"end-to-end with metrics on: {metrics_e2e_rate:,.0f} packets/s "
        f"({overhead * 100:.1f}% overhead)\n"
        + parallel_line
        + f"dissector memo hit rate: {hit_rate * 100:.1f}% "
        f"({hits:,} hits / {misses:,} misses)\n"
        f"(paper scale: 92M packets => "
        f"{92e6 / max(analyze_rate, parallel_rate or 0) / 3600:.1f} h at the best rate)",
    )
    assert result.total_packets == len(packets)
    assert rich_result.total_packets == len(packets)
    if parallel_result is not None:
        assert parallel_result.total_packets == len(packets)
    # metrics-on runs record the stream and analyze it identically
    assert recorded == len(packets) * TIMING_ROUNDS
    assert metrics_result.total_packets == len(packets)
    if QUICK:
        # smoke bounds, noise headroom included: neither fast lane may
        # fall behind the rich path it replaces
        assert fast_speedup >= 0.9, (
            f"fast lane {analyze_rate:,.0f} pps regressed below rich path "
            f"{rich_rate:,.0f} pps"
        )
        assert gen_speedup >= 0.9, (
            f"gen lane {generate_rate:,.0f} pps regressed below rich "
            f"generation {generate_rich_rate:,.0f} pps"
        )
        return  # smoke run: correctness plus the lane bounds only
    assert analyze_rate > 5_000
    assert generate_rate > 5_000
    # the headline bound of the fast-lane work: >= 2x the rich path
    assert fast_speedup >= 2.0, (
        f"fast lane {analyze_rate:,.0f} pps is only {fast_speedup:.2f}x the "
        f"rich path's {rich_rate:,.0f} pps (bound: 2.0x)"
    )
    # the generation lane's headline bound: >= 2x the rich object path
    assert gen_speedup >= 2.0, (
        f"gen lane {generate_rate:,.0f} pps is only {gen_speedup:.2f}x the "
        f"rich path's {generate_rich_rate:,.0f} pps (bound: 2.0x)"
    )
    # the observability contract: instrumentation stays within noise
    # (compared against the paired same-loop metrics-off rounds)
    assert metrics_e2e_rate >= 0.95 * off_e2e_rate, (
        f"metrics-on e2e {metrics_e2e_rate:,.0f} pps fell more than 5% below "
        f"paired metrics-off {off_e2e_rate:,.0f} pps"
    )
    if cpus >= 2:
        # sharding must never cost throughput against the pre-lane
        # serial baseline where there is real parallel hardware
        assert parallel_rate >= rich_rate
    if cpus >= 4:
        # the shm-transport bound: with >= 4 real cores the sharded run
        # must beat even the fast serial lane
        assert parallel_rate >= analyze_rate
