"""A2 (ablation) — sensitivity of the multi-vector split to the overlap rule.

The paper classifies two attacks as concurrent when they "overlap in at
least a single time unit, i.e., they share at least one mutual second"
(Appendix C.1).  This ablation re-runs the correlation with stricter
rules to show the 51% concurrent share is not an artifact of the 1 s
choice: because most concurrent attacks overlap almost completely
(Figure 12), the split barely moves until the requirement approaches
typical flood durations.
"""

from repro.core.multivector import correlate_attacks
from repro.util.render import format_table

OVERLAP_RULES = (1.0, 10.0, 30.0, 60.0, 120.0)


def _a2(result):
    rows = []
    for min_overlap in OVERLAP_RULES:
        analysis = correlate_attacks(
            result.quic_attacks, result.common_attacks, min_overlap=min_overlap
        )
        shares = analysis.category_shares()
        rows.append(
            (
                min_overlap,
                shares["concurrent"],
                shares["sequential"],
                shares["isolated"],
            )
        )
    return rows


def test_a2_concurrency_definition(result, emit, benchmark):
    rows = benchmark(_a2, result)
    table = format_table(
        ["min overlap [s]", "concurrent", "sequential", "isolated"],
        [
            [f"{rule:.0f}", f"{c * 100:.0f}%", f"{s * 100:.0f}%", f"{i * 100:.0f}%"]
            for rule, c, s, i in rows
        ],
        title="Ablation A2 — multi-vector split vs concurrency rule "
        "(paper uses >=1 s; 51/40/9)",
    )
    emit("a2_concurrency", table)
    base = rows[0][1]
    strict = rows[-1][1]
    assert base >= strict  # stricter rule can only shrink "concurrent"
    # robustness: at 60 s the concurrent share keeps most of its mass
    at_60 = next(c for rule, c, _s, _i in rows if rule == 60.0)
    assert at_60 > 0.6 * base
    # isolated is untouched by the rule (it depends on partner existence)
    isolated = {i for _r, _c, _s, i in rows}
    assert max(isolated) - min(isolated) < 1e-9
