"""FIG13 (Appendix C) — time gaps between sequential QUIC and TCP/ICMP attacks.

Paper: 82% of sequential attacks are separated by more than one hour
(mean gap 36 h, up to 28 days) — long gaps suggesting they are not part
of one multi-vector campaign.  The bench window is shorter than a
month, so the measured tail is bounded by the window (DESIGN.md §2);
the shape claim is gaps >> the 1-second concurrency bound.
"""

from repro.util.render import cdf_points, format_table
from repro.util.stats import EmpiricalCdf
from repro.util.timeutil import HOUR


def _fig13(result):
    gaps = result.multivector.sequential_gaps
    if not gaps:
        return None, 0.0
    cdf = EmpiricalCdf(gaps)
    over_hour = sum(1 for g in gaps if g > HOUR) / len(gaps)
    return cdf, over_hour


def test_fig13_sequential_gaps(result, emit, benchmark):
    cdf, over_hour = benchmark(_fig13, result)
    assert cdf is not None, "no sequential attacks detected"
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ["gaps > 1 hour", "82%", f"{over_hour * 100:.0f}%"],
            ["median gap", "(hours)", f"{cdf.median_value / HOUR:.1f} h"],
            ["max gap", "up to 28 d (month window)", f"{cdf.quantile(1.0) / HOUR:.1f} h (window-bounded)"],
            ["sequential attacks", "(n)", str(len(cdf))],
        ],
        title="Figure 13 — gaps between sequential QUIC and TCP/ICMP attacks",
    )
    chart = "gap CDF [s]:\n" + cdf_points(cdf.steps())
    emit("fig13_gaps", table + "\n\n" + chart)
    assert over_hour > 0.5
    assert cdf.median_value > 10 * 60  # well beyond the concurrency bound
