"""Dissector robustness bench: throughput on a 50%-malformed stream.

Not a paper figure — an engineering benchmark guarding the hardened
dissector path (PR 5).  A telescope peering at UDP/443 sees garbage
constantly (the paper classifies ~60% of UDP/443 traffic as non-QUIC),
so the *rejection* path is as hot as the accept path and must not
regress: a dissector that is fast on valid Initials but slow (or worse,
exception-prone) on junk would crawl on real captures.

Builds a payload corpus from a scenario's UDP/443 traffic, then times
``QuicDissector`` on two streams of equal length:

- ``clean_pps``     — the unmodified payload mix;
- ``malformed_pps`` — the same mix with every second payload replaced
  by a seeded corruption (bit flips, truncations, random bytes), i.e.
  a 50%-malformed stream.

Asserts no exception escapes and that the malformed stream dissects at
a sane fraction of the clean rate (rejections bail out early, so they
are usually *faster* — the bound only catches pathological slowness).
Appends to ``benchmarks/out/BENCH_faults.json``; ``REPRO_BENCH_QUICK=1``
shrinks the corpus and skips perf assertions and the trajectory append.
"""

import json
import os
import time
from pathlib import Path

from repro.core.dissect import QuicDissector
from repro.telescope import Scenario, ScenarioConfig
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR

TRAJECTORY = Path(__file__).parent / "out" / "BENCH_faults.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SCENARIO_HOURS = 0.25 if QUICK else 1.0
TIMING_ROUNDS = 1 if QUICK else 3


def _udp443_payloads():
    scenario = Scenario(
        ScenarioConfig(duration=SCENARIO_HOURS * HOUR, research_sample=1.0 / 512)
    )
    payloads = [
        p.payload
        for p in scenario.packets()
        if p.is_udp and 443 in (p.src_port, p.dst_port) and p.payload
    ]
    assert payloads, "scenario produced no UDP/443 traffic"
    return payloads


def _corrupt(payload: bytes, rng) -> bytes:
    kind = rng.randint(0, 3)
    if kind == 0:  # random bytes, representative of non-QUIC services
        return rng.randbytes(rng.randint(1, len(payload)))
    data = bytearray(payload)
    if kind == 1:  # single bit flip
        index = rng.randint(0, len(data) - 1)
        data[index] ^= 1 << rng.randint(0, 7)
    elif kind == 2 and len(data) > 1:  # truncation
        del data[rng.randint(1, len(data) - 1) :]
    else:  # clear the fixed bit: the cheapest rejection path
        data[0] &= 0xBF
    return bytes(data)


def _dissect_rate(payloads) -> tuple[float, int]:
    """Best-of-rounds dissect throughput; returns (pps, invalid_count)."""
    times = []
    invalid = 0
    for _ in range(TIMING_ROUNDS):
        dissector = QuicDissector()  # fresh memo per round: cold-path cost
        invalid = 0
        start = time.perf_counter()
        for payload in payloads:
            if not dissector.dissect(payload).valid:
                invalid += 1
        times.append(time.perf_counter() - start)
    return len(payloads) / min(times), invalid


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    TRAJECTORY.write_text(json.dumps({"runs": runs}, indent=2) + "\n")


def test_dissector_throughput_on_malformed_stream(emit):
    payloads = _udp443_payloads()
    rng = SeededRng(0xBAD, "bench-faults")
    half_malformed = [
        _corrupt(p, rng) if i % 2 else p for i, p in enumerate(payloads)
    ]

    clean_rate, clean_invalid = _dissect_rate(payloads)
    malformed_rate, malformed_invalid = _dissect_rate(half_malformed)
    ratio = malformed_rate / clean_rate

    # the injected junk must actually register as malformed...
    assert malformed_invalid > clean_invalid
    # ...and roughly half the stream should be rejected (valid QUIC can
    # survive a bit flip in a packet-number byte, so not exactly half)
    assert malformed_invalid >= len(payloads) * 0.3

    if not QUICK:
        _append_trajectory(
            {
                "unix_time": round(time.time()),
                "payloads": len(payloads),
                "clean_pps": round(clean_rate),
                "malformed_pps": round(malformed_rate),
                "malformed_ratio": round(ratio, 3),
                "malformed_rejected": malformed_invalid,
            }
        )
    emit(
        "faults_robustness",
        f"UDP/443 payloads: {len(payloads):,}  (quick: {QUICK})\n"
        f"clean stream dissect throughput: {clean_rate:,.0f} payloads/s "
        f"({clean_invalid:,} rejected)\n"
        f"50%-malformed stream dissect throughput: {malformed_rate:,.0f} "
        f"payloads/s ({malformed_invalid:,} rejected)\n"
        f"malformed/clean ratio: {ratio:.2f}x\n"
        "(rejections bail out early; a ratio well below 1 would mean the "
        "error path allocates or formats too much)",
    )
    if QUICK:
        return  # smoke run: correctness only
    assert clean_rate > 5_000
    # the robustness contract: the rejection path must not be
    # catastrophically slower than the accept path
    assert ratio >= 0.5, (
        f"malformed stream dissects at {ratio:.2f}x the clean rate"
    )
