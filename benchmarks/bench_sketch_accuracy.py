"""Sketch tier: flood-alert accuracy and memory vs the exact monitor.

Engineering benchmark for :mod:`repro.stream.sketch` (not a paper
figure).  For each scenario seed the exact-mode :class:`StreamAnalyzer`
is the oracle; the sketch mode re-consumes the *identical* captured
batch list at several sizings and we report

- flood-alert precision / recall on ``(vector, victim, start)`` keys —
  the acceptance bar is >= 0.95 for both at the default sizing across
  all seeds combined;
- per-source packet-count relative error of the conservative-update
  count-min against the exact tallies (mean and p99);
- the memory story: sketch structure bytes (a build-time constant,
  asserted independent of source cardinality) vs what the exact
  per-source dicts would need.

Results append to the ``benchmarks/out/BENCH_sketch.json`` trajectory.
``REPRO_BENCH_QUICK=1`` shrinks the sweep for CI and skips the append.
"""

import json
import os
import time
from pathlib import Path

from repro.core import AnalysisConfig
from repro.stream import StreamAnalyzer, StreamConfig
from repro.stream.sketch import SketchTier
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR

TRAJECTORY = Path(__file__).parent / "out" / "BENCH_sketch.json"
TRAJECTORY_SCHEMA = 1
#: every key a schema-1 row carries; older rows are backfilled with
#: nulls so consumers can index columns without per-row key checks.
TRAJECTORY_KEYS = (
    "unix_time",
    "seeds",
    "packets",
    "default_precision",
    "default_recall",
    "default_mean_rel_error",
    "default_p99_rel_error",
    "sketch_bytes",
    "exact_bytes_estimate",
    "sweep",
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SEEDS = (11, 23) if QUICK else (11, 23, 37, 41, 59)
SCENARIO_HOURS = 1.0 if QUICK else 2.0
#: (label, width, capacity) — depth/precision held at defaults; width
#: drives count error, capacity drives alert fidelity.  The last entry
#: is the default sizing the acceptance bar applies to.
SWEEP = (
    ("tiny", 128, 16),
    ("small", 512, 64),
    ("default", 2048, 512),
)


def _monitor(scenario, batches, stream_config):
    analyzer = StreamAnalyzer(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(),
        stream_config=stream_config,
    )
    for _event in analyzer.events(iter(batches)):
        pass
    return analyzer


def _alert_keys(analyzer):
    return {(a.vector, a.victim_ip, a.start) for a in analyzer.alerts}


def _append_trajectory(record):
    TRAJECTORY.parent.mkdir(exist_ok=True)
    runs = []
    if TRAJECTORY.exists():
        try:
            runs = json.loads(TRAJECTORY.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs.append(record)
    # normalize: every row carries the full schema-1 key set, extra
    # keys from future revisions are preserved as-is
    runs = [
        {**{key: run.get(key) for key in TRAJECTORY_KEYS}, **run} for run in runs
    ]
    TRAJECTORY.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": runs}, indent=2) + "\n"
    )


def test_sketch_memory_ceiling(emit):
    """Hard assertion: tally-structure bytes do not depend on how many
    distinct sources the stream carried — only on the sizing knobs."""
    few, many = (2_000, 5_000) if QUICK else (2_000, 20_000)
    tiers = []
    for sources in (few, many):
        tier = SketchTier(seed=20210401)
        for index in range(sources):
            source = (index * 2654435761) & 0xFFFFFFFF
            # requests tally sources; responses also exercise the
            # heavy-hitter table and victim HLL
            tier._observe_quic(
                source, float(index), 80, request=(index % 4 != 0)
            )
        tiers.append(tier)
    small, large = tiers
    assert large.sources.estimate() > 2 * small.sources.estimate()
    assert small.structure_memory_bytes() == large.structure_memory_bytes()
    for table in large.heavy.values():
        assert len(table) <= table.capacity

    sketch_kib = large.structure_memory_bytes() / 1024
    exact_kib = large.exact_memory_estimate() / 1024
    emit(
        "sketch_memory_ceiling",
        f"distinct sources: {few:,} vs {many:,}\n"
        f"sketch structure bytes: {sketch_kib:.0f} KiB (identical for "
        f"both -- hard ceiling, set at construction)\n"
        f"exact per-source tallies at {many:,} sources: ~{exact_kib:.0f} "
        f"KiB and growing linearly",
    )


def test_sketch_accuracy(emit):
    per_sizing = {
        label: {"tp": 0, "fp": 0, "fn": 0, "rel_errors": []}
        for label, _w, _c in SWEEP
    }
    packets_total = 0
    sketch_bytes = exact_bytes = 0

    for seed in SEEDS:
        scenario = Scenario(
            ScenarioConfig(
                seed=seed,
                duration=SCENARIO_HOURS * HOUR,
                research_sample=1 / 2048,
            )
        )
        # packets() draws fresh randomness per call: capture once so
        # the oracle and every sizing replay the identical stream
        batches = list(batched(scenario.packets(), 512))
        packets_total += sum(len(batch) for batch in batches)

        exact = _monitor(scenario, batches, StreamConfig())
        truth_alerts = _alert_keys(exact)
        truth_counts = exact.state.quic_source_packets

        for label, width, capacity in SWEEP:
            sketch = _monitor(
                scenario,
                batches,
                StreamConfig(
                    mode="sketch",
                    sketch_width=width,
                    sketch_capacity=capacity,
                ),
            )
            got = _alert_keys(sketch)
            bucket = per_sizing[label]
            bucket["tp"] += len(got & truth_alerts)
            bucket["fp"] += len(got - truth_alerts)
            bucket["fn"] += len(truth_alerts - got)
            counts = sketch.sketch.packet_counts
            bucket["rel_errors"].extend(
                (counts.estimate(source) - true) / true
                for source, true in truth_counts.items()
            )
            if label == "default":
                sketch_bytes = sketch.sketch.structure_memory_bytes()
                exact_bytes = max(
                    exact_bytes, sketch.sketch.exact_memory_estimate()
                )

    rows = []
    lines = [
        f"seeds: {list(SEEDS)}  window: {SCENARIO_HOURS:g} h each  "
        f"packets: {packets_total:,}",
        f"{'sizing':>8}  {'cms':>9}  {'topk':>5}  {'prec':>6}  {'rec':>6}  "
        f"{'mean err':>9}  {'p99 err':>8}",
    ]
    for label, width, capacity in SWEEP:
        bucket = per_sizing[label]
        tp, fp, fn = bucket["tp"], bucket["fp"], bucket["fn"]
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        errors = sorted(bucket["rel_errors"])
        mean_error = sum(errors) / len(errors)
        p99_error = errors[int(0.99 * (len(errors) - 1))]
        rows.append(
            {
                "sizing": label,
                "width": width,
                "capacity": capacity,
                "precision": round(precision, 4),
                "recall": round(recall, 4),
                "mean_rel_error": round(mean_error, 4),
                "p99_rel_error": round(p99_error, 4),
            }
        )
        lines.append(
            f"{label:>8}  {width:>5}x4  {capacity:>5}  {precision:>6.3f}  "
            f"{recall:>6.3f}  {mean_error:>9.4f}  {p99_error:>8.4f}"
        )
    lines.append(
        f"default sizing memory: sketch {sketch_bytes / 1024:.0f} KiB "
        f"fixed vs exact tallies ~{exact_bytes / 1024:.0f} KiB at this "
        f"cardinality (exact grows with sources, sketch does not)"
    )
    emit("sketch_accuracy", "\n".join(lines))

    default = rows[-1]
    assert default["sizing"] == "default"
    # acceptance bar: the shipped sizing reproduces the exact monitor's
    # flood alerts across every seed
    assert default["precision"] >= 0.95, rows
    assert default["recall"] >= 0.95, rows
    # count-min never undercounts, and at the default width the
    # aggregate overcount stays small
    assert all(error >= 0 for error in per_sizing["default"]["rel_errors"])
    assert default["mean_rel_error"] <= 0.05, rows

    if not QUICK:
        _append_trajectory(
            {
                "unix_time": round(time.time()),
                "seeds": list(SEEDS),
                "packets": packets_total,
                "default_precision": default["precision"],
                "default_recall": default["recall"],
                "default_mean_rel_error": default["mean_rel_error"],
                "default_p99_rel_error": default["p99_rel_error"],
                "sketch_bytes": sketch_bytes,
                "exact_bytes_estimate": exact_bytes,
                "sweep": rows,
            }
        )
