"""D3 (Section 3) — why QUIC reflective amplification is unattractive.

The paper argues amplification attacks over QUIC are unlikely: servers
may send at most 3x the bytes received from an unverified client
(RFC 9000 §8.1), an attacker maximizes reflected bytes by padding the
Initial (which is indistinguishable from benign large Initials), and
other protocols offer far larger factors (NTP ~500x, DNS ~60x, citing
Rossow's "Amplification Hell").  This bench measures the achievable
bytes-amplification factor against a real server endpoint as a function
of the spoofed Initial's size, with and without RETRY — RETRY drives
the factor *below* 1, making the reflector useless.
"""

from repro.quic import tls
from repro.quic.connection import ServerConnection
from repro.quic.crypto import derive_initial_keys
from repro.quic.frames import CryptoFrame
from repro.quic.header import LongHeader, PacketType
from repro.quic.packet import PlainPacket, build_datagram
from repro.quic.versions import QUIC_V1
from repro.util.render import format_table
from repro.util.rng import SeededRng

INITIAL_SIZES = (1200, 1500, 2000, 3000)
OTHER_PROTOCOLS = (("NTP (monlist)", 500.0), ("DNS (open resolver)", 60.0))


def _spoofed_initial(rng, pad_to):
    dcid = rng.randbytes(8)
    client_keys, _ = derive_initial_keys(QUIC_V1, dcid)
    hello = tls.ClientHello(random=rng.randbytes(32), server_name="victim.example")
    packet = PlainPacket(
        header=LongHeader(
            packet_type=PacketType.INITIAL,
            version=QUIC_V1.value,
            dcid=dcid,
            scid=rng.randbytes(8),
        ),
        packet_number=0,
        frames=[CryptoFrame(0, hello.serialize())],
    )
    return build_datagram([(packet, client_keys)], pad_to=pad_to)


def _measure(retry_enabled, samples=12):
    rng = SeededRng(20210403 if retry_enabled else 20210402)
    rows = []
    for size in INITIAL_SIZES:
        server = ServerConnection(
            rng.child(f"server:{size}"),
            retry_enabled=retry_enabled,
            keepalive_pings=2,
            cert_chain_len=3000,  # worst case: uncompressed certificates
        )
        factors = []
        for i in range(samples):
            request = _spoofed_initial(rng.child(f"probe:{size}:{i}"), size)
            responses = server.handle_datagram(request, 100 + i, 200 + i, now=0.0)
            reflected = sum(len(r.data) for r in responses)
            factors.append(reflected / len(request))
        rows.append((size, sum(factors) / len(factors)))
    return rows


def test_d3_amplification(emit, benchmark):
    plain, with_retry = benchmark.pedantic(
        lambda: (_measure(False), _measure(True)), rounds=1, iterations=1
    )
    table_rows = [
        [f"{size:,} B", f"{factor:.2f}x", f"{retry_factor:.2f}x"]
        for (size, factor), (_s, retry_factor) in zip(plain, with_retry)
    ]
    for name, factor in OTHER_PROTOCOLS:
        table_rows.append([name, f"{factor:.0f}x", "-"])
    table = format_table(
        ["spoofed Initial", "amplification (no retry)", "with RETRY"],
        table_rows,
        title="Section 3 — reflected bytes per spoofed byte "
        "(RFC 9000 caps QUIC at 3x; NTP/DNS factors from Rossow 2014)",
    )
    emit("d3_amplification", table)
    for _size, factor in plain:
        assert factor <= 3.0 + 1e-9  # the anti-amplification limit holds
    # padding the request only *lowers* the achievable factor
    factors = [f for _s, f in plain]
    assert factors == sorted(factors, reverse=True)
    # RETRY turns the reflector off entirely
    for _size, factor in with_retry:
        assert factor < 0.2
    # and QUIC is far below the classic amplifiers
    assert max(factors) < OTHER_PROTOCOLS[1][1] / 10
