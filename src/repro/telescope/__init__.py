"""Telescope substrate: the /9 darknet and the traffic that reaches it.

Internet background radiation at a telescope has four constituents,
each with its own generator:

- :mod:`repro.telescope.scanners` — research sweeps (TUM/RWTH-style,
  98.5% of QUIC IBR) and malicious bot scans from eyeball networks;
- :mod:`repro.telescope.attacks` — the flood planner: QUIC floods
  against content providers plus TCP/ICMP floods, orchestrated into
  concurrent / sequential / isolated multi-vector patterns;
- :mod:`repro.telescope.backscatter` — victim response models that turn
  planned floods into the packets a telescope actually sees;
- :mod:`repro.telescope.noise` — low-volume misconfiguration traffic.

Beyond the paper, :mod:`repro.telescope.adversarial` generates attack
shapes the 2021 telescope never saw (optimistic-ACK amplification,
HTTP/3 request floods, pulse waves, carpet bombing, VN/RETRY
deflection); :data:`repro.telescope.presets.SCENARIOS` is the named
registry the test matrix and benchmarks enumerate.

:mod:`repro.telescope.workload` composes them into a full scenario and
:mod:`repro.telescope.telescope` merges the sorted per-source streams
into one capture, exactly like a darknet's packet tap.
"""

from repro.telescope.adversarial import AdversarialSpec, ADVERSARIAL_KINDS
from repro.telescope.diurnal import DiurnalModel
from repro.telescope.telescope import Telescope
from repro.telescope.workload import Scenario, ScenarioConfig, ScenarioTruth
from repro.telescope import presets

__all__ = [
    "AdversarialSpec",
    "ADVERSARIAL_KINDS",
    "DiurnalModel",
    "Telescope",
    "Scenario",
    "ScenarioConfig",
    "ScenarioTruth",
    "presets",
]
