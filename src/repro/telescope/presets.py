"""Scenario presets and the named-scenario registry.

Sizing presets (window/scale knobs for the default workload):

- :func:`demo` — minutes-scale, for examples and interactive use;
- :func:`bench_day` — the benchmark suite's default (one day);
- :func:`paper_month` — the full April 2021 window at the paper's event
  rates.  At the default sweep sampling this generates on the order of
  30M packets; expect a multi-hour pure-Python run — it exists so the
  full-scale numbers are *reproducible*, not quick.

All presets accept keyword overrides that are applied on top.

Named scenarios (:data:`SCENARIOS`) are the discoverable registry the
test matrix, the benchmarks, docs/SCENARIOS.md, and ``report
--scenario`` all enumerate: the paper's four IBR traffic classes in
isolation plus the adversarial workloads from
:mod:`repro.telescope.adversarial`.  Every entry is deliberately small
(sub-hour windows) so the full equivalence battery stays cheap; rates
and durations are chosen so each scenario's *detector-relevant*
behaviour (flood alerts firing, or honestly not firing) is stable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.telescope.adversarial import AdversarialSpec
from repro.telescope.workload import ScenarioConfig
from repro.util.timeutil import APRIL_1_2021, DAY, HOUR, MAY_1_2021


def demo(**overrides) -> ScenarioConfig:
    """A three-hour window with light research sampling."""
    config = ScenarioConfig(
        duration=3 * HOUR,
        research_sample=1.0 / 512,
    )
    return replace(config, **overrides)


def bench_day(**overrides) -> ScenarioConfig:
    """The default benchmark window: 24 hours, 1/64 sweep sampling."""
    config = ScenarioConfig(
        duration=1 * DAY,
        research_sample=1.0 / 64.0,
    )
    return replace(config, **overrides)


def paper_month(**overrides) -> ScenarioConfig:
    """April 1-30, 2021 at the paper's event rates.

    Event counts then land at paper scale: ~2900 QUIC floods, ~390
    victims, two research scanners sweeping twice a day.  Research
    sweeps stay sampled at 1/64 (8.4M -> 131k packets per sweep); set
    ``research_sample=1.0`` only if you intend to generate the full
    92M-packet month.
    """
    config = ScenarioConfig(
        start=APRIL_1_2021,
        duration=MAY_1_2021 - APRIL_1_2021,
        research_sample=1.0 / 64.0,
    )
    return replace(config, **overrides)


# --------------------------------------------------------------------------
# the named-scenario registry
# --------------------------------------------------------------------------

#: every include_* flag off — named scenarios opt traffic classes back in.
_ALL_OFF = dict(
    include_research=False,
    include_bots=False,
    include_tcp_scans=False,
    include_attacks=False,
    include_misconfig=False,
    include_stray=False,
)


def _isolated(duration=HOUR, **on) -> ScenarioConfig:
    flags = dict(_ALL_OFF)
    flags.update(on)
    return ScenarioConfig(
        duration=duration, research_sample=1.0 / 2048, **flags
    )


@dataclass(frozen=True)
class ScenarioPreset:
    """One registered scenario: a name, its traffic, and what the
    pipeline is expected to make of it."""

    name: str
    description: str
    #: traffic vectors the scenario emits (doc/table slugs).
    vectors: tuple
    #: expected pipeline classification, one phrase — "uncategorized"
    #: is a legitimate honest answer for request-class attacks.
    expected: str
    adversarial: bool
    build: object  # zero-arg ScenarioConfig factory

    def config(self, **overrides) -> ScenarioConfig:
        return replace(self.build(), **overrides)


SCENARIOS: dict = {}


def _register(preset: ScenarioPreset) -> ScenarioPreset:
    SCENARIOS[preset.name] = preset
    return preset


# -- the paper's four IBR classes, each in isolation -----------------------

_register(
    ScenarioPreset(
        name="ibr-research",
        description="periodic full-IPv4 research sweeps (sampled)",
        vectors=("quic-request",),
        expected="research scan sessions, identified and rate-excluded",
        adversarial=False,
        build=lambda: _isolated(include_research=True),
    )
)
_register(
    ScenarioPreset(
        name="ibr-scanners",
        description="bot QUIC recon plus background TCP scanning",
        vectors=("quic-request", "tcp-syn"),
        expected="request/scan sessions; no flood attacks",
        adversarial=False,
        build=lambda: _isolated(include_bots=True, include_tcp_scans=True),
    )
)
_register(
    ScenarioPreset(
        name="ibr-backscatter",
        description="spoofed-flood backscatter from the planner's floods",
        vectors=("quic-response", "tcp-backscatter", "icmp-backscatter"),
        expected="QUIC and TCP/ICMP flood attacks with victim analysis",
        adversarial=False,
        build=lambda: _isolated(include_attacks=True),
    )
)
_register(
    ScenarioPreset(
        name="ibr-noise",
        description="misconfiguration traffic and stray UDP noise",
        vectors=("udp-misconfig", "udp-stray"),
        expected="mostly malformed/uncategorized; no flood attacks",
        adversarial=False,
        build=lambda: _isolated(include_misconfig=True, include_stray=True),
    )
)

# -- adversarial workloads beyond the paper --------------------------------

_register(
    ScenarioPreset(
        name="adv-optimistic-ack",
        description="optimistic-ACK amplification: victim sprays near-MTU "
        "1-RTT datagrams at spoofed addresses",
        vectors=("quic-response",),
        expected="one QUIC flood attack with anomalously high bytes/packet",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(
                AdversarialSpec(kind="optimistic-ack", rate=0.5, burst=8),
            ),
        ),
    )
)
_register(
    ScenarioPreset(
        name="adv-h3-flood",
        description="HTTP/3 request flood: coalesced Initial + 0-RTT "
        "HEADERS datagrams sprayed across the prefix",
        vectors=("quic-request", "h3"),
        expected="request sessions only — honestly uncategorized, no flood",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(AdversarialSpec(kind="h3-flood", rate=3.0),),
        ),
    )
)
_register(
    ScenarioPreset(
        name="adv-h3-slowloris",
        description="Slowloris-style HTTP/3: sources drip one request "
        "chunk every few dozen seconds",
        vectors=("quic-request", "h3"),
        expected="long low-rate request sessions — uncategorized, no flood",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(
                AdversarialSpec(
                    kind="h3-slowloris", duration=1200.0, sources=12
                ),
            ),
        ),
    )
)
_register(
    ScenarioPreset(
        name="adv-pulse-wave",
        description="pulse-wave flood: bursts separated by silences "
        "longer than the session timeout",
        vectors=("quic-response",),
        expected="several QUIC flood attacks against a single victim",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(AdversarialSpec(kind="pulse-wave", rate=1.5),),
        ),
    )
)
_register(
    ScenarioPreset(
        name="adv-carpet-bomb",
        description="carpet bombing: every host of a census server's /24 "
        "flooded simultaneously",
        vectors=("quic-response",),
        expected="many single-attack victims with a low known-server share",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(
                AdversarialSpec(
                    kind="carpet-bomb", duration=300.0, rate=0.6, victims=12
                ),
            ),
        ),
    )
)
_register(
    ScenarioPreset(
        name="adv-vn-retry",
        description="version-negotiation / RETRY deflection backscatter "
        "with valid integrity tags",
        vectors=("quic-response", "version-negotiation", "retry"),
        expected="QUIC flood attack plus a non-zero passive-RETRY counter",
        adversarial=True,
        build=lambda: _isolated(
            duration=HOUR / 2,
            adversarial=(AdversarialSpec(kind="vn-retry", rate=1.2),),
        ),
    )
)


def scenario_names() -> tuple:
    """Every registered scenario name, in registration order."""
    return tuple(SCENARIOS)


def adversarial_scenario_names() -> tuple:
    """Registered adversarial scenarios only."""
    return tuple(n for n, p in SCENARIOS.items() if p.adversarial)


def get_scenario(name: str) -> ScenarioPreset:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_config(name: str, **overrides) -> ScenarioConfig:
    """The named scenario's config with keyword overrides applied."""
    return get_scenario(name).config(**overrides)
