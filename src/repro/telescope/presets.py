"""Scenario presets: canned configurations for common uses.

- :func:`demo` — minutes-scale, for examples and interactive use;
- :func:`bench_day` — the benchmark suite's default (one day);
- :func:`paper_month` — the full April 2021 window at the paper's event
  rates.  At the default sweep sampling this generates on the order of
  30M packets; expect a multi-hour pure-Python run — it exists so the
  full-scale numbers are *reproducible*, not quick.

All presets accept keyword overrides that are applied on top.
"""

from __future__ import annotations

from dataclasses import replace

from repro.telescope.workload import ScenarioConfig
from repro.util.timeutil import APRIL_1_2021, DAY, HOUR, MAY_1_2021


def demo(**overrides) -> ScenarioConfig:
    """A three-hour window with light research sampling."""
    config = ScenarioConfig(
        duration=3 * HOUR,
        research_sample=1.0 / 512,
    )
    return replace(config, **overrides)


def bench_day(**overrides) -> ScenarioConfig:
    """The default benchmark window: 24 hours, 1/64 sweep sampling."""
    config = ScenarioConfig(
        duration=1 * DAY,
        research_sample=1.0 / 64.0,
    )
    return replace(config, **overrides)


def paper_month(**overrides) -> ScenarioConfig:
    """April 1-30, 2021 at the paper's event rates.

    Event counts then land at paper scale: ~2900 QUIC floods, ~390
    victims, two research scanners sweeping twice a day.  Research
    sweeps stay sampled at 1/64 (8.4M -> 131k packets per sweep); set
    ``research_sample=1.0`` only if you intend to generate the full
    92M-packet month.
    """
    config = ScenarioConfig(
        start=APRIL_1_2021,
        duration=MAY_1_2021 - APRIL_1_2021,
        research_sample=1.0 / 64.0,
    )
    return replace(config, **overrides)
