"""Flood planning and attack traffic generation.

The planner reproduces the *event structure* reported in Section 5.2
and the appendices:

- QUIC floods arrive at ~4 per hour Internet-wide (the headline),
  targeting known QUIC servers 98% of the time, with provider shares
  Google 58% / Facebook 25% (Figure 9) and a heavy-tailed attacks-per-
  victim distribution where more than half the victims are hit once
  (Figure 6);
- flood durations are lognormal with a QUIC median of ~255 s vs
  ~1499 s for TCP/ICMP, at similar telescope max-pps (Figure 7);
- each QUIC flood is *concurrent* with a TCP/ICMP flood on the same
  victim (51%), *sequential* to one (40%), or isolated (9%)
  (Figure 8), with the overlap-share and gap distributions of
  Figures 12 and 13;
- attackers spoof from a limited IP pool but randomize source ports,
  which drives the SCID counts of Figure 9.

Planning (event-level) is separated from traffic generation
(packet-level) so the ground truth is available to tests and benches
independent of the packet stream.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR
from repro.internet.activescan import QuicServerRecord
from repro.internet.topology import InternetModel
from repro.telescope.backscatter import (
    _ICMP_PAYLOAD as _ICMP_RECORD_PAYLOAD,
    _RST_ACK as _RST_ACK_FLAGS,
    _SYN_ACK as _SYN_ACK_FLAGS,
    IcmpVictimResponder,
    QuicVictimResponder,
    ResponderPolicy,
    TcpVictimResponder,
    version_named,
)

QUIC = "quic"
TCP = "tcp"
ICMP = "icmp"

CONCURRENT = "concurrent"
SEQUENTIAL = "sequential"
ISOLATED = "isolated"


@dataclass
class FloodEvent:
    """One planned flood, described at the event level."""

    victim_ip: int
    vector: str  # quic | tcp | icmp
    start: float
    duration: float
    #: spoofed requests per second whose spoofed source falls inside the
    #: telescope prefix (i.e. the observable request rate).
    telescope_request_rate: float
    provider: Optional[str] = None
    category: Optional[str] = None  # for QUIC floods: multi-vector class
    partner: Optional["FloodEvent"] = None
    spoofed_pool_size: int = 16

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def expected_requests(self) -> float:
        return self.telescope_request_rate * self.duration


@dataclass
class AttackPlanConfig:
    """Event-level knobs; defaults follow the paper's statistics."""

    quic_floods_per_hour: float = 4.0
    #: attack share per target class (98% hit known QUIC servers).
    provider_shares: tuple = (
        ("Google", 0.58),
        ("Facebook", 0.25),
        ("other-census", 0.15),
        ("unknown", 0.02),
    )
    #: probability that a flood opens a new victim instead of re-hitting
    #: one (preferential attachment drives the Figure 6 tail).
    new_victim_probability: float = 0.55
    #: category mix (Figure 8).
    category_shares: tuple = (
        (CONCURRENT, 0.51),
        (SEQUENTIAL, 0.40),
        (ISOLATED, 0.09),
    )
    #: QUIC flood duration: lognormal around a 255 s median.
    quic_duration_median: float = 255.0
    quic_duration_sigma: float = 0.9
    #: TCP/ICMP flood duration: lognormal around a 1499 s median.
    common_duration_median: float = 1499.0
    common_duration_sigma: float = 1.0
    min_duration: float = 70.0
    #: telescope-visible spoofed-request rate (median ≈ 0.5/s leads to
    #: ≈1 max response-pps with the two-datagram train).
    quic_rate_median: float = 0.5
    quic_rate_sigma: float = 0.8
    quic_min_rate: float = 0.35
    quic_max_rate: float = 8.0
    common_rate_median: float = 0.9
    common_rate_sigma: float = 0.9
    common_min_rate: float = 0.6
    common_max_rate: float = 25.0
    #: probability per request that the attacker pauses (pulsed floods;
    #: pauses stay below the 5-minute session timeout, which is what
    #: bends the Figure 4 curve between 1 and 5 minutes).
    pulse_probability: float = 0.008
    pulse_median: float = 90.0
    pulse_sigma: float = 0.6
    pulse_max: float = 280.0
    #: background TCP/ICMP floods per hour (paper: ~390/h; scaled so a
    #: laptop scenario stays tractable — scale shares, not shapes).
    common_floods_per_hour: float = 8.0
    #: fully-parallel share of concurrent attacks (Figure 12: 75% at 100%).
    full_overlap_probability: float = 0.75
    #: sequential gaps: lognormal, median ≈ 4 h, heavy tail (Figure 13).
    sequential_gap_median: float = 4 * HOUR
    sequential_gap_sigma: float = 1.3
    min_sequential_gap: float = 60.0
    #: spoofed source pool sizes visible at the telescope.
    spoofed_pool_min: int = 4
    spoofed_pool_max: int = 48


@dataclass
class AttackPlan:
    """The planner's ground truth."""

    quic_floods: list = field(default_factory=list)
    common_floods: list = field(default_factory=list)

    @property
    def all_floods(self) -> list:
        return self.quic_floods + self.common_floods


class AttackPlanner:
    """Plans flood events over a measurement window."""

    def __init__(
        self,
        internet: InternetModel,
        rng: SeededRng,
        config: AttackPlanConfig | None = None,
    ) -> None:
        self.internet = internet
        self.rng = rng.child("attack-planner")
        self.config = config or AttackPlanConfig()
        self._attacked: dict[str, list] = {}  # provider -> [(victim_ip, count)]

    # -- distributions ------------------------------------------------------

    def _lognormal(self, median: float, sigma: float) -> float:
        return self.rng.lognormvariate(math.log(median), sigma)

    def _duration(self, vector: str, window: float) -> float:
        cfg = self.config
        if vector == QUIC:
            raw = self._lognormal(cfg.quic_duration_median, cfg.quic_duration_sigma)
        else:
            raw = self._lognormal(cfg.common_duration_median, cfg.common_duration_sigma)
        return min(max(raw, cfg.min_duration), window / 3.0)

    def _rate(self, vector: str) -> float:
        cfg = self.config
        if vector == QUIC:
            raw = self._lognormal(cfg.quic_rate_median, cfg.quic_rate_sigma)
            return min(max(raw, cfg.quic_min_rate), cfg.quic_max_rate)
        raw = self._lognormal(cfg.common_rate_median, cfg.common_rate_sigma)
        return min(max(raw, cfg.common_min_rate), cfg.common_max_rate)

    # -- victim selection -----------------------------------------------------

    def _pick_target_class(self) -> str:
        names = [n for n, _w in self.config.provider_shares]
        weights = [w for _n, w in self.config.provider_shares]
        return names[self.rng.weighted_index(weights)]

    def _pick_victim(self, target_class: str) -> tuple:
        """Returns ``(victim_ip, provider_name_or_None)``."""
        if target_class == "unknown":
            return self.internet.random_unrouted_address(), None
        if target_class == "other-census":
            candidates = [
                r
                for r in self.internet.census.all_records()
                if r.provider not in ("Google", "Facebook")
            ]
            provider_key = "other-census"
        else:
            candidates = self.internet.census.by_provider(target_class)
            provider_key = target_class
        attacked = self._attacked.setdefault(provider_key, [])
        reuse = attacked and self.rng.random() > self.config.new_victim_probability
        if reuse:
            weights = [count for _ip, count in attacked]
            index = self.rng.weighted_index(weights)
            ip, count = attacked[index]
            attacked[index] = (ip, count + 1)
            record = self.internet.census.get(ip)
            return ip, record.provider if record else None
        record = self.rng.choice(candidates)
        for i, (ip, count) in enumerate(attacked):
            if ip == record.address:
                attacked[i] = (ip, count + 1)
                return record.address, record.provider
        attacked.append((record.address, 1))
        return record.address, record.provider

    # -- planning ---------------------------------------------------------

    def plan(self, start: float, end: float) -> AttackPlan:
        """Plan all floods for the window [start, end)."""
        window = end - start
        plan = AttackPlan()
        count = max(1, int(round(self.config.quic_floods_per_hour * window / HOUR)))
        categories = [c for c, _w in self.config.category_shares]
        weights = [w for _c, w in self.config.category_shares]
        for _ in range(count):
            duration = self._duration(QUIC, window)
            flood_start = start + self.rng.uniform(0, max(1.0, window - duration))
            target_class = self._pick_target_class()
            victim_ip, provider = self._pick_victim(target_class)
            rate = self._rate(QUIC)
            if provider == "Google":
                rate *= 0.7  # Figure 9: fewer packets per Google attack
            category = categories[self.rng.weighted_index(weights)]
            quic_flood = FloodEvent(
                victim_ip=victim_ip,
                vector=QUIC,
                start=flood_start,
                duration=duration,
                telescope_request_rate=rate,
                provider=provider,
                category=category,
                spoofed_pool_size=self.rng.randint(
                    self.config.spoofed_pool_min, self.config.spoofed_pool_max
                ),
            )
            plan.quic_floods.append(quic_flood)
            partner = self._plan_partner(quic_flood, start, end)
            if partner is not None:
                quic_flood.partner = partner
                plan.common_floods.append(partner)
        self._plan_background(plan, start, end)
        return plan

    def _plan_partner(
        self, quic_flood: FloodEvent, start: float, end: float
    ) -> Optional[FloodEvent]:
        cfg = self.config
        window = end - start
        vector = self.rng.choice([TCP, TCP, ICMP])  # TCP floods dominate
        if quic_flood.category == CONCURRENT:
            duration = self._duration(vector, window)
            if self.rng.random() < cfg.full_overlap_probability:
                # Fully parallel: the common flood covers the QUIC flood.
                duration = max(duration, quic_flood.duration * 1.05)
                partner_start = quic_flood.start - 0.025 * quic_flood.duration
            else:
                share = self.rng.uniform(0.05, 0.95)
                overlap = share * quic_flood.duration
                if self.rng.random() < 0.5:
                    partner_start = quic_flood.start - (duration - overlap)
                else:
                    partner_start = quic_flood.end - overlap
            partner_start = max(start, partner_start)
        elif quic_flood.category == SEQUENTIAL:
            duration = self._duration(vector, window)
            gap = max(
                cfg.min_sequential_gap,
                self._lognormal(cfg.sequential_gap_median, cfg.sequential_gap_sigma),
            )
            before = self.rng.random() < 0.5
            if before:
                partner_start = quic_flood.start - gap - duration
            else:
                partner_start = quic_flood.end + gap
            # Keep the partner inside the window; flip side if needed.
            if partner_start < start:
                partner_start = quic_flood.end + gap
            if partner_start + duration > end:
                gap = min(gap, (end - quic_flood.end) / 2)
                partner_start = min(quic_flood.end + max(gap, cfg.min_sequential_gap), end - duration)
                if partner_start <= quic_flood.end:
                    # Window too small for any gap: degrade to a short
                    # trailing flood right at the window edge.
                    partner_start = min(
                        quic_flood.end + cfg.min_sequential_gap, end - cfg.min_duration
                    )
                    duration = min(duration, end - partner_start)
            if duration < cfg.min_duration:
                return None
            partner_start = max(start, partner_start)
        else:  # ISOLATED: no partner
            return None
        # Attacks do not respect measurement windows, but the scenario
        # only materializes what the telescope records, so clamp to the
        # window.  Full-overlap partners still cover the QUIC flood
        # because the QUIC flood itself ends inside the window.
        partner_start = max(start, partner_start)
        duration = min(duration, end - partner_start)
        if duration < cfg.min_duration:
            return None
        return FloodEvent(
            victim_ip=quic_flood.victim_ip,
            vector=vector,
            start=partner_start,
            duration=duration,
            telescope_request_rate=self._rate(vector),
            provider=quic_flood.provider,
            spoofed_pool_size=self.rng.randint(
                cfg.spoofed_pool_min, cfg.spoofed_pool_max
            ),
        )

    def _plan_background(self, plan: AttackPlan, start: float, end: float) -> None:
        """TCP/ICMP floods against victims without QUIC attacks."""
        window = end - start
        quic_victims = {f.victim_ip for f in plan.quic_floods}
        count = int(round(self.config.common_floods_per_hour * window / HOUR))
        for _ in range(count):
            vector = self.rng.choice([TCP, TCP, TCP, ICMP])
            while True:
                victim_ip = self._background_victim()
                if victim_ip not in quic_victims:
                    break
            duration = self._duration(vector, window)
            flood_start = start + self.rng.uniform(0, max(1.0, window - duration))
            plan.common_floods.append(
                FloodEvent(
                    victim_ip=victim_ip,
                    vector=vector,
                    start=flood_start,
                    duration=duration,
                    telescope_request_rate=self._rate(vector),
                    spoofed_pool_size=self.rng.randint(
                        self.config.spoofed_pool_min, self.config.spoofed_pool_max
                    ),
                )
            )

    def _background_victim(self) -> int:
        """Any routed host: enterprises, transit customers, web servers."""
        systems = list(self.internet.registry)
        system = self.rng.choice(systems)
        prefix = self.rng.choice(system.prefixes)
        return prefix.address_at(self.rng.randint(1, prefix.size - 2))


class AttackTrafficModel:
    """Turns planned floods into the telescope's packet stream."""

    def __init__(
        self,
        internet: InternetModel,
        rng: SeededRng,
        config: AttackPlanConfig | None = None,
    ) -> None:
        self.internet = internet
        self.rng = rng.child("attack-traffic")
        self.config = config or AttackPlanConfig()

    def _policy_for(self, flood: FloodEvent) -> ResponderPolicy:
        record: Optional[QuicServerRecord] = self.internet.census.get(flood.victim_ip)
        if record is None:
            return ResponderPolicy(retransmit_probability=0.2)
        provider = None
        for candidate in self.internet.content_providers:
            if candidate.name == record.provider:
                provider = candidate
                break
        return ResponderPolicy(
            version=version_named(record.versions[0]),
            keepalive_pings=provider.keepalive_pings if provider else 0,
            scid_policy="request" if record.provider == "Google" else "source",
            retransmit_probability=0.2,
        )

    #: a response train never extends further than this past its request
    #: (keep-alives at +0.1 s, one PTO retransmission at +1 s).
    _TRAIN_SPAN = 1.5

    def flood_packets(self, flood: FloodEvent) -> Iterator:
        """Telescope packets for one flood, lazily, in time order.

        Requests are generated in order; each spawns a short response
        train, so a bounded reorder buffer suffices to emit a globally
        sorted stream without materializing the flood.
        """
        rng = self.rng.child(
            f"flood:{flood.vector}:{flood.victim_ip}:{flood.start:.3f}"
        )
        if flood.vector == QUIC:
            responder = QuicVictimResponder(
                flood.victim_ip, rng, self._policy_for(flood)
            )
        elif flood.vector == TCP:
            responder = TcpVictimResponder(flood.victim_ip, rng)
        else:
            responder = IcmpVictimResponder(flood.victim_ip, rng)
        pool = [
            self.internet.random_telescope_address(rng)
            for _ in range(flood.spoofed_pool_size)
        ]
        cfg = self.config
        buffer: list = []
        sequence = 0
        t = flood.start
        while True:
            t += rng.expovariate(flood.telescope_request_rate)
            if rng.random() < cfg.pulse_probability:
                # attacker pulse: a sub-timeout silence inside the flood
                t += min(
                    rng.lognormvariate(math.log(cfg.pulse_median), cfg.pulse_sigma),
                    cfg.pulse_max,
                )
            if t >= flood.end:
                break
            spoofed_ip = rng.choice(pool)
            spoofed_port = rng.randint(1024, 65535)
            for packet in responder.respond(t, spoofed_ip, spoofed_port):
                heapq.heappush(buffer, (packet.timestamp, sequence, packet))
                sequence += 1
            while buffer and buffer[0][0] <= t - self._TRAIN_SPAN:
                yield heapq.heappop(buffer)[2]
        while buffer:
            yield heapq.heappop(buffer)[2]

    def flood_records(self, flood: FloodEvent) -> Iterator:
        """:meth:`flood_packets` as flat gen records (same draws).

        The responder's ``respond_records`` twin shares the draw path
        with ``respond``, and the reorder buffer keys on the identical
        ``(timestamp, sequence)`` pairs, so the record stream is the
        packet stream minus the dataclasses.

        The request loop inlines its per-packet draws —
        ``expovariate`` is ``-log(1 - random()) / rate`` and ``choice``
        / ``randint`` bottom out in ``_randbelow``'s rejection loop
        over ``getrandbits`` — consuming the generator identically to
        the :class:`random.Random` methods the rich loop calls, while
        skipping two or three interpreter frames per draw.  TCP and
        ICMP floods additionally skip the reorder buffer entirely:
        their responders answer with exactly one record at the request
        timestamp, so the request order *is* the emit order.
        """
        rng = self.rng.child(
            f"flood:{flood.vector}:{flood.victim_ip}:{flood.start:.3f}"
        )
        if flood.vector == QUIC:
            responder = QuicVictimResponder(
                flood.victim_ip, rng, self._policy_for(flood)
            )
        elif flood.vector == TCP:
            responder = TcpVictimResponder(flood.victim_ip, rng)
        else:
            responder = IcmpVictimResponder(flood.victim_ip, rng)
        pool = [
            self.internet.random_telescope_address(rng)
            for _ in range(flood.spoofed_pool_size)
        ]
        cfg = self.config
        t = flood.start
        random = rng.random
        getrandbits = rng.getrandbits
        log = math.log
        rate = flood.telescope_request_rate
        end = flood.end
        pulse_probability = cfg.pulse_probability
        pulse_mu = log(cfg.pulse_median)
        pulse_sigma = cfg.pulse_sigma
        pulse_max = cfg.pulse_max
        lognormvariate = rng.lognormvariate
        pool_size = len(pool)
        pool_bits = pool_size.bit_length()
        victim = flood.victim_ip
        # randint(1024, 65535) == 1024 + _randbelow(64512); 64512 needs
        # 16 bits, so the rejection threshold is fixed at 64512.
        if flood.vector == TCP:
            # inlined TcpVictimResponder._respond_fields on the
            # responder's own child stream (identical draws)
            rrandom = responder.rng.random
            rbits = responder.rng.getrandbits
            rst_fraction = responder.rst_fraction
            service_port = responder.service_port
            rst_ack, syn_ack = int(_RST_ACK_FLAGS), int(_SYN_ACK_FLAGS)
            while True:
                t += -log(1.0 - random()) / rate
                if random() < pulse_probability:
                    t += min(lognormvariate(pulse_mu, pulse_sigma), pulse_max)
                if t >= end:
                    break
                r = getrandbits(pool_bits)
                while r >= pool_size:
                    r = getrandbits(pool_bits)
                spoofed_ip = pool[r]
                port = getrandbits(16)
                while port >= 64512:
                    port = getrandbits(16)
                flags = rst_ack if rrandom() < rst_fraction else syn_ack
                seq = rbits(33)
                while seq >= 4294967296:
                    seq = rbits(33)
                ack = rbits(33)
                while ack >= 4294967296:
                    ack = rbits(33)
                yield (
                    t, victim, spoofed_ip, 40, 6, 2,
                    service_port, 1024 + port, flags, 0, b"", seq, ack,
                )
            return
        if flood.vector == ICMP:
            # inlined IcmpVictimResponder.respond_records; the
            # identifier draw is randint(0, 0xFFFF) == _randbelow(65536)
            rbits = responder.rng.getrandbits
            sequence = 0
            while True:
                t += -log(1.0 - random()) / rate
                if random() < pulse_probability:
                    t += min(lognormvariate(pulse_mu, pulse_sigma), pulse_max)
                if t >= end:
                    break
                r = getrandbits(pool_bits)
                while r >= pool_size:
                    r = getrandbits(pool_bits)
                spoofed_ip = pool[r]
                port = getrandbits(16)
                while port >= 64512:
                    port = getrandbits(16)
                sequence = (sequence + 1) & 0xFFFF
                identifier = rbits(17)
                while identifier >= 65536:
                    identifier = rbits(17)
                yield (
                    t, victim, spoofed_ip, 60, 1, 3,
                    0, 0, 0, 32, _ICMP_RECORD_PAYLOAD, identifier, sequence,
                )
            return
        # QUIC: response trains extend past the request, so the bounded
        # reorder buffer from flood_packets is still required.
        buffer: list = []
        sequence = 0
        respond = responder.respond_records
        heappush, heappop = heapq.heappush, heapq.heappop
        span = self._TRAIN_SPAN
        while True:
            t += -log(1.0 - random()) / rate
            if random() < pulse_probability:
                # attacker pulse: a sub-timeout silence inside the flood
                t += min(lognormvariate(pulse_mu, pulse_sigma), pulse_max)
            if t >= end:
                break
            r = getrandbits(pool_bits)
            while r >= pool_size:
                r = getrandbits(pool_bits)
            spoofed_ip = pool[r]
            port = getrandbits(16)
            while port >= 64512:
                port = getrandbits(16)
            for record in respond(t, spoofed_ip, 1024 + port):
                heappush(buffer, (record[0], sequence, record))
                sequence += 1
            while buffer and buffer[0][0] <= t - span:
                yield heappop(buffer)[2]
        while buffer:
            yield heappop(buffer)[2]

    def packets(self, plan: AttackPlan) -> Iterator:
        """Merged, time-sorted packet stream for every planned flood."""
        streams = [self.flood_packets(flood) for flood in plan.all_floods]
        return heapq.merge(*streams, key=lambda p: p.timestamp)
