"""Diurnal activity modulation.

Figure 3 of the paper shows QUIC *requests* following a stable diurnal
pattern with peaks at 06:00 and 18:00 UTC — the signature of human-
schedule-coupled botnet activity.  :class:`DiurnalModel` provides a
rate multiplier over the day built from two Gaussian bumps on top of a
base level, normalized so the daily mean is 1.0 (total volume is then
controlled independently of shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.util.timeutil import HOUR


@dataclass
class DiurnalModel:
    """Two-peaked daily rate profile."""

    peak_hours: tuple = (6.0, 18.0)
    peak_width_hours: float = 2.5
    peak_amplitude: float = 1.1
    base_level: float = 0.6

    def _raw(self, hour: float) -> float:
        level = self.base_level
        for peak in self.peak_hours:
            # wrap-around distance on the 24h circle
            delta = min(abs(hour - peak), 24.0 - abs(hour - peak))
            level += self.peak_amplitude * math.exp(
                -0.5 * (delta / self.peak_width_hours) ** 2
            )
        return level

    # The mean and peak are pure in the (frozen-in-practice) shape
    # parameters but cost 96 ``_raw`` evaluations; the generators call
    # ``factor`` once per candidate event, so cache both normalizers.

    @cached_property
    def _daily_mean(self) -> float:
        samples = [self._raw(h / 4.0) for h in range(96)]
        return sum(samples) / len(samples)

    @cached_property
    def _peak_raw(self) -> float:
        return max(self._raw(h / 4.0) for h in range(96))

    def factor(self, timestamp: float) -> float:
        """Rate multiplier at an epoch timestamp (daily mean is 1.0)."""
        hour = (timestamp % 86400.0) / HOUR
        return self._raw(hour) / self._daily_mean

    def thin_probability(self, timestamp: float) -> float:
        """Acceptance probability for thinning a homogeneous Poisson
        process at the peak rate into this profile."""
        return self.factor(timestamp) / self.peak_rate_factor()

    def peak_rate_factor(self) -> float:
        """Largest multiplier over the day (used to set thinning rates)."""
        return self._peak_raw / self._daily_mean
