"""Sharded parallel scenario generation, bit-identical to serial.

The producer-side mirror of :mod:`repro.core.parallel`: where the
analysis runner shards *consumption* of a packet stream by source IP,
this module shards *production* of the stream by generation unit — the
per-actor record iterators :meth:`Scenario.record_units` exposes (each
research sweep, the bot and TCP scanners, each planned flood, the
misconfiguration and stray-UDP noise).

Why this is exact
-----------------

Every unit draws from its own ``SeededRng`` stream, split from the
scenario seed by label (``SeededRng.split`` — independent of draw
order anywhere else), so a worker that rebuilds the scenario from its
config and runs a *subset* of units produces byte-for-byte the records
the serial path produces for those units.  The one shared-stream
exception, the stray-UDP model's ``random_unrouted_address()`` draw
against the topology RNG, is confined to a single unit and therefore a
single worker.  Serial order is the k-way merge of all units by
``(timestamp, unit index)`` (``heapq.merge`` breaks ties toward the
earlier iterator); each worker locally merges its own units by
timestamp — a subset of units preserves their relative order, so the
worker's stream is sorted by the same key — and the parent merges the
worker streams by ``(timestamp, unit index)``, reproducing the serial
sequence exactly.  The telescope filter runs parent-side, after the
merge, just as in the serial path.

Transport
---------

The shared-memory ring transport of ``core/parallel.py``, reversed:
each worker owns a ring of slots in a parent-created segment, packs
fixed-width scalar records (:data:`_GEN_RECORD` — the analysis record
plus the wire-only x1/x2 fields and the unit tag) plus payload bytes
into free slots, and sends tiny ``(slot, count)`` descriptors; the
parent parses records in place and acks drained slots back.  Payload
bytes are shipped only for UDP (kind 1) records — TCP records carry no
payload and ICMP echo payloads are all-zero by construction
(:mod:`repro.telescope.backscatter`), so the parent reconstructs them
locally.
"""

from __future__ import annotations

import collections
import heapq
import multiprocessing
import queue as queue_module
import struct
import traceback
from typing import Iterator

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

from repro import obs
from repro.core.parallel import RING_SLOTS, SLOT_SIZE, _attach_segment
from repro.telescope.genlane import M_GEN_WORKERS, M_SHARD_RECORDS

#: one generated record, little-endian, no padding: timestamp f64,
#: src u32, dst u32, total_length u16, proto u8, kind u8, f1 u16,
#: f2 u16, f3 u16, payload_length u32, x1 u32, x2 u32, unit u32.
#: ``kind`` carries the payload-follows flag in its high bit, exactly
#: like the analysis transport.
_GEN_RECORD = struct.Struct("<dIIHBBHHHIIII")
_PAYLOAD_FLAG = 0x80
_FLUSH_WATERMARK = SLOT_SIZE - (_GEN_RECORD.size + 0x10000)
_BATCH = 512


def _tagged(unit_iter, unit: int):
    for record in unit_iter:
        yield record, unit


def _gen_worker(
    index,
    config,
    unit_indices,
    shm_name,
    slot_size,
    slots,
    desc_queue,
    ack_queue,
    metrics_enabled=False,
) -> None:
    """Generate the assigned units, locally merged, into ring slots.

    The worker rebuilds the scenario from its config (deterministic:
    planning and model construction depend only on the seed), merges
    its units by timestamp — stable, so ties fall to the lower unit
    index — and ships packed records tagged with the global unit index
    the parent's k-way merge keys on.  Ends with a ``("done",
    snapshot)`` descriptor, or ``("error", traceback)`` on failure.
    """
    segment = None
    try:
        obs.REGISTRY.reset()
        obs.set_enabled(metrics_enabled)
        from repro.telescope.workload import Scenario

        segment = _attach_segment(shm_name)
        buf = segment.buf
        units = Scenario(config).record_units()
        free = collections.deque(range(slots))
        pack = _GEN_RECORD.pack
        buffer = bytearray()
        count = 0
        shipped = 0

        def flush() -> None:
            nonlocal buffer, count
            while True:
                try:
                    free.append(ack_queue.get_nowait())
                except queue_module.Empty:
                    break
            # parent acks every drained slot; daemonized workers die
            # with the parent, so an indefinite wait cannot leak
            slot = free.popleft() if free else ack_queue.get()
            base = slot * slot_size
            buf[base : base + len(buffer)] = buffer
            desc_queue.put((slot, count))
            buffer = bytearray()
            count = 0

        streams = [_tagged(units[unit], unit) for unit in unit_indices]
        merged = heapq.merge(*streams, key=lambda item: item[0][0])
        for record, unit in merged:
            plen = record[9]
            kind = record[5]
            ship = plen and kind == 1
            if len(record) == 11:
                x1 = x2 = 0
            else:
                x1 = record[11]
                x2 = record[12]
            buffer += pack(
                record[0],
                record[1],
                record[2],
                record[3],
                record[4],
                (kind | _PAYLOAD_FLAG) if ship else kind,
                record[6],
                record[7],
                record[8],
                plen,
                x1,
                x2,
                unit,
            )
            if ship:
                buffer += record[10]
            count += 1
            shipped += 1
            if count >= _BATCH or len(buffer) >= _FLUSH_WATERMARK:
                flush()
        if count:
            flush()
        if obs.enabled():
            M_SHARD_RECORDS.inc(shipped, worker=str(index))
            snapshot = obs.REGISTRY.snapshot(run_collectors=False)
        else:
            snapshot = None
        desc_queue.put(("done", snapshot))
    except BaseException:
        desc_queue.put(("error", traceback.format_exc()))
    finally:
        if segment is not None:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass


def _get_with_liveness(q, process):
    """Blocking get that notices a dead worker instead of hanging."""
    while True:
        try:
            return q.get(timeout=5.0)
        except queue_module.Empty:
            if not process.is_alive():
                raise RuntimeError(
                    f"generation worker {process.name} died "
                    f"(exit {process.exitcode})"
                ) from None


def _worker_stream(
    index, buf, slot_size, desc_queue, ack_queue, process, snapshots
) -> Iterator[tuple]:
    """Yield ``(timestamp, unit, record)`` triples from one worker.

    Records are parsed straight out of the shared segment; each slot is
    acked back once fully drained.  The worker's terminal ``done``
    descriptor parks its metrics snapshot in ``snapshots``.
    """
    unpack_from = _GEN_RECORD.unpack_from
    record_size = _GEN_RECORD.size
    zeros: dict[int, bytes] = {}
    while True:
        descriptor = _get_with_liveness(desc_queue, process)
        head = descriptor[0]
        if head == "done":
            snapshots[index] = descriptor[1]
            return
        if head == "error":
            raise RuntimeError(
                f"generation worker {index} failed:\n{descriptor[1]}"
            )
        slot, count = descriptor
        offset = slot * slot_size
        for _ in range(count):
            fields = unpack_from(buf, offset)
            offset += record_size
            kind = fields[5]
            plen = fields[9]
            if kind & _PAYLOAD_FLAG:
                kind &= 0x7F
                payload = bytes(buf[offset : offset + plen])
                offset += plen
            else:
                payload = zeros.get(plen)
                if payload is None:
                    payload = zeros[plen] = b"\x00" * plen
            if kind == 1:
                record = fields[:5] + (kind, *fields[6:9], plen, payload)
            else:
                record = fields[:5] + (
                    kind,
                    *fields[6:9],
                    plen,
                    payload,
                    fields[10],
                    fields[11],
                )
            yield fields[0], fields[12], record
        ack_queue.put(slot)


def generate_records(scenario, workers: int) -> Iterator[tuple]:
    """The scenario's gen-record stream, produced by ``workers``
    processes and merged back into exact serial order.

    Yields raw (unfiltered) records — callers apply
    ``Telescope.capture_records`` on top, like
    :meth:`Scenario.records` does — in the identical sequence the
    serial merge produces, so downstream pcap bytes and pipeline
    results are bit-identical to a one-process run.
    """
    units = scenario.record_units()
    if not units:
        return
    workers = max(1, min(int(workers), len(units)))
    if workers == 1 or _shared_memory is None:
        merged = heapq.merge(
            *(_tagged(unit_iter, i) for i, unit_iter in enumerate(units)),
            key=lambda item: item[0][0],
        )
        for record, _unit in merged:
            yield record
        return
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    segments = []
    try:
        segments = [
            _shared_memory.SharedMemory(create=True, size=RING_SLOTS * SLOT_SIZE)
            for _ in range(workers)
        ]
    except (OSError, ValueError):
        for segment in segments:
            segment.close()
            segment.unlink()
        # no usable shared memory: fall back to in-process generation
        merged = heapq.merge(
            *(_tagged(unit_iter, i) for i, unit_iter in enumerate(units)),
            key=lambda item: item[0][0],
        )
        for record, _unit in merged:
            yield record
        return
    desc_queues = [ctx.Queue(maxsize=RING_SLOTS + 2) for _ in range(workers)]
    ack_queues = [ctx.Queue() for _ in range(workers)]
    processes = [
        ctx.Process(
            target=_gen_worker,
            args=(
                index,
                scenario.config,
                list(range(index, len(units), workers)),
                segments[index].name,
                SLOT_SIZE,
                RING_SLOTS,
                desc_queues[index],
                ack_queues[index],
                obs.enabled(),
            ),
            name=f"quicsand-gen-{index}",
            daemon=True,
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    snapshots: list = [None] * workers
    try:
        streams = [
            _worker_stream(
                index,
                segments[index].buf,
                SLOT_SIZE,
                desc_queues[index],
                ack_queues[index],
                processes[index],
                snapshots,
            )
            for index in range(workers)
        ]
        # ties on (timestamp, unit) cannot occur across workers (a unit
        # lives on one worker), so this total order equals serial order
        for _ts, _unit, record in heapq.merge(
            *streams, key=lambda item: (item[0], item[1])
        ):
            yield record
        M_GEN_WORKERS.set(workers)
        for snapshot in snapshots:
            if snapshot is not None:
                obs.REGISTRY.merge_snapshot(snapshot)
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        for segment in segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - double close
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
