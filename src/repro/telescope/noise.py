"""Misconfiguration noise: the low-volume backscatter the paper excludes.

Appendix B characterizes the response sessions *below* the DoS
thresholds: median 0.18 max-pps, 7 s long, 11 packets — traffic from
misconfigured resolvers/load balancers and one-off spoofing, not
attacks.  Modeling it matters because the detector must *reject* it
(the paper classifies only 11% of response sessions as attacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.internet.topology import InternetModel
from repro.telescope.backscatter import QuicVictimResponder, ResponderPolicy


@dataclass
class MisconfigurationModel:
    """Short, slow QUIC response bursts from random content hosts."""

    internet: InternetModel
    rng: SeededRng
    sessions_per_day: float = 770.0
    mean_packets_per_session: float = 11.0
    mean_duration: float = 7.0

    def __post_init__(self) -> None:
        self.rng = self.rng.child("misconfig")

    def _pick_source(self) -> int:
        """A random routed content/enterprise host dribbling responses."""
        servers = self.internet.all_quic_servers
        if servers and self.rng.random() < 0.8:
            return self.rng.choice(servers).address
        systems = list(self.internet.registry)
        system = self.rng.choice(systems)
        prefix = self.rng.choice(system.prefixes)
        return prefix.address_at(self.rng.randint(1, prefix.size - 2))

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        """All misconfiguration packets in [start, end), time-sorted."""
        rate = self.sessions_per_day / 86400.0
        sessions = []
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            sessions.append(self._session(t))
        merged = sorted(
            (p for session in sessions for p in session), key=lambda p: p.timestamp
        )
        for packet in merged:
            if start <= packet.timestamp < end:
                yield packet

    def _session(self, session_start: float) -> list:
        return self._session_items(session_start, records=False)

    def _session_items(self, session_start: float, records: bool) -> list:
        source = self._pick_source()
        responder = QuicVictimResponder(
            source,
            self.rng.child(f"noise:{source}:{session_start:.3f}"),
            ResponderPolicy(),
        )
        count = max(1, int(self.rng.expovariate(1.0 / self.mean_packets_per_session)) + 1)
        # 11 packets over ~7 s; each spoofed "request" yields a short
        # train, so scale the request count down by the train length.
        requests = max(1, count // 3)
        dst = self.internet.random_telescope_address(self.rng)
        dst_port = self.rng.randint(1024, 65535)
        respond = responder.respond_records if records else responder.respond
        packets = []
        t = session_start
        for _ in range(requests):
            packets.extend(respond(t, dst, dst_port))
            t += self.rng.expovariate(requests / max(self.mean_duration, 1.0))
        packets.sort(key=(lambda r: r[0]) if records else (lambda p: p.timestamp))
        return packets

    def records(self, start: float, end: float) -> Iterator[tuple]:
        """``packets()`` as flat gen records (same draws, same order)."""
        rate = self.sessions_per_day / 86400.0
        sessions = []
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            sessions.append(self._session_items(t, records=True))
        merged = sorted(
            (r for session in sessions for r in session), key=lambda r: r[0]
        )
        for record in merged:
            if start <= record[0] < end:
                yield record


@dataclass
class StrayUdpModel:
    """Non-QUIC UDP/443 traffic: DTLS probes, garbage, misrouted flows.

    These exercise the classifier's dissector step — port-based
    selection alone would wrongly count them as QUIC (Section 4.1).
    """

    internet: InternetModel
    rng: SeededRng
    packets_per_day: float = 400.0

    def __post_init__(self) -> None:
        self.rng = self.rng.child("stray-udp")

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        rate = self.packets_per_day / 86400.0
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            to_port_443 = self.rng.random() < 0.5
            # DTLS 1.2 ClientHello-ish or plain garbage — either way it
            # must fail QUIC dissection.
            if self.rng.random() < 0.5:
                payload = b"\x16\xfe\xfd" + self.rng.randbytes(45)
            else:
                payload = self.rng.randbytes(self.rng.randint(1, 25))
            source = self.internet.random_unrouted_address()
            dst = self.internet.random_telescope_address(self.rng)
            yield CapturedPacket(
                timestamp=t,
                ip=IPv4Header(src=source, dst=dst, proto=IPProto.UDP),
                transport=UdpHeader(
                    src_port=443 if not to_port_443 else self.rng.randint(1024, 65535),
                    dst_port=443 if to_port_443 else self.rng.randint(1024, 65535),
                ),
                payload=payload,
            )

    def records(self, start: float, end: float) -> Iterator[tuple]:
        """``packets()`` as flat gen records (same draws, same order).

        Note the ``random_unrouted_address()`` call draws from the
        *shared* topology RNG — this stream must therefore stay a single
        generation unit (see ``telescope/parallel.py``), which keeps
        sharded generation bit-identical.
        """
        rate = self.packets_per_day / 86400.0
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            to_port_443 = self.rng.random() < 0.5
            if self.rng.random() < 0.5:
                payload = b"\x16\xfe\xfd" + self.rng.randbytes(45)
            else:
                payload = self.rng.randbytes(self.rng.randint(1, 25))
            source = self.internet.random_unrouted_address()
            dst = self.internet.random_telescope_address(self.rng)
            src_port = 443 if not to_port_443 else self.rng.randint(1024, 65535)
            dst_port = 443 if to_port_443 else self.rng.randint(1024, 65535)
            plen = len(payload)
            yield (t, source, dst, 28 + plen, 17, 1, src_port, dst_port, 0, plen, payload)
