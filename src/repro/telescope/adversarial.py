"""Adversarial QUIC workloads beyond the paper's four IBR classes.

The paper's telescope only ever saw 2021-vintage traffic: research
sweeps, bot recon, spoofed-flood backscatter, and noise.  This module
generates *attack shapes the pipeline was never tuned for*, drawn from
related work, so detector behaviour under them is pinned by tests
rather than assumed:

- :class:`OptimisticAckFloodModel` — optimistic-ACK amplification: the
  attacker ACKs data it never received, tricking the victim into
  ramping its send rate; the telescope sees the victim spraying large
  1-RTT datagrams at spoofed addresses (high bytes/packet backscatter).
- :class:`H3RequestFloodModel` — an HTTP/3 request flood *at* the
  telescope: coalesced Initial + 0-RTT datagrams carrying H3 HEADERS
  frames.  Request-class traffic, so the honest classification is
  "uncategorized" — no flood alert.
- :class:`H3SlowlorisModel` — the slow variant: each source drips one
  request byte-chunk at a time, holding sessions open for the whole
  window at negligible rate.
- :class:`PulseWaveFloodModel` — one victim hit by short bursts
  separated by silences *longer* than the session timeout, so a single
  campaign fragments into several detected floods.
- :class:`CarpetBombFloodModel` — every host in a /24 around one census
  server flooded at once: many victims, ~one attack each, mostly
  unknown to the census (stresses victim aggregation).
- :class:`VnRetryFloodModel` — backscatter made of Version Negotiation
  and RETRY packets: a victim deflecting a spoofed flood with stateless
  responses, which exercises the passive-RETRY counters.

Every model draws from :class:`~repro.util.rng.SeededRng` children
derived from *labels*, never from shared mutable state, so
``records()`` is idempotent: the same model yields the same stream on
every call, which is what lets the rich path, the generation fast lane,
and re-built worker-process scenarios agree bit for bit.  All
adversarial traffic is UDP, so ``packets()`` is a thin wrapper that
boxes each gen record into a :class:`~repro.net.packet.CapturedPacket`
— one generator, one draw path, zero twin-divergence risk.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterator

from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.quic.crypto import derive_handshake_secret
from repro.quic.frames import StreamFrame
from repro.quic.h3 import H3Request
from repro.quic.header import LongHeader, PacketType, VersionNegotiationPacket
from repro.quic.packet import PlainPacket, protect_packet
from repro.quic.retry import RetryTokenMinter, build_retry_packet
from repro.quic.versions import KNOWN_VERSIONS, QUIC_V1
from repro.telescope.backscatter import (
    QuicVictimResponder,
    ResponderPolicy,
    version_named,
)
from repro.telescope.scanners import ProbePool
from repro.util.rng import SeededRng

#: every generator this module knows how to build, in registration order.
ADVERSARIAL_KINDS = (
    "optimistic-ack",
    "h3-flood",
    "h3-slowloris",
    "pulse-wave",
    "carpet-bomb",
    "vn-retry",
)


@dataclass(frozen=True)
class AdversarialSpec:
    """One adversarial traffic source, picklable for worker rebuilds.

    Knobs are generic across kinds; each model reads the subset it
    needs (``pulses``/``pulse_gap`` only matter to pulse waves,
    ``victims`` only to carpet bombing, and so on).
    """

    kind: str
    #: event window, relative to the scenario start.
    start_offset: float = 300.0
    duration: float = 600.0
    #: attack events per second (triggers, requests, or per-victim rate).
    rate: float = 1.0
    #: datagrams the victim sends per optimistic-ACK trigger.
    burst: int = 8
    #: distinct attacker source addresses (request floods).
    sources: int = 24
    #: victims per carpet-bombed prefix.
    victims: int = 12
    pulses: int = 3
    pulse_duration: float = 90.0
    #: silence between pulses; above the 300 s session timeout it
    #: fragments one campaign into several detected floods.
    pulse_gap: float = 420.0
    #: bounded wire-shape pools (keeps dissector memo + templates warm).
    payload_pool: int = 12
    #: spoofed telescope addresses per flood.
    spoofed_pool: int = 16


def _udp_record(t, src, dst, sport, dport, payload) -> tuple:
    """One 11-field UDP gen record (see :mod:`repro.telescope.genlane`)."""
    plen = len(payload)
    return (t, src, dst, 28 + plen, 17, 1, sport, dport, 0, plen, payload)


def _census_policy(internet, victim_ip: int) -> ResponderPolicy:
    """The victim's response policy, provider-aware when census-known."""
    record = internet.census.get(victim_ip)
    if record is None:
        return ResponderPolicy(retransmit_probability=0.2)
    provider = None
    for candidate in internet.content_providers:
        if candidate.name == record.provider:
            provider = candidate
            break
    return ResponderPolicy(
        version=version_named(record.versions[0]),
        keepalive_pings=provider.keepalive_pings if provider else 0,
        scid_policy="request" if record.provider == "Google" else "source",
        retransmit_probability=0.2,
    )


class _AdversarialModel:
    """Shared plumbing: seeded children, windows, the packet wrapper."""

    def __init__(self, spec: AdversarialSpec, internet, rng: SeededRng) -> None:
        self.spec = spec
        self.internet = internet
        self.rng = rng.child(f"adversarial:{spec.kind}")

    def _window(self, start: float, end: float) -> tuple:
        t0 = start + self.spec.start_offset
        return t0, min(end, t0 + self.spec.duration)

    def _spoofed_pool(self, rng: SeededRng) -> list:
        return [
            self.internet.random_telescope_address(rng)
            for _ in range(self.spec.spoofed_pool)
        ]

    def records(self, start: float, end: float) -> Iterator[tuple]:
        raise NotImplementedError

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        """The record stream boxed as captured packets (same draws).

        All adversarial traffic is UDP, so unlike the scanner/flood
        models there is no separate rich generator to keep in lockstep:
        this *is* the record stream.
        """
        for r in self.records(start, end):
            yield CapturedPacket(
                timestamp=r[0],
                ip=IPv4Header(src=r[1], dst=r[2], proto=IPProto.UDP),
                transport=UdpHeader(src_port=r[6], dst_port=r[7]),
                payload=r[10],
            )


class OptimisticAckFloodModel(_AdversarialModel):
    """Optimistic-ACK amplification seen from the telescope.

    The victim — a known QUIC server — is tricked into streaming at
    full rate to spoofed addresses: every trigger produces a burst of
    near-MTU 1-RTT (short header) datagrams from port 443.  The
    detector should see a textbook QUIC response flood, just with an
    anomalous bytes-per-packet profile.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        pick = self.rng.child("victim")
        self.victim_ip = pick.choice(internet.census.all_records()).address

    def records(self, start: float, end: float) -> Iterator[tuple]:
        spec = self.spec
        t0, t1 = self._window(start, end)
        if t1 <= t0:
            return
        rng = self.rng.child("traffic")
        pool = self._spoofed_pool(rng)
        prng = self.rng.child("payloads")
        # 1-RTT datagrams: long bit clear, fixed bit set, random body —
        # exactly the shape the dissector's short-header heuristic
        # accepts (>= 26 bytes, 0x40 set).
        payloads = [
            bytes([0x40 | (i & 0x3F)]) + prng.randbytes(1199)
            for i in range(spec.payload_pool)
        ]
        victim = self.victim_ip
        buffer: list = []
        sequence = 0
        # bursts span under half a millisecond per packet; the reorder
        # buffer absorbs triggers that arrive faster than a burst drains.
        span = 0.0004 * spec.burst + 0.001
        t = t0
        while True:
            t += rng.expovariate(spec.rate)
            if t >= t1:
                break
            dst = rng.choice(pool)
            port = rng.randint(1024, 65535)
            for j in range(spec.burst):
                payload = rng.choice(payloads)
                heapq.heappush(
                    buffer,
                    (
                        t + 0.0004 * j,
                        sequence,
                        _udp_record(t + 0.0004 * j, victim, dst, 443, port, payload),
                    ),
                )
                sequence += 1
            while buffer and buffer[0][0] <= t - span:
                yield heapq.heappop(buffer)[2]
        while buffer:
            yield heapq.heappop(buffer)[2]


def _h3_request_datagrams(probe_rng, request_rng, count: int) -> list:
    """Coalesced ``Initial + 0-RTT(H3 HEADERS)`` attack datagrams.

    The 0-RTT packet carries a STREAM frame with a serialized HTTP/3
    request — the wire shape an early-data request flood replays.
    """
    pool = ProbePool(probe_rng, size=max(1, count))
    datagrams = []
    for i in range(count):
        dcid = request_rng.randbytes(8)
        scid = request_rng.randbytes(8)
        keys = derive_handshake_secret(QUIC_V1, dcid, "client hs")
        body = H3Request(authority="cdn.invalid", path=f"/flood/{i}").serialize()
        packet = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.ZERO_RTT,
                version=QUIC_V1.value,
                dcid=dcid,
                scid=scid,
            ),
            packet_number=1,
            frames=[StreamFrame(0, 0, body, True)],
        )
        datagrams.append(pool.next_probe() + protect_packet(packet, keys))
    return datagrams


def _attacker_sources(internet, rng: SeededRng, count: int) -> list:
    """Random non-telescope source addresses from the model's own rng."""
    sources = []
    while len(sources) < count:
        address = rng.getrandbits(32)
        if address in internet.telescope_net:
            continue
        sources.append(address)
    return sources


class H3RequestFloodModel(_AdversarialModel):
    """HTTP/3 request flood sprayed across the telescope prefix.

    Request-class traffic never reaches the flood detector, so the
    *correct* pipeline answer is request sessions and zero flood
    alerts — the detector-behaviour test pins exactly that.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        self.sources = _attacker_sources(
            internet, self.rng.child("sources"), spec.sources
        )

    def records(self, start: float, end: float) -> Iterator[tuple]:
        spec = self.spec
        t0, t1 = self._window(start, end)
        if t1 <= t0:
            return
        rng = self.rng.child("traffic")
        datagrams = _h3_request_datagrams(
            self.rng.child("probes"),
            self.rng.child("requests"),
            spec.payload_pool,
        )
        internet = self.internet
        t = t0
        while True:
            t += rng.expovariate(spec.rate)
            if t >= t1:
                break
            src = rng.choice(self.sources)
            dst = internet.random_telescope_address(rng)
            sport = rng.randint(1024, 65535)
            yield _udp_record(t, src, dst, sport, 443, rng.choice(datagrams))


class H3SlowlorisModel(_AdversarialModel):
    """Slowloris-style HTTP/3: open a handshake, then drip the request.

    Each source sends one Initial and then one tiny STREAM chunk every
    few dozen seconds — always inside the session timeout, so each
    source holds one long, slow request session for the whole window.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        self.sources = _attacker_sources(
            internet, self.rng.child("sources"), spec.sources
        )

    def records(self, start: float, end: float) -> Iterator[tuple]:
        t0, t1 = self._window(start, end)
        if t1 <= t0:
            return
        streams = [
            self._source_records(i, t0, t1) for i in range(len(self.sources))
        ]
        yield from heapq.merge(*streams, key=itemgetter(0))

    def _source_records(self, index: int, t0: float, t1: float) -> list:
        spec = self.spec
        rng = self.rng.child(f"source:{index}")
        src = self.sources[index]
        dst = self.internet.random_telescope_address(rng)
        sport = rng.randint(1024, 65535)
        probe = ProbePool(rng.child("probe"), size=1).next_probe()
        dcid = rng.randbytes(8)
        scid = rng.randbytes(8)
        keys = derive_handshake_secret(QUIC_V1, dcid, "client hs")
        body = H3Request(
            authority="cdn.invalid",
            path=f"/slow/{index}",
            extra_headers=[("x-filler", "y" * 64)],
        ).serialize()
        chunks = 16
        step = max(1, (len(body) + chunks - 1) // chunks)
        pieces = [body[i : i + step] for i in range(0, len(body), step)]
        # well under the 300 s session timeout: the drip never lets the
        # session close, which is the whole point of the attack.
        gap = (t1 - t0) / (len(pieces) + 2)
        t = t0 + rng.uniform(0.0, gap)
        out = [_udp_record(t, src, dst, sport, 443, probe)]
        offset = 0
        for n, piece in enumerate(pieces):
            t += gap * rng.uniform(0.6, 1.4)
            if t >= t1:
                break
            packet = PlainPacket(
                header=LongHeader(
                    packet_type=PacketType.ZERO_RTT,
                    version=QUIC_V1.value,
                    dcid=dcid,
                    scid=scid,
                ),
                packet_number=1 + n,
                frames=[
                    StreamFrame(0, offset, piece, n == len(pieces) - 1)
                ],
            )
            out.append(
                _udp_record(t, src, dst, sport, 443, protect_packet(packet, keys))
            )
            offset += len(piece)
        return out


class PulseWaveFloodModel(_AdversarialModel):
    """Pulse-wave flood: bursts separated by super-timeout silences.

    One campaign against one victim, but every inter-pulse gap exceeds
    the session timeout — so the sessionizer closes and the detector
    reports one flood *per pulse*, all against the same victim.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        pick = self.rng.child("victim")
        self.victim_ip = pick.choice(internet.census.all_records()).address
        self.policy = _census_policy(internet, self.victim_ip)

    def records(self, start: float, end: float) -> Iterator[tuple]:
        spec = self.spec
        t0 = start + spec.start_offset
        if t0 >= end:
            return
        rng = self.rng.child("traffic")
        responder = QuicVictimResponder(self.victim_ip, rng, self.policy)
        pool = self._spoofed_pool(rng)
        buffer: list = []
        sequence = 0
        span = 1.5  # response trains never extend further than this
        for pulse in range(spec.pulses):
            p_start = t0 + pulse * (spec.pulse_duration + spec.pulse_gap)
            p_end = min(p_start + spec.pulse_duration, end)
            if p_start >= end:
                break
            t = p_start
            while True:
                t += rng.expovariate(spec.rate)
                if t >= p_end:
                    break
                spoofed = rng.choice(pool)
                port = rng.randint(1024, 65535)
                for record in responder.respond_records(t, spoofed, port):
                    heapq.heappush(buffer, (record[0], sequence, record))
                    sequence += 1
                while buffer and buffer[0][0] <= t - span:
                    yield heapq.heappop(buffer)[2]
        while buffer:
            yield heapq.heappop(buffer)[2]


class CarpetBombFloodModel(_AdversarialModel):
    """Carpet bombing: every host of a /24 flooded simultaneously.

    Anchored on one census server so the prefix is plausible QUIC
    hosting space, but the neighbours are census-unknown — victim
    aggregation should report many victims, roughly one attack each,
    and a known-server share far below the paper's 98 %.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        pick = self.rng.child("victim")
        anchor = pick.choice(internet.census.all_records()).address
        base = anchor & 0xFFFFFF00
        hosts = {anchor} | {base | (1 + i) for i in range(spec.victims - 1)}
        self.victim_ips = sorted(hosts)
        self.policies = {
            ip: _census_policy(internet, ip) for ip in self.victim_ips
        }

    def records(self, start: float, end: float) -> Iterator[tuple]:
        t0, t1 = self._window(start, end)
        if t1 <= t0:
            return
        streams = [
            self._victim_records(i, ip, t0, t1)
            for i, ip in enumerate(self.victim_ips)
        ]
        yield from heapq.merge(*streams, key=itemgetter(0))

    def _victim_records(self, index: int, victim_ip: int, t0: float, t1: float):
        spec = self.spec
        rng = self.rng.child(f"victim:{index}:{victim_ip}")
        responder = QuicVictimResponder(victim_ip, rng, self.policies[victim_ip])
        pool = self._spoofed_pool(rng)
        buffer: list = []
        sequence = 0
        span = 1.5
        t = t0 + rng.uniform(0.0, 5.0)
        while True:
            t += rng.expovariate(spec.rate)
            if t >= t1:
                break
            spoofed = rng.choice(pool)
            port = rng.randint(1024, 65535)
            for record in responder.respond_records(t, spoofed, port):
                heapq.heappush(buffer, (record[0], sequence, record))
                sequence += 1
            while buffer and buffer[0][0] <= t - span:
                yield heapq.heappop(buffer)[2]
        while buffer:
            yield heapq.heappop(buffer)[2]


class VnRetryFloodModel(_AdversarialModel):
    """Backscatter of Version Negotiation and RETRY packets.

    A victim deflecting a spoofed flood statelessly: half the answers
    are VN packets (attacker sent a hostile version), half are RETRYs
    with valid integrity tags (address validation engaged).  Both are
    response-class QUIC, so the flood detector fires — and the
    passive-RETRY counter, normally near zero, lights up.
    """

    def __init__(self, spec, internet, rng) -> None:
        super().__init__(spec, internet, rng)
        pick = self.rng.child("victim")
        self.victim_ip = pick.choice(internet.census.all_records()).address

    def records(self, start: float, end: float) -> Iterator[tuple]:
        spec = self.spec
        t0, t1 = self._window(start, end)
        if t1 <= t0:
            return
        rng = self.rng.child("traffic")
        prng = self.rng.child("payloads")
        versions = tuple(v.value for v in KNOWN_VERSIONS[:2]) or (QUIC_V1.value,)
        vn_payloads = [
            VersionNegotiationPacket(
                dcid=prng.randbytes(8),
                scid=prng.randbytes(8),
                supported_versions=versions,
            ).serialize()
            for _ in range(spec.payload_pool)
        ]
        minter = RetryTokenMinter(secret=prng.randbytes(16))
        retry_payloads = []
        for _ in range(spec.payload_pool):
            odcid = prng.randbytes(8)
            token = minter.mint(
                client_ip=prng.getrandbits(32),
                client_port=1024 + prng.getrandbits(10),
                odcid=odcid,
                now=t0,
            )
            retry_payloads.append(
                build_retry_packet(
                    QUIC_V1.value,
                    dcid=prng.randbytes(8),
                    scid=prng.randbytes(8),
                    odcid=odcid,
                    token=token,
                )
            )
        payloads = vn_payloads + retry_payloads
        pool = self._spoofed_pool(rng)
        victim = self.victim_ip
        t = t0
        while True:
            t += rng.expovariate(spec.rate)
            if t >= t1:
                break
            spoofed = rng.choice(pool)
            port = rng.randint(1024, 65535)
            yield _udp_record(t, victim, spoofed, 443, port, rng.choice(payloads))


_MODELS = {
    "optimistic-ack": OptimisticAckFloodModel,
    "h3-flood": H3RequestFloodModel,
    "h3-slowloris": H3SlowlorisModel,
    "pulse-wave": PulseWaveFloodModel,
    "carpet-bomb": CarpetBombFloodModel,
    "vn-retry": VnRetryFloodModel,
}

assert tuple(_MODELS) == ADVERSARIAL_KINDS


def build_adversarial_model(
    spec: AdversarialSpec, internet, rng: SeededRng
) -> _AdversarialModel:
    """Instantiate the generator for one :class:`AdversarialSpec`."""
    try:
        cls = _MODELS[spec.kind]
    except KeyError:
        known = ", ".join(ADVERSARIAL_KINDS)
        raise ValueError(
            f"unknown adversarial kind {spec.kind!r} (known: {known})"
        ) from None
    return cls(spec, internet, rng)
