"""Scenario composition: a full synthetic measurement campaign.

A :class:`Scenario` wires the Internet model and every traffic source
into one time-sorted packet stream, together with the *ground truth*
(planned floods, research sources, bot sessions) that tests and benches
compare detector output against.  The default configuration is a
laptop-scale version of the paper's April 2021 month: per-event
statistics (durations, rates, session sizes) are at paper scale, event
*counts* are scaled by window length, and research sweeps are sampled
(see :mod:`repro.telescope.scanners`).
"""

from __future__ import annotations

import heapq
import operator
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.net.packet import CapturedPacket
from repro.telescope.genlane import lane_records
from repro.util.batching import batched
from repro.util.rng import SeededRng
from repro.util.timeutil import APRIL_1_2021, DAY
from repro.internet.topology import InternetModel, TopologyConfig
from repro.telescope.adversarial import AdversarialSpec, build_adversarial_model
from repro.telescope.attacks import (
    AttackPlan,
    AttackPlanConfig,
    AttackPlanner,
    AttackTrafficModel,
)
from repro.telescope.noise import MisconfigurationModel, StrayUdpModel
from repro.telescope.scanners import BotScannerModel, ResearchScannerModel, TcpScannerModel
from repro.telescope.telescope import Telescope, merge_streams


@dataclass
class ScenarioConfig:
    """Everything needed to regenerate a measurement campaign."""

    seed: int = 20210401
    start: float = APRIL_1_2021
    duration: float = 2 * DAY
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    attacks: AttackPlanConfig = field(default_factory=AttackPlanConfig)
    #: research sweep sampling (1/64 of telescope addresses per sweep).
    research_sample: float = 1.0 / 64.0
    research_sweep_interval: float = 43200.0
    research_sweep_duration: float = 21600.0
    bot_sessions_per_day: float = 1000.0
    tcp_scan_sessions_per_day: float = 800.0
    misconfig_sessions_per_day: float = 770.0
    stray_packets_per_day: float = 400.0
    include_research: bool = True
    include_bots: bool = True
    include_tcp_scans: bool = True
    include_attacks: bool = True
    include_misconfig: bool = True
    include_stray: bool = True
    #: adversarial traffic sources beyond the paper's IBR classes
    #: (:mod:`repro.telescope.adversarial`); a tuple of
    #: :class:`AdversarialSpec` so the config stays picklable for
    #: worker-process scenario rebuilds.
    adversarial: tuple = ()

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class ScenarioTruth:
    """Ground truth for detector validation."""

    plan: AttackPlan
    research_sources: frozenset
    research_weight: float
    bot_sources: frozenset

    @property
    def quic_victims(self) -> frozenset:
        return frozenset(f.victim_ip for f in self.plan.quic_floods)


class Scenario:
    """A composed, reproducible telescope measurement campaign."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.rng = SeededRng(self.config.seed, "scenario")
        self.internet = InternetModel(self.rng.child("internet"), self.config.topology)
        self.telescope = Telescope(self.internet.telescope_net)

        self._research = [
            ResearchScannerModel(
                scanner=scanner,
                internet=self.internet,
                rng=self.rng.child(f"research:{i}"),
                sweep_interval=self.config.research_sweep_interval,
                sweep_duration=self.config.research_sweep_duration,
                sample=self.config.research_sample,
                phase=i * self.config.research_sweep_interval / 2,
            )
            for i, scanner in enumerate(self.internet.research_scanners)
        ]
        self._bots = BotScannerModel(
            internet=self.internet,
            rng=self.rng.child("bots"),
            sessions_per_day=self.config.bot_sessions_per_day,
        )
        self._tcp_scans = TcpScannerModel(
            internet=self.internet,
            rng=self.rng.child("tcp-scans"),
            sessions_per_day=self.config.tcp_scan_sessions_per_day,
        )
        self._misconfig = MisconfigurationModel(
            internet=self.internet,
            rng=self.rng.child("misconfig"),
            sessions_per_day=self.config.misconfig_sessions_per_day,
        )
        self._stray = StrayUdpModel(
            internet=self.internet,
            rng=self.rng.child("stray"),
            packets_per_day=self.config.stray_packets_per_day,
        )
        planner = AttackPlanner(
            self.internet, self.rng.child("planner"), self.config.attacks
        )
        self.plan: AttackPlan = (
            planner.plan(self.config.start, self.config.end)
            if self.config.include_attacks
            else AttackPlan()
        )
        self._attack_traffic = AttackTrafficModel(
            self.internet, self.rng.child("attack-traffic"), self.config.attacks
        )
        self.adversarial = [
            build_adversarial_model(
                spec, self.internet, self.rng.child(f"adversarial:{i}:{spec.kind}")
            )
            for i, spec in enumerate(self.config.adversarial)
        ]

    @property
    def truth(self) -> ScenarioTruth:
        return ScenarioTruth(
            plan=self.plan,
            research_sources=frozenset(
                s.address for s in self.internet.research_scanners
            ),
            research_weight=(
                self._research[0].weight if self._research else 1.0
            ),
            bot_sources=frozenset(b.address for b in self.internet.bot_hosts),
        )

    def retarget(self, prefix) -> None:
        """Narrow the capture tap to a sub-prefix of the telescope net.

        Telescope federation (:mod:`repro.federate`) runs K vantages
        over the *same* scenario seed, each capturing one tile of the
        /9: the generated Internet traffic is identical, only the tap
        filter differs, so the vantage captures partition the
        single-telescope capture exactly.  ``prefix`` is an
        :class:`~repro.net.addresses.IPv4Network` or CIDR string and
        must lie inside the scenario's telescope prefix.
        """
        from repro.net.addresses import IPv4Network

        if isinstance(prefix, str):
            prefix = IPv4Network.from_cidr(prefix)
        net = self.internet.telescope_net
        if prefix.network & net.netmask != net.network or prefix.prefix_len < net.prefix_len:
            raise ValueError(f"{prefix} is not inside telescope prefix {net}")
        self.telescope = Telescope(prefix)

    def packets(self) -> Iterator[CapturedPacket]:
        """The telescope's merged capture for the whole window."""
        start, end = self.config.start, self.config.end
        streams = []
        if self.config.include_research:
            streams.extend(model.packets(start, end) for model in self._research)
        if self.config.include_bots:
            streams.append(self._bots.packets(start, end))
        if self.config.include_tcp_scans:
            streams.append(self._tcp_scans.packets(start, end))
        if self.config.include_attacks:
            streams.append(self._attack_traffic.packets(self.plan))
        if self.config.include_misconfig:
            streams.append(self._misconfig.packets(start, end))
        if self.config.include_stray:
            streams.append(self._stray.packets(start, end))
        streams.extend(model.packets(start, end) for model in self.adversarial)
        return self.telescope.capture(merge_streams(*streams))

    def record_units(self) -> list:
        """Per-actor gen-record iterators, one per *generation unit*.

        The unit order is load-bearing: the serial rich path is a merge
        of per-source streams (with the attack stream itself a merge of
        per-flood streams), and ``heapq.merge`` breaks timestamp ties
        toward the earlier iterator.  Flattening that nested merge into
        one merge over these units — research sweeps, bots, TCP scans,
        each flood in plan order, misconfig, stray, then each
        adversarial source in spec order — preserves the
        lexicographic tie-break exactly, so ``records()`` (and the
        sharded ``telescope/parallel.py`` path, which merges by
        ``(timestamp, unit index)``) reproduces ``packets()`` order bit
        for bit.
        """
        start, end = self.config.start, self.config.end
        units = []
        if self.config.include_research:
            units.extend(model.records(start, end) for model in self._research)
        if self.config.include_bots:
            units.append(self._bots.records(start, end))
        if self.config.include_tcp_scans:
            units.append(self._tcp_scans.records(start, end))
        if self.config.include_attacks:
            units.extend(
                self._attack_traffic.flood_records(flood)
                for flood in self.plan.all_floods
            )
        if self.config.include_misconfig:
            units.append(self._misconfig.records(start, end))
        if self.config.include_stray:
            units.append(self._stray.records(start, end))
        units.extend(model.records(start, end) for model in self.adversarial)
        return units

    def records(self, workers: int = 1) -> Iterator[tuple]:
        """The capture as flat gen records — the generation fast lane.

        Same packets as :meth:`packets` (same seeds, same draws, same
        order), emitted as ``genlane`` record tuples instead of
        :class:`CapturedPacket` objects.  ``workers > 1`` shards the
        units across processes and k-way-merges the results back into
        the identical serial order (see :mod:`repro.telescope.parallel`);
        the telescope filter always runs here in the parent, so
        counters and metrics match the serial path.
        """
        if workers > 1:
            from repro.telescope.parallel import generate_records

            return self.telescope.capture_records(generate_records(self, workers))
        merged = heapq.merge(*self.record_units(), key=operator.itemgetter(0))
        return self.telescope.capture_records(merged)

    def lane_batches(
        self, batch_size: int = 512, workers: int = 1
    ) -> Iterator[list]:
        """Batched 11-field lane records for the analysis batch lane.

        The fused generate→analyze feed:
        ``QuicsandPipeline.process_record_batches`` consumes these
        directly, skipping wire serialization *and* dissection-side
        parsing entirely.
        """
        return batched(lane_records(self.records(workers)), batch_size)

    def packet_batches(self, batch_size: int = 512) -> Iterator[list]:
        """The capture as time-ordered batches.

        Shard-aware feed for the parallel pipeline: the parent process
        iterates batches and routes each packet to its source shard, so
        each source's substream stays time-ordered (see
        :mod:`repro.core.parallel`).
        """
        return batched(self.packets(), batch_size)

    def live_batches(
        self,
        batch_size: int = 512,
        speed: Optional[float] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> Iterator[list]:
        """Drive the scenario as a *live* feed for the online monitor.

        With ``speed`` set (event-seconds per wall-second), each batch
        is released only once its newest packet's event time has
        "happened" under the speed-up — the telescope tap replayed in
        accelerated real time.  ``None``/``0`` releases batches as fast
        as they generate (the common test/bench mode).
        """
        if not speed:
            yield from self.packet_batches(batch_size)
            return
        if speed < 0:
            raise ValueError("replay speed must be positive")
        wall_start = clock()
        event_start = self.config.start
        for batch in self.packet_batches(batch_size):
            due = (batch[-1].timestamp - event_start) / speed
            delay = due - (clock() - wall_start)
            if delay > 0:
                sleep(delay)
            yield batch
