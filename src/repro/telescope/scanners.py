"""Scanner traffic: research sweeps and malicious bot scans.

Two very different scanner populations reach a telescope on UDP/443:

- **Research scanners** (the paper's TUM and RWTH): periodic single-
  packet sweeps of the *entire* IPv4 space.  A /9 telescope receives
  2^23 packets per sweep; they are 98.5% of all QUIC IBR (Figure 2).
  Full-scale sweeps are too large to materialize packet-by-packet on a
  laptop, so sweeps are *sampled*: a deterministic ``sample`` fraction
  of the telescope's addresses is probed and ``weight`` (1/sample)
  records the inflation factor for count-level reporting.  Nothing in
  the downstream analysis other than raw research packet counts depends
  on this (research traffic is removed before session analysis, as in
  the paper) — see DESIGN.md.

- **Malicious scanners**: bots in eyeball networks probing UDP/443 in
  short sessions (~11 packets), diurnally modulated with the 06:00 /
  18:00 UTC peaks of Figure 3.

Both send syntactically valid QUIC Initials (real ClientHellos under
real Initial protection) so the pipeline's dissector accepts them the
way Wireshark accepted the paper's captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.quic import tls
from repro.quic.crypto import derive_initial_keys
from repro.quic.frames import CryptoFrame
from repro.quic.header import LongHeader, PacketType
from repro.quic.packet import MIN_INITIAL_DATAGRAM, PlainPacket, build_datagram
from repro.quic.versions import QUIC_V1, QuicVersion
from repro.telescope.backscatter import DatagramTemplateCache
from repro.telescope.diurnal import DiurnalModel
from repro.internet.topology import BotHost, InternetModel, ResearchScanner

#: Protected client Initials keyed by every byte-determining input.
#: Probe pools are rebuilt whenever a scenario is re-instantiated (the
#: equivalence suite, the golden test, repeated bench rounds); the same
#: seed yields the same (dcid, scid, hello) triples, so rebuilds replay
#: cached bytes instead of re-running packet protection.
_INITIAL_TEMPLATES = DatagramTemplateCache(max_entries=1024)

# Same pull-style publication as the responder cache (backscatter.py):
# one shared metric family, one label per cache.
from repro import obs as _obs  # noqa: E402  (after the cache it observes)

_M_CACHE_HITS = _obs.counter(
    "repro_template_cache_hits_total",
    "wire-template / keystream cache hits, per cache",
    labels=("cache",),
)
_M_CACHE_MISSES = _obs.counter(
    "repro_template_cache_misses_total",
    "wire-template / keystream cache misses (fresh builds), per cache",
    labels=("cache",),
)
_M_CACHE_SIZE = _obs.gauge(
    "repro_template_cache_size",
    "entries currently held, per cache",
    labels=("cache",),
)


def _collect_initial_template_metrics() -> None:
    _M_CACHE_HITS.set_total(_INITIAL_TEMPLATES.hits, cache="initial")
    _M_CACHE_MISSES.set_total(_INITIAL_TEMPLATES.misses, cache="initial")
    _M_CACHE_SIZE.set(len(_INITIAL_TEMPLATES), cache="initial")


_obs.REGISTRY.add_collector(_collect_initial_template_metrics)


def gquic_probe(rng: SeededRng, version_tag: bytes = b"Q043") -> bytes:
    """A legacy Google-QUIC probe (public header + plaintext CHLO).

    A slice of the scanning ecosystem still looks for pre-IETF servers;
    the dissector must classify these as QUIC despite the different
    wire format.
    """
    flags = bytes([0x09])  # version present + 8-byte connection ID
    cid = rng.randbytes(8)
    packet_number = bytes([1])
    chlo = b"CHLO" + rng.randbytes(2) + b"SNI\x00PAD\x00" + rng.randbytes(300)
    return flags + cid + version_tag + packet_number + chlo


class ProbePool:
    """A reusable pool of pre-protected client Initial datagrams.

    Building packet protection for millions of single-packet probes is
    wasteful; scanners cycle through a pool of distinct, fully valid
    probes instead.  Pool size bounds the number of distinct DCIDs a
    scanner uses, which is realistic — scan tools typically reuse a
    small set of handshake templates.
    """

    def __init__(
        self,
        rng: SeededRng,
        size: int = 32,
        version: QuicVersion = QUIC_V1,
        server_name: str = "scan.invalid",
    ) -> None:
        if size < 1:
            raise ValueError("probe pool needs at least one probe")
        self._probes = []
        for i in range(size):
            dcid = rng.randbytes(8)
            scid = rng.randbytes(8)
            hello = tls.ClientHello(
                random=rng.randbytes(32),
                server_name=server_name,
                transport_parameters=rng.randbytes(48),
            )
            hello_bytes = hello.serialize()

            def build(dcid=dcid, scid=scid, hello_bytes=hello_bytes):
                client_keys, _ = derive_initial_keys(version, dcid)
                packet = PlainPacket(
                    header=LongHeader(
                        packet_type=PacketType.INITIAL,
                        version=version.value,
                        dcid=dcid,
                        scid=scid,
                    ),
                    packet_number=0,
                    frames=[CryptoFrame(0, hello_bytes)],
                )
                return build_datagram(
                    [(packet, client_keys)], pad_to=MIN_INITIAL_DATAGRAM
                )

            self._probes.append(
                _INITIAL_TEMPLATES.get(
                    ("initial", version.value, dcid, scid, hello_bytes), build
                )
            )
        self._index = 0

    def __len__(self) -> int:
        return len(self._probes)

    def next_probe(self) -> bytes:
        probe = self._probes[self._index]
        self._index = (self._index + 1) % len(self._probes)
        return probe


@dataclass
class ResearchScannerModel:
    """Periodic full-IPv4 sweeps from one research source."""

    scanner: ResearchScanner
    internet: InternetModel
    rng: SeededRng
    sweep_interval: float = 43200.0  # two sweeps per day
    sweep_duration: float = 21600.0
    sample: float = 1.0 / 64.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        self.rng = self.rng.child(f"research:{self.scanner.name}")
        self._pool = ProbePool(self.rng.child("pool"))

    @property
    def weight(self) -> float:
        """Multiply sampled packet counts by this for full-scale numbers."""
        return 1.0 / self.sample

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        """Probe packets within [start, end), in time order."""
        telescope = self.internet.telescope_net
        probes_per_sweep = max(1, int(telescope.size * self.sample))
        stride = max(1, telescope.size // probes_per_sweep)
        sweep_start = start + self.phase
        while sweep_start < end:
            spacing = self.sweep_duration / probes_per_sweep
            offset = self.rng.randint(0, stride - 1)
            for i in range(probes_per_sweep):
                timestamp = sweep_start + i * spacing
                if timestamp >= end:
                    break
                if timestamp < start:
                    continue
                dst = telescope.address_at((offset + i * stride) % telescope.size)
                yield CapturedPacket(
                    timestamp=timestamp,
                    ip=IPv4Header(
                        src=self.scanner.address, dst=dst, proto=IPProto.UDP
                    ),
                    transport=UdpHeader(
                        src_port=40000 + (i % 20000), dst_port=443
                    ),
                    payload=self._pool.next_probe(),
                )
            sweep_start += self.sweep_interval

    def records(self, start: float, end: float) -> Iterator[tuple]:
        """``packets()`` as flat gen records (same draws, same order).

        The generation fast lane's twin of :meth:`packets`: identical
        RNG consumption, identical timestamps/addresses/payloads, but
        flat tuples (see ``telescope/genlane.py``) instead of header
        dataclasses.  ``tests/test_genlane_equivalence.py`` pins the
        equivalence for the whole scenario.
        """
        telescope = self.internet.telescope_net
        probes_per_sweep = max(1, int(telescope.size * self.sample))
        stride = max(1, telescope.size // probes_per_sweep)
        sweep_start = start + self.phase
        src = self.scanner.address
        base = telescope.network
        size = telescope.size
        next_probe = self._pool.next_probe
        randint = self.rng.randint
        while sweep_start < end:
            spacing = self.sweep_duration / probes_per_sweep
            offset = randint(0, stride - 1)
            for i in range(probes_per_sweep):
                timestamp = sweep_start + i * spacing
                if timestamp >= end:
                    break
                if timestamp < start:
                    continue
                payload = next_probe()
                plen = len(payload)
                yield (
                    timestamp,
                    src,
                    base + (offset + i * stride) % size,
                    28 + plen,
                    17,
                    1,
                    40000 + (i % 20000),
                    443,
                    0,
                    plen,
                    payload,
                )
            sweep_start += self.sweep_interval


@dataclass
class BotScannerModel:
    """Diurnally modulated short scan sessions from eyeball bots."""

    internet: InternetModel
    rng: SeededRng
    sessions_per_day: float = 1300.0
    mean_packets_per_session: float = 11.0
    mean_inter_packet_gap: float = 2.0
    #: probability of a sub-timeout pause between probes (slow scans).
    pause_probability: float = 0.06
    pause_max: float = 270.0
    #: fraction of sessions probing for legacy gQUIC servers.
    gquic_fraction: float = 0.05
    diurnal: DiurnalModel = None

    def __post_init__(self) -> None:
        self.rng = self.rng.child("bot-scanners")
        if self.diurnal is None:
            self.diurnal = DiurnalModel()
        self._pool = ProbePool(self.rng.child("pool"), size=16)

    def session_starts(self, start: float, end: float) -> list:
        """(timestamp, bot) pairs via thinned Poisson with diurnal shape."""
        peak = self.diurnal.peak_rate_factor()
        rate = self.sessions_per_day / 86400.0 * peak
        bots = self.internet.bot_hosts
        if not bots:
            return []
        starts = []
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            if self.rng.random() < self.diurnal.factor(t) / peak:
                starts.append((t, self.rng.choice(bots)))
        return starts

    def session_packets(self, session_start: float, bot: BotHost) -> list:
        """One scan session: a burst of Initials to random darknet addresses."""
        count = max(1, int(self.rng.expovariate(1.0 / self.mean_packets_per_session)) + 1)
        src_port = self.rng.randint(1024, 65535)
        legacy = self.rng.random() < self.gquic_fraction
        legacy_payload = gquic_probe(self.rng) if legacy else None
        packets = []
        t = session_start
        for _ in range(count):
            dst = self.internet.random_telescope_address(self.rng)
            packets.append(
                CapturedPacket(
                    timestamp=t,
                    ip=IPv4Header(src=bot.address, dst=dst, proto=IPProto.UDP),
                    transport=UdpHeader(src_port=src_port, dst_port=443),
                    payload=legacy_payload if legacy else self._pool.next_probe(),
                )
            )
            t += self.rng.expovariate(1.0 / self.mean_inter_packet_gap)
            if self.rng.random() < self.pause_probability:
                t += self.rng.uniform(45.0, self.pause_max)
        return packets

    def session_records(self, session_start: float, bot: BotHost) -> list:
        """:meth:`session_packets` as flat gen records (same draws)."""
        rng = self.rng
        count = max(1, int(rng.expovariate(1.0 / self.mean_packets_per_session)) + 1)
        src_port = rng.randint(1024, 65535)
        legacy = rng.random() < self.gquic_fraction
        legacy_payload = gquic_probe(rng) if legacy else None
        records = []
        src = bot.address
        t = session_start
        for _ in range(count):
            dst = self.internet.random_telescope_address(rng)
            payload = legacy_payload if legacy else self._pool.next_probe()
            plen = len(payload)
            records.append(
                (t, src, dst, 28 + plen, 17, 1, src_port, 443, 0, plen, payload)
            )
            t += rng.expovariate(1.0 / self.mean_inter_packet_gap)
            if rng.random() < self.pause_probability:
                t += rng.uniform(45.0, self.pause_max)
        return records

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        """All bot scan packets in [start, end), time-sorted."""
        sessions = []
        for session_start, bot in self.session_starts(start, end):
            sessions.append(self.session_packets(session_start, bot))
        merged = sorted(
            (p for session in sessions for p in session), key=lambda p: p.timestamp
        )
        for packet in merged:
            if start <= packet.timestamp < end:
                yield packet

    def records(self, start: float, end: float) -> Iterator[tuple]:
        """``packets()`` as flat gen records (same draws, same order)."""
        sessions = []
        for session_start, bot in self.session_starts(start, end):
            sessions.append(self.session_records(session_start, bot))
        merged = sorted(
            (r for session in sessions for r in session), key=lambda r: r[0]
        )
        for record in merged:
            if start <= record[0] < end:
                yield record


@dataclass
class TcpScannerModel:
    """Mirai-style TCP scanning from the same eyeball bot population.

    The telescope's *common* (TCP) request traffic: bots probing
    TCP/23, TCP/2323 (Mirai's telnet signature) and TCP/443 with bare
    SYNs.  These exercise the classifier's TCP_REQUEST path and give
    the GreyNoise correlation a realistic multi-protocol context.
    """

    internet: InternetModel
    rng: SeededRng
    sessions_per_day: float = 800.0
    mean_packets_per_session: float = 8.0
    target_ports: tuple = (23, 2323, 443, 80)
    diurnal: DiurnalModel = None

    def __post_init__(self) -> None:
        self.rng = self.rng.child("tcp-scanners")
        if self.diurnal is None:
            self.diurnal = DiurnalModel()

    def packets(self, start: float, end: float) -> Iterator[CapturedPacket]:
        from repro.net.tcp import TcpFlags, TcpHeader

        peak = self.diurnal.peak_rate_factor()
        rate = self.sessions_per_day / 86400.0 * peak
        bots = self.internet.bot_hosts
        if not bots:
            return
        sessions = []
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            if self.rng.random() >= self.diurnal.factor(t) / peak:
                continue
            bot = self.rng.choice(bots)
            port = self.rng.choice(self.target_ports)
            count = max(1, int(self.rng.expovariate(1.0 / self.mean_packets_per_session)) + 1)
            src_port = self.rng.randint(1024, 65535)
            session = []
            ts = t
            for _ in range(count):
                dst = self.internet.random_telescope_address(self.rng)
                session.append(
                    CapturedPacket(
                        timestamp=ts,
                        ip=IPv4Header(src=bot.address, dst=dst, proto=IPProto.TCP),
                        transport=TcpHeader(
                            src_port=src_port,
                            dst_port=port,
                            seq=self.rng.randint(0, 2**32 - 1),
                            flags=TcpFlags.SYN,
                        ),
                    )
                )
                ts += self.rng.expovariate(0.8)
            sessions.append(session)
        merged = sorted((p for s in sessions for p in s), key=lambda p: p.timestamp)
        for packet in merged:
            if start <= packet.timestamp < end:
                yield packet

    def records(self, start: float, end: float) -> Iterator[tuple]:
        """``packets()`` as flat gen records (same draws, same order).

        TCP gen records are 13-tuples: the lane's 11 fields (f3 carries
        the flags) plus the wire-only seq/ack numbers.
        """
        from repro.net.tcp import TcpFlags

        syn = int(TcpFlags.SYN)
        peak = self.diurnal.peak_rate_factor()
        rate = self.sessions_per_day / 86400.0 * peak
        bots = self.internet.bot_hosts
        if not bots:
            return
        sessions = []
        t = start
        while True:
            t += self.rng.expovariate(rate)
            if t >= end:
                break
            if self.rng.random() >= self.diurnal.factor(t) / peak:
                continue
            bot = self.rng.choice(bots)
            port = self.rng.choice(self.target_ports)
            count = max(1, int(self.rng.expovariate(1.0 / self.mean_packets_per_session)) + 1)
            src_port = self.rng.randint(1024, 65535)
            session = []
            ts = t
            src = bot.address
            for _ in range(count):
                dst = self.internet.random_telescope_address(self.rng)
                seq = self.rng.randint(0, 2**32 - 1)
                session.append(
                    (ts, src, dst, 40, 6, 2, src_port, port, syn, 0, b"", seq, 0)
                )
                ts += self.rng.expovariate(0.8)
            sessions.append(session)
        merged = sorted((r for s in sessions for r in s), key=lambda r: r[0])
        for record in merged:
            if start <= record[0] < end:
                yield record
