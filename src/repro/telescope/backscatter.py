"""Victim response models: what floods look like from a telescope.

A randomly spoofed flood against a victim makes the victim answer
addresses it never talked to; the slice of those answers landing in the
telescope prefix is *backscatter*.  This module turns "victim V is
flooded at rate R" into the concrete packets:

- :class:`QuicVictimResponder` emits the QUIC response train per spoofed
  Initial — Initial(ServerHello)+Handshake coalesced, then a Handshake
  datagram, optionally keep-alive PINGs and timeout retransmissions —
  with zero-length DCIDs and fresh or cached SCIDs depending on the
  provider's connection-ID policy (the Figure 9 Google/Facebook
  difference).
- :class:`TcpVictimResponder` emits SYN-ACKs (and RSTs after the
  victim's accept queue gives up) for spoofed SYN floods.
- :class:`IcmpVictimResponder` emits echo replies for spoofed echo
  floods.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.util.caching import template_cache_enabled
from repro.util.rng import SeededRng
from repro.quic import crypto, tls
from repro.quic.crypto import derive_handshake_secret, derive_initial_keys
from repro.quic.frames import AckFrame, CryptoFrame, PingFrame, serialize_frames
from repro.quic.header import LongHeader, PacketType
from repro.quic.packet import PlainPacket, build_datagram, protect_packet
from repro.quic.versions import KNOWN_VERSIONS, QUIC_V1, QuicVersion

_VERSIONS_BY_NAME = {v.name: v for v in KNOWN_VERSIONS}


class DatagramTemplateCache:
    """Memoizes protected wire bytes keyed by template identity.

    Flood responders and scanner probe builders emit the same few
    datagrams thousands of times: the plaintext, keys, and packet
    numbers repeat, only the spoofed destination varies.  Serializing
    and encrypting each distinct template once and replaying the bytes
    turns per-packet crypto into per-template crypto.

    A *key* must capture every input that determines the bytes (keys
    follow from the attacker DCID; header fields from version, SCID and
    packet number; payload from the frame shape), which makes caching
    transparent: hit or miss, the caller gets identical bytes, so a
    seeded scenario is byte-identical with the cache on or off.  The
    ``REPRO_DISABLE_TEMPLATE_CACHE=1`` escape hatch (checked per lookup)
    turns every lookup into a rebuild for the equivalence suite.
    """

    __slots__ = ("max_entries", "hits", "misses", "_cache")

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, key, build) -> bytes:
        """Return the bytes for ``key``, calling ``build()`` on a miss."""
        if not template_cache_enabled():
            self.misses += 1
            return build()
        cached = self._cache.get(key)
        if cached is None:
            self.misses += 1
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            cached = self._cache[key] = build()
        else:
            self.hits += 1
        return cached


#: Handshake/ping datagrams shared across responders (and scenario
#: re-instantiations: repeated bench rounds, the equivalence suite).
#: Keys are namespaced by version and a digest of the responder's TLS
#: flight, so two victims only share entries when their protected bytes
#: would be identical anyway.
_RESPONSE_TEMPLATES = DatagramTemplateCache(max_entries=8192)

# Publish this cache's tallies through the shared template-cache metric
# family (see docs/METRICS.md); pulled by a collector at export time so
# the responder hot path stays metric-free.
from repro import obs as _obs  # noqa: E402  (after the cache it observes)

_M_CACHE_HITS = _obs.counter(
    "repro_template_cache_hits_total",
    "wire-template / keystream cache hits, per cache",
    labels=("cache",),
)
_M_CACHE_MISSES = _obs.counter(
    "repro_template_cache_misses_total",
    "wire-template / keystream cache misses (fresh builds), per cache",
    labels=("cache",),
)
_M_CACHE_SIZE = _obs.gauge(
    "repro_template_cache_size",
    "entries currently held, per cache",
    labels=("cache",),
)


def _collect_response_template_metrics() -> None:
    _M_CACHE_HITS.set_total(_RESPONSE_TEMPLATES.hits, cache="response")
    _M_CACHE_MISSES.set_total(_RESPONSE_TEMPLATES.misses, cache="response")
    _M_CACHE_SIZE.set(len(_RESPONSE_TEMPLATES), cache="response")
    _M_CACHE_HITS.set_total(_INITIAL_SEALER_STATS["hits"], cache="initial-sealer")
    _M_CACHE_MISSES.set_total(
        _INITIAL_SEALER_STATS["misses"], cache="initial-sealer"
    )
    _M_CACHE_SIZE.set(len(_INITIAL_SEALERS), cache="initial-sealer")


_obs.REGISTRY.add_collector(_collect_response_template_metrics)


#: Compiled per-``(version, attacker DCID, SCID)`` sealers for the one
#: packet the template cache cannot hold: the server Initial, whose
#: plaintext embeds a fresh 32-byte ServerHello random per response.
#: Everything around that window — frame serialization, keys, keystream,
#: header bytes — is fixed per key, so a sealer precomputes those parts
#: and each response costs one XOR, one HMAC tag, and one HP mask.
#: ``False`` marks a shape the template could not reproduce (the build
#: self-verifies against :func:`protect_packet` before first use).
_INITIAL_SEALERS: dict = {}
_INITIAL_SEALER_MAX = 8192
_INITIAL_SEALER_STATS = {"hits": 0, "misses": 0}


def _build_initial_sealer(version, attacker_dcid, scid, probe_random):
    """Compile the fast Initial sealer for one template identity.

    Locates the 32-byte ServerHello-random window inside the serialized
    payload with two sentinel fills (0x00 / 0xFF differ at every window
    byte, so the common prefix/suffix delimit it exactly), precomputes
    header bytes, keystream, and AAD, then replays :func:`protect_packet`
    arithmetic per call.  Returns ``None`` — caller falls back to the
    canonical path — if the payload shape defies the window model or the
    compiled sealer fails its self-check against ``protect_packet``.
    """
    _ckeys, server_init = derive_initial_keys(version, attacker_dcid)

    def payload_for(r32: bytes) -> bytes:
        return serialize_frames(
            [AckFrame(0), CryptoFrame(0, tls.ServerHello(random=r32).serialize())]
        )

    low, high = payload_for(b"\x00" * 32), payload_for(b"\xff" * 32)
    size = len(low)
    if len(high) != size or size < 4:
        return None
    start = 0
    while start < size and low[start] == high[start]:
        start += 1
    stop = size
    while stop > start and low[stop - 1] == high[stop - 1]:
        stop -= 1
    if stop - start != 32 or low[start:stop] != b"\x00" * 32:
        return None
    prefix, suffix = low[:start], low[stop:]
    pn_bytes = crypto.encode_packet_number(0, -1)
    pn_len = len(pn_bytes)
    header = LongHeader(
        packet_type=PacketType.INITIAL, version=version.value, dcid=b"", scid=scid
    )
    header_bytes = header.pack_prefix(pn_len, pn_len + size + crypto.AEAD_TAG_LEN)
    nonce = crypto._nonce(server_init.iv, 0)
    # the sealed tag covers nonce + AAD (header ‖ pn) + ciphertext
    auth_head = nonce + header_bytes + pn_bytes
    stream_int = int.from_bytes(
        crypto._keystream(server_init.key, nonce, size), "big"
    )
    key, hp = server_init.key, server_init.hp
    head_first, head_rest = header_bytes[0], header_bytes[1:]
    sample_at = 4 - pn_len
    sample_end = sample_at + crypto.HP_SAMPLE_LEN
    from_bytes = int.from_bytes

    def seal(r32: bytes) -> bytes:
        ciphertext = (
            from_bytes(prefix + r32 + suffix, "big") ^ stream_int
        ).to_bytes(size, "big")
        sealed = ciphertext + crypto._hmac_tag(key, auth_head + ciphertext)
        mask = crypto.header_protection_mask(hp, sealed[sample_at:sample_end])
        protected_pn = bytes(
            b ^ m for b, m in zip(pn_bytes, mask[1 : 1 + pn_len])
        )
        return (
            bytes([head_first ^ (mask[0] & 0x0F)])
            + head_rest
            + protected_pn
            + sealed
        )

    expected = protect_packet(
        PlainPacket(
            header=header,
            packet_number=0,
            frames=[
                AckFrame(0),
                CryptoFrame(0, tls.ServerHello(random=probe_random).serialize()),
            ],
        ),
        server_init,
    )
    if seal(probe_random) != expected:
        return None
    return seal

# Hoisted flag combinations: ``IntFlag.__or__`` costs an enum lookup per
# call, and the TCP responder builds one of these per backscatter packet.
_SYN_ACK = TcpFlags.SYN | TcpFlags.ACK
_RST_ACK = TcpFlags.RST | TcpFlags.ACK


def version_named(name: str) -> QuicVersion:
    try:
        return _VERSIONS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown QUIC version name {name!r}") from None


@dataclass
class ResponderPolicy:
    """Provider-specific response behaviour."""

    version: QuicVersion = QUIC_V1
    keepalive_pings: int = 0
    #: "request" mints a new SCID per Initial (Google-like);
    #: "source" caches the SCID per spoofed client address
    #: (mvfst-like connection reuse).
    scid_policy: str = "request"
    #: probability that the unanswered flight is retransmitted once.
    retransmit_probability: float = 0.0
    #: probability that a request carries a version the victim dropped,
    #: eliciting a Version Negotiation packet instead of a flight.
    vn_probability: float = 0.05
    cert_chain_len: int = tls.DEFAULT_CERT_CHAIN_LEN
    #: attackers replay a bounded set of handshake templates, so the
    #: DCIDs the victim keys its Initial responses on repeat.
    attacker_dcid_pool: int = 24


class QuicVictimResponder:
    """Builds the backscatter train one victim emits per spoofed Initial."""

    def __init__(
        self,
        victim_ip: int,
        rng: SeededRng,
        policy: ResponderPolicy,
        templates: Optional[DatagramTemplateCache] = None,
    ) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"responder:{victim_ip}")
        self.policy = policy
        # The TLS flight is per-server (same certificate chain for every
        # connection) — cache it once.
        self._flight = tls.build_server_flight(
            self.rng.child("flight"), policy.cert_chain_len
        )
        self._hs_stream = self._flight.handshake_payload
        self._scid_cache: dict[int, bytes] = {}
        self._dcid_pool = [
            self.rng.randbytes(8) for _ in range(max(1, policy.attacker_dcid_pool))
        ]
        # Handshake datagrams and keep-alive pings are pure functions of
        # (version, TLS flight, attacker DCID, SCID): the packet numbers
        # are fixed and the keys follow from version + DCID.  The cache
        # defaults to the module-wide one — keyed by that full tuple via
        # ``_template_ns`` — so templates survive across floods and
        # scenario rebuilds instead of dying with each responder.
        self.templates = _RESPONSE_TEMPLATES if templates is None else templates
        self._template_ns = (
            policy.version.value,
            hashlib.sha256(self._hs_stream).digest(),
        )

    def _scid_for(self, spoofed_ip: int) -> bytes:
        if self.policy.scid_policy == "source":
            cached = self._scid_cache.get(spoofed_ip)
            if cached is None:
                cached = self.rng.randbytes(8)
                self._scid_cache[spoofed_ip] = cached
            return cached
        return self.rng.randbytes(8)

    @property
    def unique_scids(self) -> int:
        """SCIDs handed out so far under a 'source' policy."""
        return len(self._scid_cache)

    def respond(
        self, timestamp: float, spoofed_ip: int, spoofed_port: int
    ) -> list:
        """Packets sent to ``spoofed_ip`` in response to one Initial.

        Returns :class:`~repro.net.packet.CapturedPacket` records in
        time order.
        """
        return [
            self._packet(timestamp + delay, spoofed_ip, spoofed_port, payload)
            for delay, payload in self._response_schedule(spoofed_ip)
        ]

    def respond_records(
        self, timestamp: float, spoofed_ip: int, spoofed_port: int
    ) -> list:
        """:meth:`respond` as flat gen records (same draws, same bytes).

        The generation fast lane's twin: one ``(delay, payload)``
        schedule feeds both methods, so the two differ only in the
        container built around each datagram.
        """
        victim = self.victim_ip
        return [
            (
                timestamp + delay,
                victim,
                spoofed_ip,
                28 + len(payload),
                17,
                1,
                443,
                spoofed_port,
                0,
                len(payload),
                payload,
            )
            for delay, payload in self._response_schedule(spoofed_ip)
        ]

    def _response_schedule(self, spoofed_ip: int) -> list:
        """The ``(delay, datagram_bytes)`` train for one spoofed Initial."""
        version = self.policy.version
        if self.rng.random() < self.policy.vn_probability:
            return [(0.0, self._vn_payload(spoofed_ip))]
        scid = self._scid_for(spoofed_ip)
        # The attacker's Initial carried a DCID from its template pool;
        # the victim keys its Initial-level response on it.
        attacker_dcid = self.rng.choice(self._dcid_pool)
        server_hs = derive_handshake_secret(version, attacker_dcid, "server hs")

        sh_random = self.rng.randbytes(32)
        first_chunk = min(len(self._hs_stream), 900)
        # The Initial carries the per-response ServerHello random, so it
        # is protected fresh (via the compiled sealer when the template
        # caches are on); its Handshake companions are templates.
        # Coalescing is plain concatenation (no padding requested), so
        # the cached suffix is byte-identical to an inline build.
        ns = self._template_ns
        datagram_1 = self._initial_datagram(
            version, attacker_dcid, scid, sh_random
        ) + self.templates.get(
            ("hs1", ns, attacker_dcid, scid),
            lambda: protect_packet(
                self._handshake_packet(0, CryptoFrame(0, self._hs_stream[:first_chunk]), scid),
                server_hs,
            ),
        )
        datagram_2 = self.templates.get(
            ("hs2", ns, attacker_dcid, scid),
            lambda: build_datagram(
                [
                    (
                        self._handshake_packet(
                            1,
                            CryptoFrame(first_chunk, self._hs_stream[first_chunk:]),
                            scid,
                        ),
                        server_hs,
                    )
                ]
            ),
        )

        schedule = [(0.0, datagram_1), (0.002, datagram_2)]
        for i in range(self.policy.keepalive_pings):
            ping_bytes = self.templates.get(
                ("ping", ns, attacker_dcid, scid, i),
                lambda i=i: build_datagram(
                    [(self._handshake_packet(2 + i, PingFrame(), scid), server_hs)]
                ),
            )
            schedule.append((0.05 * (i + 1), ping_bytes))
        if self.rng.random() < self.policy.retransmit_probability:
            # PTO fires: the whole first datagram is retransmitted.
            schedule.append((1.0, datagram_1))

        return schedule

    def _initial_datagram(
        self, version, attacker_dcid: bytes, scid: bytes, sh_random: bytes
    ) -> bytes:
        """The protected server Initial for one response.

        Served by a compiled sealer from :data:`_INITIAL_SEALERS` when
        the template caches are enabled; the canonical
        :func:`protect_packet` path otherwise (and for any shape the
        sealer build could not verify) — both produce identical bytes.
        """
        if template_cache_enabled():
            key = (version.value, attacker_dcid, scid)
            sealer = _INITIAL_SEALERS.get(key)
            if sealer is None:
                _INITIAL_SEALER_STATS["misses"] += 1
                if len(_INITIAL_SEALERS) >= _INITIAL_SEALER_MAX:
                    _INITIAL_SEALERS.clear()
                built = _build_initial_sealer(
                    version, attacker_dcid, scid, sh_random
                )
                sealer = _INITIAL_SEALERS[key] = (
                    built if built is not None else False
                )
            else:
                _INITIAL_SEALER_STATS["hits"] += 1
            if sealer:
                return sealer(sh_random)
        _ckeys, server_init = derive_initial_keys(version, attacker_dcid)
        initial_packet = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.INITIAL,
                version=version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=0,
            frames=[
                AckFrame(0),
                CryptoFrame(0, tls.ServerHello(random=sh_random).serialize()),
            ],
        )
        return protect_packet(initial_packet, server_init)

    def _handshake_packet(self, packet_number: int, frame, scid: bytes) -> PlainPacket:
        return PlainPacket(
            header=LongHeader(
                packet_type=PacketType.HANDSHAKE,
                version=self.policy.version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=packet_number,
            frames=[frame],
        )

    def _vn_payload(self, spoofed_ip: int) -> bytes:
        """The victim rejects a stale-version Initial with a VN packet."""
        from repro.quic.header import VersionNegotiationPacket

        packet = VersionNegotiationPacket(
            dcid=self.rng.randbytes(8),
            scid=self._scid_for(spoofed_ip),
            supported_versions=(self.policy.version.value, QUIC_V1.value),
        )
        return packet.serialize()

    def _packet(
        self, timestamp: float, dst_ip: int, dst_port: int, payload: bytes
    ) -> CapturedPacket:
        return CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=dst_ip, proto=IPProto.UDP),
            transport=UdpHeader(src_port=443, dst_port=dst_port),
            payload=payload,
        )


class TcpVictimResponder:
    """SYN-ACK / RST backscatter from a spoofed TCP SYN flood."""

    def __init__(
        self, victim_ip: int, rng: SeededRng, service_port: int = 443, rst_fraction: float = 0.15
    ) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"tcp-responder:{victim_ip}")
        self.service_port = service_port
        self.rst_fraction = rst_fraction

    def _respond_fields(self) -> tuple:
        flags = (
            _RST_ACK if self.rng.random() < self.rst_fraction else _SYN_ACK
        )
        # randint(0, 2**32 - 1) == _randbelow(2**32), which draws
        # 33-bit words and rejects the top half — inlined here because
        # both the rich and record response paths pay it per packet.
        getrandbits = self.rng.getrandbits
        seq = getrandbits(33)
        while seq >= 4294967296:
            seq = getrandbits(33)
        ack = getrandbits(33)
        while ack >= 4294967296:
            ack = getrandbits(33)
        return flags, seq, ack

    def respond(self, timestamp: float, spoofed_ip: int, spoofed_port: int) -> list:
        flags, seq, ack = self._respond_fields()
        packet = CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=spoofed_ip, proto=IPProto.TCP),
            transport=TcpHeader(
                src_port=self.service_port,
                dst_port=spoofed_port,
                seq=seq,
                ack=ack,
                flags=flags,
            ),
        )
        return [packet]

    def respond_records(
        self, timestamp: float, spoofed_ip: int, spoofed_port: int
    ) -> list:
        """:meth:`respond` as a flat 13-field gen record (same draws)."""
        flags, seq, ack = self._respond_fields()
        return [
            (
                timestamp,
                self.victim_ip,
                spoofed_ip,
                40,
                6,
                2,
                self.service_port,
                spoofed_port,
                int(flags),
                0,
                b"",
                seq,
                ack,
            )
        ]


#: every echo reply carries the same 32 zero bytes — one shared object
#: keeps record tuples and template-cache keys cheap.
_ICMP_PAYLOAD = b"\x00" * 32


class IcmpVictimResponder:
    """Echo-reply backscatter from a spoofed ICMP echo flood."""

    def __init__(self, victim_ip: int, rng: SeededRng) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"icmp-responder:{victim_ip}")
        self._sequence = 0

    def respond(self, timestamp: float, spoofed_ip: int, _spoofed_port: int) -> list:
        self._sequence = (self._sequence + 1) & 0xFFFF
        packet = CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=spoofed_ip, proto=IPProto.ICMP),
            transport=IcmpHeader(
                IcmpType.ECHO_REPLY,
                identifier=self.rng.randint(0, 0xFFFF),
                sequence=self._sequence,
            ),
            payload=_ICMP_PAYLOAD,
        )
        return [packet]

    def respond_records(
        self, timestamp: float, spoofed_ip: int, _spoofed_port: int
    ) -> list:
        """:meth:`respond` as a flat 13-field gen record (same draws).

        f1/f2 carry the ICMP type/code (echo reply: 0/0), x1/x2 the
        identifier and sequence the wire needs.
        """
        self._sequence = (self._sequence + 1) & 0xFFFF
        identifier = self.rng.randint(0, 0xFFFF)
        return [
            (
                timestamp,
                self.victim_ip,
                spoofed_ip,
                60,
                1,
                3,
                0,
                0,
                0,
                32,
                _ICMP_PAYLOAD,
                identifier,
                self._sequence,
            )
        ]
