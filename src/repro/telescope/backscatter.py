"""Victim response models: what floods look like from a telescope.

A randomly spoofed flood against a victim makes the victim answer
addresses it never talked to; the slice of those answers landing in the
telescope prefix is *backscatter*.  This module turns "victim V is
flooded at rate R" into the concrete packets:

- :class:`QuicVictimResponder` emits the QUIC response train per spoofed
  Initial — Initial(ServerHello)+Handshake coalesced, then a Handshake
  datagram, optionally keep-alive PINGs and timeout retransmissions —
  with zero-length DCIDs and fresh or cached SCIDs depending on the
  provider's connection-ID policy (the Figure 9 Google/Facebook
  difference).
- :class:`TcpVictimResponder` emits SYN-ACKs (and RSTs after the
  victim's accept queue gives up) for spoofed SYN floods.
- :class:`IcmpVictimResponder` emits echo replies for spoofed echo
  floods.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.util.caching import template_cache_enabled
from repro.util.rng import SeededRng
from repro.quic import tls
from repro.quic.crypto import derive_handshake_secret, derive_initial_keys
from repro.quic.frames import AckFrame, CryptoFrame, PingFrame
from repro.quic.header import LongHeader, PacketType
from repro.quic.packet import PlainPacket, build_datagram, protect_packet
from repro.quic.versions import KNOWN_VERSIONS, QUIC_V1, QuicVersion

_VERSIONS_BY_NAME = {v.name: v for v in KNOWN_VERSIONS}


class DatagramTemplateCache:
    """Memoizes protected wire bytes keyed by template identity.

    Flood responders and scanner probe builders emit the same few
    datagrams thousands of times: the plaintext, keys, and packet
    numbers repeat, only the spoofed destination varies.  Serializing
    and encrypting each distinct template once and replaying the bytes
    turns per-packet crypto into per-template crypto.

    A *key* must capture every input that determines the bytes (keys
    follow from the attacker DCID; header fields from version, SCID and
    packet number; payload from the frame shape), which makes caching
    transparent: hit or miss, the caller gets identical bytes, so a
    seeded scenario is byte-identical with the cache on or off.  The
    ``REPRO_DISABLE_TEMPLATE_CACHE=1`` escape hatch (checked per lookup)
    turns every lookup into a rebuild for the equivalence suite.
    """

    __slots__ = ("max_entries", "hits", "misses", "_cache")

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, key, build) -> bytes:
        """Return the bytes for ``key``, calling ``build()`` on a miss."""
        if not template_cache_enabled():
            self.misses += 1
            return build()
        cached = self._cache.get(key)
        if cached is None:
            self.misses += 1
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            cached = self._cache[key] = build()
        else:
            self.hits += 1
        return cached


#: Handshake/ping datagrams shared across responders (and scenario
#: re-instantiations: repeated bench rounds, the equivalence suite).
#: Keys are namespaced by version and a digest of the responder's TLS
#: flight, so two victims only share entries when their protected bytes
#: would be identical anyway.
_RESPONSE_TEMPLATES = DatagramTemplateCache(max_entries=8192)

# Publish this cache's tallies through the shared template-cache metric
# family (see docs/METRICS.md); pulled by a collector at export time so
# the responder hot path stays metric-free.
from repro import obs as _obs  # noqa: E402  (after the cache it observes)

_M_CACHE_HITS = _obs.counter(
    "repro_template_cache_hits_total",
    "wire-template / keystream cache hits, per cache",
    labels=("cache",),
)
_M_CACHE_MISSES = _obs.counter(
    "repro_template_cache_misses_total",
    "wire-template / keystream cache misses (fresh builds), per cache",
    labels=("cache",),
)
_M_CACHE_SIZE = _obs.gauge(
    "repro_template_cache_size",
    "entries currently held, per cache",
    labels=("cache",),
)


def _collect_response_template_metrics() -> None:
    _M_CACHE_HITS.set_total(_RESPONSE_TEMPLATES.hits, cache="response")
    _M_CACHE_MISSES.set_total(_RESPONSE_TEMPLATES.misses, cache="response")
    _M_CACHE_SIZE.set(len(_RESPONSE_TEMPLATES), cache="response")


_obs.REGISTRY.add_collector(_collect_response_template_metrics)

# Hoisted flag combinations: ``IntFlag.__or__`` costs an enum lookup per
# call, and the TCP responder builds one of these per backscatter packet.
_SYN_ACK = TcpFlags.SYN | TcpFlags.ACK
_RST_ACK = TcpFlags.RST | TcpFlags.ACK


def version_named(name: str) -> QuicVersion:
    try:
        return _VERSIONS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown QUIC version name {name!r}") from None


@dataclass
class ResponderPolicy:
    """Provider-specific response behaviour."""

    version: QuicVersion = QUIC_V1
    keepalive_pings: int = 0
    #: "request" mints a new SCID per Initial (Google-like);
    #: "source" caches the SCID per spoofed client address
    #: (mvfst-like connection reuse).
    scid_policy: str = "request"
    #: probability that the unanswered flight is retransmitted once.
    retransmit_probability: float = 0.0
    #: probability that a request carries a version the victim dropped,
    #: eliciting a Version Negotiation packet instead of a flight.
    vn_probability: float = 0.05
    cert_chain_len: int = tls.DEFAULT_CERT_CHAIN_LEN
    #: attackers replay a bounded set of handshake templates, so the
    #: DCIDs the victim keys its Initial responses on repeat.
    attacker_dcid_pool: int = 24


class QuicVictimResponder:
    """Builds the backscatter train one victim emits per spoofed Initial."""

    def __init__(
        self,
        victim_ip: int,
        rng: SeededRng,
        policy: ResponderPolicy,
        templates: Optional[DatagramTemplateCache] = None,
    ) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"responder:{victim_ip}")
        self.policy = policy
        # The TLS flight is per-server (same certificate chain for every
        # connection) — cache it once.
        self._flight = tls.build_server_flight(
            self.rng.child("flight"), policy.cert_chain_len
        )
        self._hs_stream = self._flight.handshake_payload
        self._scid_cache: dict[int, bytes] = {}
        self._dcid_pool = [
            self.rng.randbytes(8) for _ in range(max(1, policy.attacker_dcid_pool))
        ]
        # Handshake datagrams and keep-alive pings are pure functions of
        # (version, TLS flight, attacker DCID, SCID): the packet numbers
        # are fixed and the keys follow from version + DCID.  The cache
        # defaults to the module-wide one — keyed by that full tuple via
        # ``_template_ns`` — so templates survive across floods and
        # scenario rebuilds instead of dying with each responder.
        self.templates = _RESPONSE_TEMPLATES if templates is None else templates
        self._template_ns = (
            policy.version.value,
            hashlib.sha256(self._hs_stream).digest(),
        )

    def _scid_for(self, spoofed_ip: int) -> bytes:
        if self.policy.scid_policy == "source":
            cached = self._scid_cache.get(spoofed_ip)
            if cached is None:
                cached = self.rng.randbytes(8)
                self._scid_cache[spoofed_ip] = cached
            return cached
        return self.rng.randbytes(8)

    @property
    def unique_scids(self) -> int:
        """SCIDs handed out so far under a 'source' policy."""
        return len(self._scid_cache)

    def respond(
        self, timestamp: float, spoofed_ip: int, spoofed_port: int
    ) -> list:
        """Packets sent to ``spoofed_ip`` in response to one Initial.

        Returns :class:`~repro.net.packet.CapturedPacket` records in
        time order.
        """
        version = self.policy.version
        if self.rng.random() < self.policy.vn_probability:
            return [self._version_negotiation(timestamp, spoofed_ip, spoofed_port)]
        scid = self._scid_for(spoofed_ip)
        # The attacker's Initial carried a DCID from its template pool;
        # the victim keys its Initial-level response on it.
        attacker_dcid = self.rng.choice(self._dcid_pool)
        _ckeys, server_init = derive_initial_keys(version, attacker_dcid)
        server_hs = derive_handshake_secret(version, attacker_dcid, "server hs")

        server_hello = tls.ServerHello(random=self.rng.randbytes(32))
        first_chunk = min(len(self._hs_stream), 900)
        initial_packet = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.INITIAL,
                version=version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=0,
            frames=[AckFrame(0), CryptoFrame(0, server_hello.serialize())],
        )
        # The Initial carries the per-response ServerHello random, so it
        # is protected fresh; its Handshake companions are templates.
        # Coalescing is plain concatenation (no padding requested), so
        # the cached suffix is byte-identical to an inline build.
        ns = self._template_ns
        datagram_1 = protect_packet(initial_packet, server_init) + self.templates.get(
            ("hs1", ns, attacker_dcid, scid),
            lambda: protect_packet(
                self._handshake_packet(0, CryptoFrame(0, self._hs_stream[:first_chunk]), scid),
                server_hs,
            ),
        )
        datagram_2 = self.templates.get(
            ("hs2", ns, attacker_dcid, scid),
            lambda: build_datagram(
                [
                    (
                        self._handshake_packet(
                            1,
                            CryptoFrame(first_chunk, self._hs_stream[first_chunk:]),
                            scid,
                        ),
                        server_hs,
                    )
                ]
            ),
        )

        schedule = [(0.0, datagram_1), (0.002, datagram_2)]
        for i in range(self.policy.keepalive_pings):
            ping_bytes = self.templates.get(
                ("ping", ns, attacker_dcid, scid, i),
                lambda i=i: build_datagram(
                    [(self._handshake_packet(2 + i, PingFrame(), scid), server_hs)]
                ),
            )
            schedule.append((0.05 * (i + 1), ping_bytes))
        if self.rng.random() < self.policy.retransmit_probability:
            # PTO fires: the whole first datagram is retransmitted.
            schedule.append((1.0, datagram_1))

        return [
            self._packet(timestamp + delay, spoofed_ip, spoofed_port, payload)
            for delay, payload in schedule
        ]

    def _handshake_packet(self, packet_number: int, frame, scid: bytes) -> PlainPacket:
        return PlainPacket(
            header=LongHeader(
                packet_type=PacketType.HANDSHAKE,
                version=self.policy.version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=packet_number,
            frames=[frame],
        )

    def _version_negotiation(
        self, timestamp: float, spoofed_ip: int, spoofed_port: int
    ) -> CapturedPacket:
        """The victim rejects a stale-version Initial with a VN packet."""
        from repro.quic.header import VersionNegotiationPacket

        packet = VersionNegotiationPacket(
            dcid=self.rng.randbytes(8),
            scid=self._scid_for(spoofed_ip),
            supported_versions=(self.policy.version.value, QUIC_V1.value),
        )
        return self._packet(timestamp, spoofed_ip, spoofed_port, packet.serialize())

    def _packet(
        self, timestamp: float, dst_ip: int, dst_port: int, payload: bytes
    ) -> CapturedPacket:
        return CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=dst_ip, proto=IPProto.UDP),
            transport=UdpHeader(src_port=443, dst_port=dst_port),
            payload=payload,
        )


class TcpVictimResponder:
    """SYN-ACK / RST backscatter from a spoofed TCP SYN flood."""

    def __init__(
        self, victim_ip: int, rng: SeededRng, service_port: int = 443, rst_fraction: float = 0.15
    ) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"tcp-responder:{victim_ip}")
        self.service_port = service_port
        self.rst_fraction = rst_fraction

    def respond(self, timestamp: float, spoofed_ip: int, spoofed_port: int) -> list:
        flags = (
            _RST_ACK if self.rng.random() < self.rst_fraction else _SYN_ACK
        )
        packet = CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=spoofed_ip, proto=IPProto.TCP),
            transport=TcpHeader(
                src_port=self.service_port,
                dst_port=spoofed_port,
                seq=self.rng.randint(0, 2**32 - 1),
                ack=self.rng.randint(0, 2**32 - 1),
                flags=flags,
            ),
        )
        return [packet]


class IcmpVictimResponder:
    """Echo-reply backscatter from a spoofed ICMP echo flood."""

    def __init__(self, victim_ip: int, rng: SeededRng) -> None:
        self.victim_ip = victim_ip
        self.rng = rng.child(f"icmp-responder:{victim_ip}")
        self._sequence = 0

    def respond(self, timestamp: float, spoofed_ip: int, _spoofed_port: int) -> list:
        self._sequence = (self._sequence + 1) & 0xFFFF
        packet = CapturedPacket(
            timestamp=timestamp,
            ip=IPv4Header(src=self.victim_ip, dst=spoofed_ip, proto=IPProto.ICMP),
            transport=IcmpHeader(
                IcmpType.ECHO_REPLY,
                identifier=self.rng.randint(0, 0xFFFF),
                sequence=self._sequence,
            ),
            payload=b"\x00" * 32,
        )
        return [packet]
