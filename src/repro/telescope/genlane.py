"""Generation fast lane: flat record synthesis + wire-template stamping.

The mirror image of ``repro.core.batchlane``.  The batch lane made
*analysis* fast by walking raw bytes instead of building header
objects; this module makes *generation* fast the same way.  Traffic
models grow ``records()`` twins of their ``packets()`` generators that
emit flat tuples instead of :class:`~repro.net.packet.CapturedPacket`
dataclasses, and this module turns those tuples into wire bytes by
stamping preallocated template buffers — bytearray copies of each
distinct datagram with the mutable fields (addresses, ports, checksums,
TCP sequence numbers, ICMP identifiers) patched in place per packet,
DPDK-style, instead of re-serializing four header objects per packet.

Record format
-------------

A *gen record* is the batch lane's 11-field lane record, optionally
extended with two wire-only fields::

    (timestamp, src, dst, total_length, proto, kind,
     f1, f2, f3, payload_length, payload[, x1, x2])

``kind``/``f1``/``f2``/``f3`` follow ``net.packet.wire_record`` exactly
(kind 1 UDP: ports; kind 2 TCP: ports + flags; kind 3 ICMP: type/code).
UDP records are plain 11-tuples — they already *are* lane records, so
the generate→analyze path hands them to
``PartialState.consume_lane_records`` with zero conversion.  TCP and
ICMP records carry two extra fields the lane never looks at but the
wire needs: ``x1``/``x2`` are the TCP sequence/acknowledgement numbers
or the ICMP identifier/sequence.  :func:`lane_records` strips them
(``record[:11]``; a no-op object-identity slice for the 11-tuples).

Checksums without serializers
-----------------------------

A 16-bit one's-complement sum is just a big integer mod ``0xFFFF``, so
each template precomputes the sum of every word that does not change
between packets — including the whole payload, folded once at template
build time via ``int.from_bytes(payload) % 0xFFFF`` (C speed).  Per
packet only the handful of varying words (address halves, ports,
seq/ack, identifier) are added and the total folded; the result is
bit-identical to ``net.checksum.internet_checksum`` over the full
buffer because one's-complement addition is associative and the fold
preserves the value mod ``0xFFFF``.

The stamped buffers are **borrowed**: :meth:`WireStamper.wire` returns
the template's internal bytearray, valid only until the next call for
the same payload.  Consumers must copy before the next stamp —
``net.pcap.write_records`` appends each buffer into its chunk buffer
immediately, which is exactly that copy.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Tuple

#: index aliases into a gen record (the first 11 match the lane record)
GEN_TS, GEN_SRC, GEN_DST = 0, 1, 2
GEN_TOTAL, GEN_PROTO, GEN_KIND = 3, 4, 5
GEN_F1, GEN_F2, GEN_F3 = 6, 7, 8
GEN_PLEN, GEN_PAYLOAD, GEN_X1, GEN_X2 = 9, 10, 11, 12

_IP_BASE = struct.Struct("!BBHHHBBH")  # through the checksum field
_UDP_BASE = struct.Struct("!HHHH")
_TCP_BASE = struct.Struct("!HHIIBBHHH")
_ICMP_BASE = struct.Struct("!BBHHH")

# per-packet stamp regions (offsets into the full IP datagram):
#   UDP : ip ck @10, src @12, dst @16, sport @20, dport @22, udp ck @26
#   TCP : ip ck @10, src @12, dst @16, ports @20, seq @24, ack @28,
#         flags byte @33, tcp ck @36
#   ICMP: ip ck @10, src @12, dst @16, icmp ck @22, ident @24, seq @26
_UDP_STAMP = struct.Struct(">HIIHH")
_TCP_STAMP = struct.Struct(">HIIHHII")
_ICMP_STAMP = struct.Struct(">HII")
_ICMP_TAIL = struct.Struct(">HHH")
_CK = struct.Struct(">H")

#: wholesale-clear bound for the per-payload template table (responder
#: Initials carry a fresh ServerHello random, so their payloads never
#: repeat; without a cap the table would grow with scenario length)
MAX_TEMPLATES = 8192


def _payload_mod(payload: bytes) -> int:
    """The payload's one's-complement word sum, reduced mod 0xFFFF."""
    if not payload:
        return 0
    if len(payload) & 1:
        payload = payload + b"\x00"
    return int.from_bytes(payload, "big") % 0xFFFF


class WireStamper:
    """Stamps gen records into RFC-exact wire bytes via cached templates.

    One template per distinct ``(kind, payload)``; stamping a packet is
    two ``struct.pack_into`` calls and a dozen integer adds.  The
    output is byte-identical to ``CapturedPacket.to_bytes()`` for the
    headers the generators produce (TTL 64, no IP options, TCP window
    65535) — ``tests/test_genlane_equivalence.py`` pins whole-pcap
    equality against the rich path.
    """

    def __init__(self) -> None:
        self._udp: dict[bytes, tuple] = {}
        self._icmp: dict[tuple, tuple] = {}
        self._tcp_buf = bytearray(40)
        _IP_BASE.pack_into(self._tcp_buf, 0, 0x45, 0, 40, 0, 0x4000, 64, 6, 0)
        _TCP_BASE.pack_into(self._tcp_buf, 20, 0, 0, 0, 0, 5 << 4, 0, 65535, 0, 0)
        self._tcp_ip_const = 0x4500 + 40 + 0x4000 + 0x4006
        # pseudo-header proto + length words, data-offset base, window
        self._tcp_const = 6 + 20 + 0x5000 + 0xFFFF
        self.stamped = 0
        self.templates_built = 0

    def __len__(self) -> int:
        return len(self._udp) + len(self._icmp) + 1  # + the TCP template

    # -- template builders -------------------------------------------------

    def _build_udp(self, payload: bytes) -> tuple:
        if len(self._udp) >= MAX_TEMPLATES:
            self._udp.clear()
        plen = len(payload)
        total = 28 + plen
        buf = bytearray(total)
        _IP_BASE.pack_into(buf, 0, 0x45, 0, total, 0, 0x4000, 64, 17, 0)
        _UDP_BASE.pack_into(buf, 20, 0, 0, 8 + plen, 0)
        buf[28:] = payload
        ip_const = 0x4500 + total + 0x4000 + 0x4011
        udp_const = 17 + 2 * (8 + plen) + _payload_mod(payload)
        entry = (buf, ip_const, udp_const)
        self._udp[payload] = entry
        self.templates_built += 1
        return entry

    def _build_icmp(self, key: tuple) -> tuple:
        if len(self._icmp) >= MAX_TEMPLATES:
            self._icmp.clear()
        icmp_type, code, payload = key
        plen = len(payload)
        total = 28 + plen
        buf = bytearray(total)
        _IP_BASE.pack_into(buf, 0, 0x45, 0, total, 0, 0x4000, 64, 1, 0)
        _ICMP_BASE.pack_into(buf, 20, icmp_type, code, 0, 0, 0)
        buf[28:] = payload
        ip_const = 0x4500 + total + 0x4000 + 0x4001
        head_const = ((icmp_type << 8) | code) + _payload_mod(payload)
        entry = (buf, ip_const, head_const)
        self._icmp[key] = entry
        self.templates_built += 1
        return entry

    # -- stamping ----------------------------------------------------------

    def wire(self, record: tuple) -> bytearray:
        """Return the wire bytes for one gen record (borrowed buffer)."""
        kind = record[5]
        src = record[1]
        dst = record[2]
        addr = (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
        self.stamped += 1
        if kind == 1:
            payload = record[10]
            entry = self._udp.get(payload)
            if entry is None:
                entry = self._build_udp(payload)
            buf, ip_const, udp_const = entry
            total = ip_const + addr
            total = (total & 0xFFFF) + (total >> 16)
            total = (total & 0xFFFF) + (total >> 16)
            sport = record[6]
            dport = record[7]
            check = udp_const + addr + sport + dport
            check = (check & 0xFFFF) + (check >> 16)
            check = (check & 0xFFFF) + (check >> 16)
            _UDP_STAMP.pack_into(
                buf, 10, ~total & 0xFFFF, src, dst, sport, dport
            )
            _CK.pack_into(buf, 26, (~check & 0xFFFF) or 0xFFFF)
            return buf
        if kind == 2:
            buf = self._tcp_buf
            flags = record[8]
            seq = record[11]
            ack = record[12]
            total = self._tcp_ip_const + addr
            total = (total & 0xFFFF) + (total >> 16)
            total = (total & 0xFFFF) + (total >> 16)
            sport = record[6]
            dport = record[7]
            check = (
                self._tcp_const + flags + addr + sport + dport
                + (seq >> 16) + (seq & 0xFFFF)
                + (ack >> 16) + (ack & 0xFFFF)
            )
            check = (check & 0xFFFF) + (check >> 16)
            check = (check & 0xFFFF) + (check >> 16)
            _TCP_STAMP.pack_into(
                buf, 10, ~total & 0xFFFF, src, dst, sport, dport, seq, ack
            )
            buf[33] = flags
            _CK.pack_into(buf, 36, ~check & 0xFFFF)
            return buf
        if kind == 3:
            key = (record[6], record[7], record[10])
            entry = self._icmp.get(key)
            if entry is None:
                entry = self._build_icmp(key)
            buf, ip_const, head_const = entry
            total = ip_const + addr
            total = (total & 0xFFFF) + (total >> 16)
            total = (total & 0xFFFF) + (total >> 16)
            ident = record[11]
            seq = record[12]
            check = head_const + ident + seq
            check = (check & 0xFFFF) + (check >> 16)
            check = (check & 0xFFFF) + (check >> 16)
            _ICMP_STAMP.pack_into(buf, 10, ~total & 0xFFFF, src, dst)
            _ICMP_TAIL.pack_into(buf, 22, ~check & 0xFFFF, ident, seq)
            return buf
        raise ValueError(f"gen record with unknown kind {kind}")


#: the process-wide stamper behind :func:`wire_items`; its tallies feed
#: the ``repro_genlane_wire_*`` collector below.
_STAMPER = WireStamper()


def wire_items(records: Iterable[tuple]) -> Iterator[Tuple[float, bytearray]]:
    """Map gen records to ``(timestamp, wire_bytes)`` pairs.

    The byte buffers are borrowed from the shared stamper (valid until
    the next item) — feed this straight into
    :func:`repro.net.pcap.write_records`, which copies per item.
    """
    wire = _STAMPER.wire
    for record in records:
        yield record[0], wire(record)


def lane_records(records: Iterable[tuple]) -> Iterator[tuple]:
    """Strip gen records down to the batch lane's 11-field records."""
    for record in records:
        yield record if len(record) == 11 else record[:11]


# -- observability ---------------------------------------------------------
# Registered at import, collected at export time; the hot loops above
# touch plain instance attributes only (the obs design rule: publish at
# boundaries, never per packet).
from repro import obs as _obs  # noqa: E402  (after the stamper it observes)

M_RECORDS = _obs.counter(
    "repro_genlane_records_total",
    "telescope-accepted records emitted by the generation fast lane",
)
_M_WIRE_STAMPED = _obs.counter(
    "repro_genlane_wire_stamped_total",
    "wire datagrams stamped from preallocated templates",
)
_M_WIRE_TEMPLATES = _obs.gauge(
    "repro_genlane_wire_templates",
    "distinct wire templates currently held by the shared stamper",
)
M_SHARD_RECORDS = _obs.counter(
    "repro_genlane_shard_records_total",
    "records shipped by each sharded-generation worker",
    labels=("worker",),
)
M_GEN_WORKERS = _obs.gauge(
    "repro_genlane_workers",
    "worker count of the most recent sharded generation run",
)


def _collect_stamper_metrics() -> None:
    _M_WIRE_STAMPED.set_total(_STAMPER.stamped)
    _M_WIRE_TEMPLATES.set(len(_STAMPER))


_obs.REGISTRY.add_collector(_collect_stamper_metrics)
