"""The network telescope itself: a darknet packet tap.

A telescope is a routed but unused prefix whose every incoming packet
is unsolicited by construction.  :class:`Telescope` filters an incoming
stream down to packets destined to its prefix, keeps arrival counters,
and can persist captures to pcap for offline analysis — the same
pipeline shape as the UCSD telescope feeding the paper's toolchain.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable, Iterator

from repro import obs
from repro.net.addresses import IPv4Network
from repro.net.packet import CapturedPacket
from repro.net.pcap import write_pcap
from repro.telescope.genlane import M_RECORDS as _M_LANE_RECORDS

# Generation-rate metrics.  The capture generator is the single funnel
# every scenario stream passes through, so it is the one place to count
# generated packets — flushed every _FLUSH_EVERY packets (and at
# generator close) to keep the per-packet loop free of metric calls.
_M_GENERATED = obs.counter(
    "repro_telescope_packets_total",
    "packets captured by the telescope tap (destined to its prefix)",
)
_M_DROPPED = obs.counter(
    "repro_telescope_dropped_total",
    "generated packets outside the telescope prefix (not captured)",
)
_M_GENERATE = obs.histogram(
    "repro_telescope_generate_seconds",
    "wall seconds per full capture-stream generation",
)
_FLUSH_EVERY = 4096


class Telescope:
    """A /N darknet capturing unsolicited traffic."""

    def __init__(self, prefix: IPv4Network) -> None:
        self.prefix = prefix
        self.packets_seen = 0
        self.packets_dropped = 0

    @property
    def extrapolation_factor(self) -> float:
        """Scale factor from telescope counts to Internet-wide counts.

        The paper's /9 covers 1/512 of IPv4, hence the 512x max-pps
        extrapolation in Section 5.2.
        """
        return 2.0 ** self.prefix.prefix_len

    def capture(self, stream: Iterable[CapturedPacket]) -> Iterator[CapturedPacket]:
        """Yield only packets destined to the telescope prefix."""
        if not obs.enabled():
            for packet in stream:
                if packet.dst in self.prefix:
                    self.packets_seen += 1
                    yield packet
                else:
                    self.packets_dropped += 1
            return
        # metrics-on path: identical filtering, counters flushed in bulk
        seen_base = self.packets_seen
        dropped_base = self.packets_dropped
        flushed = 0
        start = time.perf_counter()
        try:
            for packet in stream:
                if packet.dst in self.prefix:
                    self.packets_seen += 1
                    yield packet
                    pending = self.packets_seen - seen_base - flushed
                    if pending >= _FLUSH_EVERY:
                        _M_GENERATED.inc(pending)
                        flushed += pending
                else:
                    self.packets_dropped += 1
        finally:
            _M_GENERATED.inc(self.packets_seen - seen_base - flushed)
            _M_DROPPED.inc(self.packets_dropped - dropped_base)
            _M_GENERATE.observe(time.perf_counter() - start)

    def capture_records(self, stream: Iterable[tuple]) -> Iterator[tuple]:
        """The generation fast lane's twin of :meth:`capture`.

        Filters flat gen records (see :mod:`repro.telescope.genlane`)
        on their destination field with the same counters and the same
        bulk-flushed metrics, plus the lane's own
        ``repro_genlane_records_total``.
        """
        prefix = self.prefix
        network = prefix.network
        netmask = prefix.netmask
        if not obs.enabled():
            # counters kept in locals and flushed on close: an instance
            # attribute store per record is measurable at lane rates
            seen = dropped = 0
            try:
                for record in stream:
                    if record[2] & netmask == network:
                        seen += 1
                        yield record
                    else:
                        dropped += 1
            finally:
                self.packets_seen += seen
                self.packets_dropped += dropped
            return
        # metrics-on keeps the same local-counter loop: the lane runs
        # fast enough that even instance-attribute stores per record
        # would show up against the <5% instrumentation budget
        seen = dropped = flushed = 0
        start = time.perf_counter()
        try:
            for record in stream:
                if record[2] & netmask == network:
                    seen += 1
                    yield record
                    if seen - flushed >= _FLUSH_EVERY:
                        pending = seen - flushed
                        _M_GENERATED.inc(pending)
                        _M_LANE_RECORDS.inc(pending)
                        flushed = seen
                else:
                    dropped += 1
        finally:
            pending = seen - flushed
            _M_GENERATED.inc(pending)
            _M_LANE_RECORDS.inc(pending)
            _M_DROPPED.inc(dropped)
            self.packets_seen += seen
            self.packets_dropped += dropped
            _M_GENERATE.observe(time.perf_counter() - start)

    def capture_to_pcap(self, stream: Iterable[CapturedPacket], path) -> int:
        """Capture a stream to a pcap file; returns the packet count."""
        return write_pcap(path, self.capture(stream))


def merge_streams(*streams: Iterable[CapturedPacket]) -> Iterator[CapturedPacket]:
    """Merge per-source time-sorted packet streams into one tap feed."""
    return heapq.merge(*streams, key=lambda p: p.timestamp)
