"""QUICsand reproduction — see README.md for the package map."""

#: fallback for ``python -m repro --version`` when the package is run
#: from a source tree (PYTHONPATH=src) without installed metadata.
__version__ = "1.0.0"
