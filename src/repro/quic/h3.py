"""Minimal HTTP/3 (RFC 9114) framing with static-table QPACK (RFC 9204).

QUIC's deployment driver is HTTP/3 — the scans the paper observes
advertise ``h3`` ALPN, and the NGINX testbed terminates HTTP/3.  This
module implements the slice of the protocol the reproduction exercises:

- HTTP/3 frames (DATA, HEADERS, SETTINGS, GOAWAY) with varint framing;
- QPACK field-line encoding restricted to the *static* table plus
  literal field lines (no dynamic table, no Huffman) — which is exactly
  what minimal clients such as scan probes emit;
- request/response helpers used by the active prober (Section 6's
  validation connects to attacked servers "with a QUIC client" and
  fetches a page) and by the handshake endpoints' post-handshake
  request path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.varint import VarintError, decode_varint, encode_varint

FRAME_DATA = 0x0
FRAME_HEADERS = 0x1
FRAME_SETTINGS = 0x4
FRAME_GOAWAY = 0x7

SETTINGS_QPACK_MAX_TABLE_CAPACITY = 0x1
SETTINGS_MAX_FIELD_SECTION_SIZE = 0x6

#: The rows of the QPACK static table (RFC 9204 Appendix A) used here.
STATIC_TABLE: tuple = (
    (":authority", ""),          # 0
    (":path", "/"),              # 1
    ("age", "0"),                # 2
    ("content-disposition", ""), # 3
    ("content-length", "0"),     # 4
    ("cookie", ""),              # 5
    ("date", ""),                # 6
    ("etag", ""),                # 7
    ("if-modified-since", ""),   # 8
    ("if-none-match", ""),       # 9
    ("last-modified", ""),       # 10
    ("link", ""),                # 11
    ("location", ""),            # 12
    ("referer", ""),             # 13
    ("set-cookie", ""),          # 14
    (":method", "CONNECT"),      # 15
    (":method", "DELETE"),       # 16
    (":method", "GET"),          # 17
    (":method", "HEAD"),         # 18
    (":method", "OPTIONS"),      # 19
    (":method", "POST"),         # 20
    (":method", "PUT"),          # 21
    (":scheme", "http"),         # 22
    (":scheme", "https"),        # 23
    (":status", "103"),          # 24
    (":status", "200"),          # 25
    (":status", "304"),          # 26
    (":status", "404"),          # 27
    (":status", "503"),          # 28
)

_STATIC_EXACT = {pair: i for i, pair in enumerate(STATIC_TABLE)}
_STATIC_NAME = {}
for _i, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME.setdefault(_name, _i)


class H3ParseError(ValueError):
    """Raised for malformed HTTP/3 frames or QPACK field sections."""


# --------------------------------------------------------------------------
# QPACK (static table + literals, no Huffman)
# --------------------------------------------------------------------------


def _prefixed_int(value: int, prefix_bits: int, first_byte_flags: int) -> bytes:
    """QPACK/HPACK prefixed integer encoding (RFC 7541 §5.1)."""
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte_flags | value])
    out = bytearray([first_byte_flags | limit])
    value -= limit
    while value >= 128:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_prefixed_int(data: bytes, offset: int, prefix_bits: int) -> tuple:
    limit = (1 << prefix_bits) - 1
    if offset >= len(data):
        raise H3ParseError("prefixed integer truncated")
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise H3ParseError("prefixed integer continuation truncated")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            return value, offset


def encode_field_section(headers: list) -> bytes:
    """QPACK-encode ``[(name, value), ...]`` using the static table."""
    # Required Insert Count = 0, Delta Base = 0: static-only encoding.
    out = bytearray(b"\x00\x00")
    for name, value in headers:
        exact = _STATIC_EXACT.get((name, value))
        if exact is not None:
            # Indexed Field Line, static: 1 1 <index:6>
            out += _prefixed_int(exact, 6, 0xC0)
            continue
        name_index = _STATIC_NAME.get(name)
        if name_index is not None:
            # Literal With Name Reference, static: 0 1 N=0 1 <index:4>
            out += _prefixed_int(name_index, 4, 0x50)
        else:
            # Literal With Literal Name: 0 0 1 N=0 H=0 <namelen:3>
            raw = name.encode("ascii")
            out += _prefixed_int(len(raw), 3, 0x20)
            out += raw
        raw_value = value.encode("ascii")
        out += _prefixed_int(len(raw_value), 7, 0x00)
        out += raw_value
    return bytes(out)


def decode_field_section(data: bytes) -> list:
    """Decode a static-only QPACK field section back to header pairs."""
    if len(data) < 2:
        raise H3ParseError("field section prefix truncated")
    offset = 2  # required insert count + base, both zero here
    headers = []
    while offset < len(data):
        first = data[offset]
        if first & 0x80:  # indexed field line
            if not first & 0x40:
                raise H3ParseError("dynamic-table reference not supported")
            index, offset = _decode_prefixed_int(data, offset, 6)
            if index >= len(STATIC_TABLE):
                raise H3ParseError(f"static index {index} out of range")
            headers.append(STATIC_TABLE[index])
        elif first & 0x40:  # literal with name reference
            if not first & 0x10:
                raise H3ParseError("dynamic-table name reference not supported")
            index, offset = _decode_prefixed_int(data, offset, 4)
            if index >= len(STATIC_TABLE):
                raise H3ParseError(f"static name index {index} out of range")
            name = STATIC_TABLE[index][0]
            value, offset = _read_string(data, offset)
            headers.append((name, value))
        elif first & 0x20:  # literal with literal name
            name_len, offset = _decode_prefixed_int(data, offset, 3)
            name = data[offset : offset + name_len].decode("ascii", "replace")
            if len(data) < offset + name_len:
                raise H3ParseError("literal name truncated")
            offset += name_len
            value, offset = _read_string(data, offset)
            headers.append((name, value))
        else:
            raise H3ParseError(f"unsupported field line 0x{first:02x}")
    return headers


def _read_string(data: bytes, offset: int) -> tuple:
    if offset < len(data) and data[offset] & 0x80:
        raise H3ParseError("Huffman-coded strings not supported")
    length, offset = _decode_prefixed_int(data, offset, 7)
    end = offset + length
    if end > len(data):
        raise H3ParseError("string literal truncated")
    return data[offset:end].decode("ascii", "replace"), end


# --------------------------------------------------------------------------
# HTTP/3 frames
# --------------------------------------------------------------------------


@dataclass
class H3Frame:
    frame_type: int
    payload: bytes

    def serialize(self) -> bytes:
        return (
            encode_varint(self.frame_type)
            + encode_varint(len(self.payload))
            + self.payload
        )


def parse_frames(data: bytes) -> list:
    """Parse a stream's bytes into HTTP/3 frames."""
    frames = []
    offset = 0
    try:
        while offset < len(data):
            frame_type, offset = decode_varint(data, offset)
            length, offset = decode_varint(data, offset)
            end = offset + length
            if end > len(data):
                raise H3ParseError("frame payload truncated")
            frames.append(H3Frame(frame_type, data[offset:end]))
            offset = end
    except VarintError as exc:
        raise H3ParseError(str(exc)) from exc
    return frames


def settings_frame(settings: Optional[dict] = None) -> H3Frame:
    """A SETTINGS frame (first frame on the control stream)."""
    settings = settings or {
        SETTINGS_QPACK_MAX_TABLE_CAPACITY: 0,
        SETTINGS_MAX_FIELD_SECTION_SIZE: 16384,
    }
    payload = b"".join(
        encode_varint(key) + encode_varint(value)
        for key, value in sorted(settings.items())
    )
    return H3Frame(FRAME_SETTINGS, payload)


def parse_settings(frame: H3Frame) -> dict:
    if frame.frame_type != FRAME_SETTINGS:
        raise H3ParseError("not a SETTINGS frame")
    settings = {}
    offset = 0
    while offset < len(frame.payload):
        key, offset = decode_varint(frame.payload, offset)
        value, offset = decode_varint(frame.payload, offset)
        settings[key] = value
    return settings


# --------------------------------------------------------------------------
# requests and responses
# --------------------------------------------------------------------------


@dataclass
class H3Request:
    """A client request as carried on a request stream."""

    authority: str
    path: str = "/"
    method: str = "GET"
    extra_headers: list = field(default_factory=list)

    def serialize(self) -> bytes:
        headers = [
            (":method", self.method),
            (":scheme", "https"),
            (":authority", self.authority),
            (":path", self.path),
        ] + list(self.extra_headers)
        return H3Frame(FRAME_HEADERS, encode_field_section(headers)).serialize()

    @classmethod
    def parse(cls, data: bytes) -> "H3Request":
        frames = parse_frames(data)
        if not frames or frames[0].frame_type != FRAME_HEADERS:
            raise H3ParseError("request stream does not start with HEADERS")
        headers = decode_field_section(frames[0].payload)
        pseudo = dict(h for h in headers if h[0].startswith(":"))
        try:
            return cls(
                authority=pseudo[":authority"],
                path=pseudo.get(":path", "/"),
                method=pseudo[":method"],
                extra_headers=[h for h in headers if not h[0].startswith(":")],
            )
        except KeyError as exc:
            raise H3ParseError(f"missing pseudo-header {exc}") from exc


@dataclass
class H3Response:
    """A server response: status headers plus one DATA body frame."""

    status: int = 200
    body: bytes = b""
    extra_headers: list = field(default_factory=list)

    def serialize(self) -> bytes:
        headers = [(":status", str(self.status))] + list(self.extra_headers)
        out = H3Frame(FRAME_HEADERS, encode_field_section(headers)).serialize()
        if self.body:
            out += H3Frame(FRAME_DATA, self.body).serialize()
        return out

    @classmethod
    def parse(cls, data: bytes) -> "H3Response":
        frames = parse_frames(data)
        if not frames or frames[0].frame_type != FRAME_HEADERS:
            raise H3ParseError("response stream does not start with HEADERS")
        headers = decode_field_section(frames[0].payload)
        status = next((v for n, v in headers if n == ":status"), None)
        if status is None:
            raise H3ParseError("response missing :status")
        body = b"".join(
            f.payload for f in frames[1:] if f.frame_type == FRAME_DATA
        )
        return cls(
            status=int(status),
            body=body,
            extra_headers=[h for h in headers if not h[0].startswith(":")],
        )
