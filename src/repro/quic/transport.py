"""A lossy-link harness with PTO-style retransmission (RFC 9002-lite).

The handshake endpoints in :mod:`repro.quic.connection` are pure state
machines: datagrams in, datagrams out.  Real networks lose packets, and
QUIC recovers with probe timeouts (PTO) that double on each expiry —
which is also why flood victims retransmit their flights into the
telescope (the responder's ``retransmit_probability`` models exactly
that behaviour at population scale).

This module closes the loop for *individual* connections:

- :class:`LossyLink` — a deterministic, seeded link with loss, delay
  and jitter per direction;
- :class:`ConnectionRunner` — drives a client/server pair over the
  link on a virtual clock, re-sending the client's last flight on PTO
  with exponential backoff (RFC 9002 §6.2) until the handshake
  completes or the attempt times out.

Used by tests to show handshakes survive heavy loss, and available to
applications that want realistic end-to-end behaviour.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.util.rng import SeededRng

#: RFC 9002 §6.2.2: initial PTO before any RTT sample (we keep the
#: conservative 1 s the RFC recommends, scaled for simulation speed).
INITIAL_PTO = 1.0
MAX_PTO_COUNT = 7


@dataclass
class LossyLink:
    """A one-way link: loss probability plus delay with jitter."""

    rng: SeededRng
    loss: float = 0.0
    delay: float = 0.05
    jitter: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss probability {self.loss} outside [0, 1)")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")

    def transit(self) -> Optional[float]:
        """Delivery latency for one datagram, or ``None`` when lost."""
        if self.rng.random() < self.loss:
            return None
        return self.delay + self.rng.uniform(0.0, self.jitter)


@dataclass
class RunStats:
    """Observability for one connection attempt."""

    datagrams_sent: int = 0
    datagrams_lost: int = 0
    retransmissions: int = 0
    pto_count: int = 0
    completed_at: Optional[float] = None


class ConnectionRunner:
    """Runs one client/server handshake over lossy links."""

    def __init__(
        self,
        client,
        server,
        rng: SeededRng,
        loss: float = 0.0,
        delay: float = 0.05,
        client_ip: int = 0x0A000001,
        client_port: int = 50000,
    ) -> None:
        self.client = client
        self.server = server
        self.uplink = LossyLink(rng.child("uplink"), loss=loss, delay=delay)
        self.downlink = LossyLink(rng.child("downlink"), loss=loss, delay=delay)
        self.client_ip = client_ip
        self.client_port = client_port
        self.stats = RunStats()
        self._events: list = []
        self._sequence = 0
        self._now = 0.0
        self._last_client_flight: list = []

    # -- event plumbing ----------------------------------------------------

    def _push(self, when: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (when, self._sequence, kind, payload))
        self._sequence += 1

    def _send_to_server(self, datagrams: list) -> None:
        if datagrams:
            self._last_client_flight = list(datagrams)
        for datagram in datagrams:
            self.stats.datagrams_sent += 1
            latency = self.uplink.transit()
            if latency is None:
                self.stats.datagrams_lost += 1
                continue
            self._push(self._now + latency, "to-server", datagram)

    def _send_to_client(self, scheduled) -> None:
        for item in scheduled:
            self.stats.datagrams_sent += 1
            latency = self.downlink.transit()
            if latency is None:
                self.stats.datagrams_lost += 1
                continue
            self._push(self._now + item.delay + latency, "to-client", item.data)

    # -- the run ------------------------------------------------------------

    def run(self, timeout: float = 60.0) -> RunStats:
        """Drive the handshake to completion or timeout; returns stats."""
        pto = INITIAL_PTO
        self._send_to_server([self.client.initial_datagram()])
        self._push(self._now + pto, "pto", None)

        while self._events:
            when, _seq, kind, payload = heapq.heappop(self._events)
            self._now = when
            if self._now > timeout:
                break
            if kind == "to-server":
                responses = self.server.handle_datagram(
                    payload, self.client_ip, self.client_port, now=self._now
                )
                self._send_to_client(responses)
            elif kind == "to-client":
                replies = self.client.handle_datagram(payload)
                if self.client.state == "connected":
                    # keep draining so in-flight datagrams (the server's
                    # post-handshake NEW_TOKEN / session ticket) arrive,
                    # but record completion now
                    if self.stats.completed_at is None:
                        self.stats.completed_at = self._now
                self._send_to_server([r.data for r in replies])
            elif kind == "pto":
                if self.client.state in ("connected", "failed"):
                    continue  # no re-arm: the PTO chain ends here
                if self.stats.pto_count >= MAX_PTO_COUNT:
                    break
                self.stats.pto_count += 1
                self.stats.retransmissions += len(self._last_client_flight) or 1
                # RFC 9002 probe: re-elicit the server by resending the
                # last client flight.
                self._send_to_server(list(self._last_client_flight))
                pto *= 2
                self._push(self._now + pto, "pto", None)
        if self.client.state == "connected" and self.stats.completed_at is None:
            self.stats.completed_at = self._now
        return self.stats
