"""QUIC substrate: RFC 9000/9001 wire format and handshake machinery.

This package implements everything the reproduction needs from QUIC
itself, from scratch:

- :mod:`repro.quic.versions` — version registry (v1, IETF drafts,
  Facebook mvfst variants, Google QUIC), including per-version initial
  salts.
- :mod:`repro.quic.crypto` — HKDF (real, per RFC 5869) and the packet
  protection AEAD.  AES-GCM is not available offline, so the AEAD is a
  documented substitution with identical ciphertext expansion; see the
  module docstring and DESIGN.md.
- :mod:`repro.quic.tls` — minimal TLS 1.3 handshake messages (Client
  Hello, Server Hello, EncryptedExtensions, Certificate, ...) with
  realistic sizes.
- :mod:`repro.quic.frames` — QUIC frames (PADDING, PING, ACK, CRYPTO,
  CONNECTION_CLOSE, NEW_CONNECTION_ID, ...).
- :mod:`repro.quic.header` — long/short headers, Retry and Version
  Negotiation packets.
- :mod:`repro.quic.packet` — packet protection, datagram assembly and
  coalescing, Initial padding rules.
- :mod:`repro.quic.retry` — Retry token mint/validate and integrity tag.
- :mod:`repro.quic.connection` — client/server handshake endpoints that
  produce the exact datagram trains the paper describes (Initial+
  Handshake, Handshake, then keep-alive PINGs).
"""

from repro.quic.versions import (
    QUIC_V1,
    DRAFT_27,
    DRAFT_29,
    MVFST_27,
    MVFST_EXP,
    QuicVersion,
    version_by_value,
)
from repro.quic.header import (
    HeaderForm,
    LongHeader,
    PacketType,
    RetryPacket,
    ShortHeader,
    VersionNegotiationPacket,
    parse_header,
)
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    FrameType,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    NewTokenFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    parse_frames,
    serialize_frames,
)
from repro.quic.packet import (
    CoalescedDatagram,
    PlainPacket,
    build_datagram,
    protect_packet,
    protect_short_packet,
    split_datagram,
    unprotect_initial,
    unprotect_short_packet,
)
from repro.quic.resumption import ResumptionState, SessionCache, early_data_keys
from repro.quic.connection import (
    ClientConnection,
    HandshakeResult,
    ServerConnection,
)
from repro.quic.retry import RetryTokenMinter

__all__ = [
    "QUIC_V1",
    "DRAFT_27",
    "DRAFT_29",
    "MVFST_27",
    "MVFST_EXP",
    "QuicVersion",
    "version_by_value",
    "HeaderForm",
    "LongHeader",
    "PacketType",
    "RetryPacket",
    "ShortHeader",
    "VersionNegotiationPacket",
    "parse_header",
    "AckFrame",
    "ConnectionCloseFrame",
    "CryptoFrame",
    "Frame",
    "FrameType",
    "HandshakeDoneFrame",
    "NewConnectionIdFrame",
    "NewTokenFrame",
    "PaddingFrame",
    "PingFrame",
    "StreamFrame",
    "parse_frames",
    "serialize_frames",
    "CoalescedDatagram",
    "PlainPacket",
    "build_datagram",
    "protect_packet",
    "protect_short_packet",
    "split_datagram",
    "unprotect_initial",
    "unprotect_short_packet",
    "ResumptionState",
    "SessionCache",
    "early_data_keys",
    "ClientConnection",
    "HandshakeResult",
    "ServerConnection",
    "RetryTokenMinter",
]
