"""Client and server handshake endpoints.

These state machines produce the *exact datagram trains* the paper's
measurements hinge on:

- a client Initial carries a TLS ClientHello and is padded to 1200
  bytes;
- the server answers an unverified address with two datagrams — the
  first coalescing Initial(ServerHello) + Handshake(EncryptedExtensions,
  start of Certificate), the second carrying the remaining Handshake
  messages — and, in keep-alive configurations (the paper's NGINX
  setup), two PING packets after a short delay: four response datagrams
  per spoofed request, which is the 4x response ratio in Table 1;
- the server never sends more than three times the bytes it received
  from an unverified address (RFC 9000 §8.1, the anti-amplification
  limit from Section 3 of the paper);
- with RETRY enabled, the first Initial earns only a Retry packet, and
  only token-bearing Initials get the full flight.

The endpoints are used by the backscatter generator (victims under
spoofed floods), the NGINX discrete-event simulation, and the active
RETRY probe (Section 6 validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.rng import SeededRng
from repro.quic import crypto, h3, tls
from repro.quic.crypto import derive_handshake_secret, derive_initial_keys
from repro.quic.frames import (
    AckFrame,
    CryptoFrame,
    HandshakeDoneFrame,
    NewTokenFrame,
    PingFrame,
    StreamFrame,
    crypto_payload,
)
from repro.quic.header import (
    HeaderParseError,
    LongHeader,
    PacketType,
    RetryPacket,
    ShortHeader,
    VersionNegotiationPacket,
)
from repro.quic.packet import (
    MIN_INITIAL_DATAGRAM,
    PlainPacket,
    build_datagram,
    protect_short_packet,
    split_datagram,
    unprotect_initial,
    unprotect_short_packet,
)
from repro.quic.resumption import ResumptionState, SessionCache, early_data_keys
from repro.quic.retry import (
    RetryTokenError,
    RetryTokenMinter,
    build_retry_packet,
    verify_retry_packet,
)
from repro.quic.versions import QUIC_V1, QuicVersion, version_by_value

DEFAULT_CID_LEN = 8
KEEPALIVE_DELAY = 0.05
#: RFC 9000 §8.1 anti-amplification factor for unverified addresses.
AMPLIFICATION_LIMIT = 3


@dataclass
class Datagram:
    """A scheduled outgoing datagram: send ``data`` after ``delay`` seconds."""

    delay: float
    data: bytes


@dataclass
class HandshakeResult:
    """Outcome of a completed (or failed) handshake attempt."""

    completed: bool
    version: QuicVersion
    scid: bytes = b""
    dcid: bytes = b""
    retries_seen: int = 0
    round_trips: int = 0
    used_0rtt: bool = False
    failure: Optional[str] = None


class ConnectionError_(Exception):
    """Protocol violation detected by an endpoint."""


class ClientConnection:
    """A QUIC client performing the typical 1-RTT handshake of Figure 1."""

    def __init__(
        self,
        rng: SeededRng,
        version: QuicVersion = QUIC_V1,
        server_name: str = "example.org",
        supported_versions: tuple[QuicVersion, ...] = (QUIC_V1,),
        cid_len: int = DEFAULT_CID_LEN,
        resumption: Optional[ResumptionState] = None,
        early_data: Optional[bytes] = None,
        session_cache: Optional[SessionCache] = None,
    ) -> None:
        self.rng = rng
        self.version = resumption.version if resumption else version
        self.server_name = server_name
        self.supported_versions = supported_versions
        self.scid = rng.randbytes(cid_len)
        self.odcid = rng.randbytes(cid_len)
        self.dcid = self.odcid
        self.token = resumption.address_token if resumption else b""
        self.session_cache = session_cache
        self._psk_identity = resumption.session_ticket if resumption else b""
        self.early_data = early_data if (early_data and self._psk_identity) else None
        self.used_0rtt = False
        self.state = "idle"
        self.retries_seen = 0
        self.round_trips = 0
        self.handshake_confirmed = False
        self.address_token: bytes = b""
        self.session_ticket: bytes = b""
        self.server_scid: bytes = b""
        self._initial_pn = 0
        self._handshake_pn = 0
        self._app_pn = 0
        self.http_responses: list = []
        self._refresh_keys()

    def _refresh_keys(self) -> None:
        self._client_initial, self._server_initial = derive_initial_keys(
            self.version, self.dcid
        )
        self._client_hs = derive_handshake_secret(self.version, self.odcid, "client hs")
        self._server_hs = derive_handshake_secret(self.version, self.odcid, "server hs")
        self._server_1rtt = derive_handshake_secret(self.version, self.odcid, "server 1rtt")
        self._client_1rtt = derive_handshake_secret(self.version, self.odcid, "client 1rtt")

    # -- client -> server ---------------------------------------------------

    def initial_datagram(self) -> bytes:
        """First flight: Initial carrying the ClientHello, padded to 1200.

        A resuming client adds its PSK identity (the session ticket) to
        the ClientHello and may coalesce a 0-RTT packet with early data
        — this is the Section 6 path that amortizes RETRY's extra
        round-trip for returning clients.
        """
        hello = tls.ClientHello(
            random=self.rng.randbytes(32),
            server_name=self.server_name,
            transport_parameters=self.rng.randbytes(64),
            psk_identity=self._psk_identity or None,
        )
        header = LongHeader(
            packet_type=PacketType.INITIAL,
            version=self.version.value,
            dcid=self.dcid,
            scid=self.scid,
            token=self.token,
        )
        packet = PlainPacket(
            header=header,
            packet_number=self._initial_pn,
            frames=[CryptoFrame(0, hello.serialize())],
        )
        self._initial_pn += 1
        parts = [(packet, self._client_initial)]
        if self.early_data is not None:
            zero_rtt = PlainPacket(
                header=LongHeader(
                    packet_type=PacketType.ZERO_RTT,
                    version=self.version.value,
                    dcid=self.dcid,
                    scid=self.scid,
                ),
                packet_number=0,
                frames=[StreamFrame(0, 0, self.early_data, fin=True)],
            )
            parts.append((zero_rtt, early_data_keys(self._psk_identity)))
            self.used_0rtt = True
        self.state = "awaiting-server-flight"
        return build_datagram(parts, pad_to=MIN_INITIAL_DATAGRAM)

    # -- server -> client ---------------------------------------------------

    def handle_datagram(self, data: bytes) -> list:
        """Process a server datagram; returns datagrams to send back."""
        out: list[Datagram] = []
        for view in split_datagram(data):
            if isinstance(view, VersionNegotiationPacket):
                out.extend(self._handle_version_negotiation(view))
            elif isinstance(view, RetryPacket):
                out.extend(self._handle_retry(view))
            elif isinstance(view, LongHeader) and view.packet_type is PacketType.INITIAL:
                self._handle_server_initial(data, view)
            elif isinstance(view, LongHeader) and view.packet_type is PacketType.HANDSHAKE:
                finished = self._handle_server_handshake(data, view)
                if finished and self.state != "connected":
                    out.append(Datagram(0.0, self._finish_datagram()))
            elif isinstance(view, ShortHeader):
                self._handle_one_rtt(data[view.start :])
        return out

    def _handle_one_rtt(self, packet: bytes) -> None:
        """Post-handshake 1-RTT data: NEW_TOKEN, session tickets, done."""
        try:
            _pn, frames = unprotect_short_packet(
                packet, len(self.scid), self._server_1rtt
            )
        except (crypto.DecryptError, HeaderParseError, ValueError):
            return
        for frame in frames:
            if isinstance(frame, NewTokenFrame):
                self.address_token = frame.token
            elif isinstance(frame, HandshakeDoneFrame):
                self.handshake_confirmed = True
            elif isinstance(frame, CryptoFrame):
                try:
                    ticket = tls.NewSessionTicket.parse(frame.data)
                except tls.TlsParseError:
                    continue
                self.session_ticket = ticket.ticket
            elif isinstance(frame, StreamFrame):
                try:
                    self.http_responses.append(h3.H3Response.parse(frame.data))
                except h3.H3ParseError:
                    continue
        if self.session_cache is not None and (self.address_token or self.session_ticket):
            self.session_cache.store(self.session_state())

    def request_datagram(self, path: str = "/") -> bytes:
        """An HTTP/3 GET over 1-RTT (requires a completed handshake)."""
        if self.state != "connected":
            raise ConnectionError_("cannot send a request before the handshake")
        request = h3.H3Request(authority=self.server_name, path=path)
        packet = protect_short_packet(
            dcid=self.dcid,
            packet_number=self._app_pn,
            frames=[StreamFrame(0, 0, request.serialize(), fin=True)],
            keys=self._client_1rtt,
        )
        self._app_pn += 1
        return packet

    def session_state(self) -> ResumptionState:
        """Resumption material for the next connection to this server."""
        return ResumptionState(
            server_name=self.server_name,
            version=self.version,
            address_token=self.address_token,
            session_ticket=self.session_ticket,
        )

    def _handle_version_negotiation(self, view: VersionNegotiationPacket) -> list:
        if self.state == "connected":
            return []
        self.round_trips += 1
        for candidate in self.supported_versions:
            if candidate.value in view.supported_versions:
                self.version = candidate
                self._refresh_keys()
                return [Datagram(0.0, self.initial_datagram())]
        self.state = "failed"
        return []

    def _handle_retry(self, view: RetryPacket) -> list:
        if self.retries_seen:  # only one retry per attempt (RFC 9000 §17.2.5)
            return []
        if not verify_retry_packet(view, self.odcid):
            self.state = "failed"
            return []
        self.retries_seen += 1
        self.round_trips += 1
        self.token = view.token
        self.dcid = view.scid
        self._refresh_keys()
        return [Datagram(0.0, self.initial_datagram())]

    def _handle_server_initial(self, data: bytes, view: LongHeader) -> None:
        _pn, frames = unprotect_initial(data, view, self._server_initial)
        hello_bytes = crypto_payload(frames)
        if hello_bytes:
            tls.ServerHello.parse(hello_bytes)  # raises if malformed
        if self.server_scid and view.scid != self.server_scid:
            # the server restarted our handshake (e.g. our flight was
            # retransmitted after loss): discard the stale partial flight
            self._hs_chunks = []
        self.server_scid = view.scid
        self.dcid = view.scid

    def _handle_server_handshake(self, data: bytes, view: LongHeader) -> bool:
        _pn, frames = unprotect_initial(data, view, self._server_hs)
        if not hasattr(self, "_hs_chunks"):
            self._hs_chunks: list[tuple[int, bytes]] = []
        for frame in frames:
            if isinstance(frame, CryptoFrame):
                self._hs_chunks.append((frame.offset, frame.data))
        stream = bytearray()
        for offset, chunk in sorted(self._hs_chunks):
            if offset > len(stream):
                break  # gap: wait for retransmission
            stream[offset : offset + len(chunk)] = chunk
        # Finished (type 20) terminates the server flight.
        return tls.FINISHED in _message_types(bytes(stream))

    def _finish_datagram(self) -> bytes:
        """Client Handshake packet completing the handshake (second RT)."""
        header = LongHeader(
            packet_type=PacketType.HANDSHAKE,
            version=self.version.value,
            dcid=self.dcid,
            scid=self.scid,
        )
        packet = PlainPacket(
            header=header,
            packet_number=self._handshake_pn,
            frames=[
                AckFrame(0),
                CryptoFrame(0, b"\x14\x00\x00\x20" + self.rng.randbytes(32)),
            ],
        )
        self._handshake_pn += 1
        self.state = "connected"
        self.round_trips += 1
        return build_datagram([(packet, self._client_hs)])

    def result(self) -> HandshakeResult:
        return HandshakeResult(
            completed=self.state == "connected",
            version=self.version,
            scid=self.scid,
            dcid=self.dcid,
            retries_seen=self.retries_seen,
            round_trips=self.round_trips,
            used_0rtt=self.used_0rtt,
            failure=None if self.state != "failed" else "handshake failed",
        )


class ServerConnection:
    """Server side of the handshake, incl. RETRY and version negotiation.

    One instance serves one listening endpoint; per-connection state is
    kept in :attr:`connections` keyed by the client's original DCID —
    this is exactly the state a flood inflates.
    """

    def __init__(
        self,
        rng: SeededRng,
        supported_versions: tuple[QuicVersion, ...] = (QUIC_V1,),
        retry_enabled: bool = False,
        cert_chain_len: int = tls.DEFAULT_CERT_CHAIN_LEN,
        keepalive_pings: int = 0,
        cid_len: int = DEFAULT_CID_LEN,
        issue_session_state: bool = True,
        pages: Optional[dict] = None,
    ) -> None:
        self.rng = rng
        self.supported_versions = supported_versions
        self.retry_enabled = retry_enabled
        self.cert_chain_len = cert_chain_len
        self.keepalive_pings = keepalive_pings
        self.cid_len = cid_len
        self.issue_session_state = issue_session_state
        self.token_minter = RetryTokenMinter(secret=rng.randbytes(32))
        #: long-lived address-validation tokens issued via NEW_TOKEN
        #: (RFC 9000 §8.1.3): bound to the client IP, not a connection.
        self.address_token_minter = RetryTokenMinter(
            secret=rng.randbytes(32), lifetime=86400.0
        )
        #: session tickets for PSK resumption / 0-RTT.
        self.ticket_minter = RetryTokenMinter(
            secret=rng.randbytes(32), lifetime=86400.0
        )
        self.connections: dict[bytes, dict] = {}
        self._early_keys: dict[bytes, tuple] = {}
        self.pages = pages if pages is not None else {"/": b"<html>hello h3</html>"}
        self.stats = {
            "initials": 0,
            "retries_sent": 0,
            "vn_sent": 0,
            "handshakes": 0,
            "tokens_issued": 0,
            "zero_rtt_accepted": 0,
            "requests_served": 0,
        }

    def handle_datagram(
        self, data: bytes, client_ip: int, client_port: int, now: float = 0.0
    ) -> list:
        """Process one client datagram, returning response datagrams."""
        out: list[Datagram] = []
        for view in split_datagram(data):
            if isinstance(view, ShortHeader):
                out.extend(self._handle_app_data(data[view.start :]))
                continue
            if not isinstance(view, LongHeader):
                continue
            if view.packet_type is PacketType.INITIAL:
                out.extend(
                    self._handle_initial(data, view, client_ip, client_port, now)
                )
            elif view.packet_type is PacketType.ZERO_RTT:
                self._handle_zero_rtt(data, view)
            elif view.packet_type is PacketType.HANDSHAKE:
                out.extend(
                    self._handle_client_handshake(view, client_ip, client_port, now)
                )
        return out

    # -- initial processing --------------------------------------------------

    def _handle_initial(
        self,
        data: bytes,
        view: LongHeader,
        client_ip: int,
        client_port: int,
        now: float,
    ) -> list:
        self.stats["initials"] += 1
        version = version_by_value(view.version)
        if version is None or version not in self.supported_versions:
            self.stats["vn_sent"] += 1
            vn = VersionNegotiationPacket(
                dcid=view.scid,
                scid=view.dcid,
                supported_versions=tuple(v.value for v in self.supported_versions),
            )
            return [Datagram(0.0, vn.serialize())]

        odcid = view.dcid
        if self.retry_enabled:
            if not view.token:
                return [self._send_retry(view, client_ip, client_port, now)]
            try:
                odcid = self.token_minter.validate(
                    view.token, client_ip, client_port, now
                )
            except RetryTokenError:
                try:
                    # NEW_TOKEN address tokens are bound to the IP only
                    # and carry no original DCID.
                    self.address_token_minter.validate(view.token, client_ip, 0, now)
                    odcid = view.dcid
                except RetryTokenError:
                    return []  # invalid token: drop silently

        try:
            _client_keys, _ = derive_initial_keys(version, view.dcid)
            _pn, frames = unprotect_initial(data, view, _client_keys)
        except (crypto.DecryptError, ValueError):
            return []
        hello_bytes = crypto_payload(frames)
        if not hello_bytes:
            return []
        try:
            hello = tls.ClientHello.parse(hello_bytes)
        except tls.TlsParseError:
            return []
        if hello.psk_identity:
            try:
                self.ticket_minter.validate(hello.psk_identity, 0, 0, now)
            except RetryTokenError:
                pass  # stale ticket: fall back to a full handshake
            else:
                self._early_keys[bytes(view.dcid)] = (
                    early_data_keys(hello.psk_identity),
                    bytes(odcid),
                )
        return self._full_flight(view, version, odcid, len(data), hello)

    def _handle_zero_rtt(self, data: bytes, view: LongHeader) -> None:
        """Decrypt accepted 0-RTT early data (keys set while handling
        the Initial coalesced in front of it)."""
        entry = self._early_keys.get(bytes(view.dcid))
        if entry is None:
            return
        keys, odcid = entry
        try:
            _pn, frames = unprotect_initial(data, view, keys)
        except (crypto.DecryptError, ValueError):
            return
        early = b"".join(
            f.data for f in frames if isinstance(f, StreamFrame)
        )
        state = self.connections.get(odcid)
        if state is not None:
            state["early_data"] = early
        self.stats["zero_rtt_accepted"] += 1

    def _send_retry(
        self, view: LongHeader, client_ip: int, client_port: int, now: float
    ) -> Datagram:
        self.stats["retries_sent"] += 1
        new_scid = self.rng.randbytes(self.cid_len)
        token = self.token_minter.mint(client_ip, client_port, view.dcid, now)
        packet = build_retry_packet(
            version=view.version,
            dcid=view.scid,
            scid=new_scid,
            odcid=view.dcid,
            token=token,
        )
        return Datagram(0.0, packet)

    def _full_flight(
        self,
        view: LongHeader,
        version: QuicVersion,
        odcid: bytes,
        received_bytes: int,
        hello: tls.ClientHello,
    ) -> list:
        """Build the server's first flight (the backscatter signature).

        Datagram 1: Initial(ACK, ServerHello) coalesced with a Handshake
        packet carrying the start of the encrypted flight.  Datagram 2:
        the remaining Handshake messages.  Then ``keepalive_pings`` PING
        datagrams after a short delay.
        """
        self.stats["handshakes"] += 1
        scid = self.rng.randbytes(self.cid_len)
        self.connections[bytes(odcid)] = {
            "scid": scid,
            "version": version,
            "client_scid": view.scid,
            "established": False,
        }
        _client_init, server_init = derive_initial_keys(version, view.dcid)
        server_hs = derive_handshake_secret(version, odcid, "server hs")

        server_hello = tls.ServerHello(
            random=self.rng.randbytes(32), session_id=hello.session_id
        )
        flight = tls.build_server_flight(self.rng, self.cert_chain_len)
        hs_stream = flight.handshake_payload
        # First handshake packet carries as much as fits next to the
        # Initial in a full-size datagram; remainder goes in datagram 2.
        first_chunk_len = min(len(hs_stream), 900)

        initial_packet = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.INITIAL,
                version=version.value,
                dcid=b"",  # client did not require a DCID: telescope sees len 0
                scid=scid,
            ),
            packet_number=0,
            frames=[AckFrame(0), CryptoFrame(0, server_hello.serialize())],
        )
        hs_packet_1 = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.HANDSHAKE,
                version=version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=0,
            frames=[CryptoFrame(0, hs_stream[:first_chunk_len])],
        )
        hs_packet_2 = PlainPacket(
            header=LongHeader(
                packet_type=PacketType.HANDSHAKE,
                version=version.value,
                dcid=b"",
                scid=scid,
            ),
            packet_number=1,
            frames=[CryptoFrame(first_chunk_len, hs_stream[first_chunk_len:])],
        )
        datagram_1 = build_datagram(
            [(initial_packet, server_init), (hs_packet_1, server_hs)]
        )
        datagram_2 = build_datagram([(hs_packet_2, server_hs)])
        out = [Datagram(0.0, datagram_1), Datagram(0.0, datagram_2)]

        ping_pn = 2
        for i in range(self.keepalive_pings):
            ping = PlainPacket(
                header=LongHeader(
                    packet_type=PacketType.HANDSHAKE,
                    version=version.value,
                    dcid=b"",
                    scid=scid,
                ),
                packet_number=ping_pn + i,
                frames=[PingFrame()],
            )
            out.append(
                Datagram(KEEPALIVE_DELAY * (i + 1), build_datagram([(ping, server_hs)]))
            )

        # Anti-amplification: trim the flight to 3x received bytes.
        budget = AMPLIFICATION_LIMIT * received_bytes
        trimmed: list[Datagram] = []
        used = 0
        for datagram in out:
            if used + len(datagram.data) > budget:
                break
            used += len(datagram.data)
            trimmed.append(datagram)
        return trimmed

    def _handle_app_data(self, packet: bytes) -> list:
        """1-RTT client data: HTTP/3 requests on established connections."""
        if len(packet) < 1 + self.cid_len:
            return []
        wire_dcid = packet[1 : 1 + self.cid_len]
        for odcid, state in self.connections.items():
            if state["scid"] != wire_dcid or not state["established"]:
                continue
            client_keys = derive_handshake_secret(
                state["version"], odcid, "client 1rtt"
            )
            try:
                _pn, frames = unprotect_short_packet(
                    packet, self.cid_len, client_keys
                )
            except (crypto.DecryptError, HeaderParseError, ValueError):
                return []
            out = []
            for frame in frames:
                if not isinstance(frame, StreamFrame):
                    continue
                try:
                    request = h3.H3Request.parse(frame.data)
                except h3.H3ParseError:
                    continue
                body = self.pages.get(request.path)
                response = (
                    h3.H3Response(status=200, body=body)
                    if body is not None
                    else h3.H3Response(status=404)
                )
                self.stats["requests_served"] += 1
                server_keys = derive_handshake_secret(
                    state["version"], odcid, "server 1rtt"
                )
                reply = protect_short_packet(
                    dcid=state["client_scid"],
                    packet_number=1 + self.stats["requests_served"],
                    frames=[
                        StreamFrame(0, 0, response.serialize(), fin=True)
                    ],
                    keys=server_keys,
                )
                out.append(Datagram(0.0, reply))
            return out
        return []

    def _handle_client_handshake(
        self, view: LongHeader, client_ip: int, client_port: int, now: float
    ) -> list:
        """Complete the handshake; issue NEW_TOKEN + session ticket.

        The post-handshake datagram is a 1-RTT short-header packet —
        the server's first use of application keys — carrying
        HANDSHAKE_DONE, a NEW_TOKEN address token and a TLS
        NewSessionTicket in a CRYPTO frame.
        """
        for odcid, state in self.connections.items():
            if state["scid"] == view.dcid or state["client_scid"] == view.scid:
                already = state["established"]
                state["established"] = True
                if already or not self.issue_session_state:
                    return []
                token = self.address_token_minter.mint(client_ip, 0, b"", now)
                ticket = self.ticket_minter.mint(0, 0, b"", now)
                self.stats["tokens_issued"] += 1
                nst = tls.NewSessionTicket(ticket=ticket)
                keys = derive_handshake_secret(
                    state["version"], odcid, "server 1rtt"
                )
                packet = protect_short_packet(
                    dcid=state["client_scid"],
                    packet_number=0,
                    frames=[
                        HandshakeDoneFrame(),
                        NewTokenFrame(token),
                        CryptoFrame(0, nst.serialize()),
                    ],
                    keys=keys,
                )
                return [Datagram(0.0, packet)]
        return []


def _message_types(stream: bytes) -> list:
    """Walk TLS handshake messages in a CRYPTO stream, returning types."""
    types = []
    offset = 0
    while offset + 4 <= len(stream):
        msg_type = stream[offset]
        length = int.from_bytes(stream[offset + 1 : offset + 4], "big")
        types.append(msg_type)
        offset += 4 + length
    return types
