"""QUIC version registry.

The paper observes several concurrently deployed QUIC variants in
backscatter: ``draft-29`` (78% of Google attack traffic),
``mvfst-draft-27`` (95% of Facebook attack traffic), plus IETF QUIC v1
and legacy Google QUIC on the scanning side.  Each version carries its
own *initial salt*, which keys Initial packet protection; getting the
salt registry right is what lets the dissector decrypt client Initials
for any version it knows, exactly like Wireshark.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuicVersion:
    """One deployable QUIC version."""

    value: int
    name: str
    initial_salt: bytes
    #: True for versions negotiated by IETF endpoints (long header layout
    #: per RFC 8999); legacy gQUIC uses its own layout and is only
    #: identified, never dissected in depth.
    ietf_layout: bool = True

    def __str__(self) -> str:
        return f"{self.name}(0x{self.value:08x})"


# Initial salts from RFC 9001 and the corresponding drafts.
QUIC_V1 = QuicVersion(
    0x00000001,
    "v1",
    bytes.fromhex("38762cf7f55934b34d179ae6a4c80cadccbb7f0a"),
)
DRAFT_29 = QuicVersion(
    0xFF00001D,
    "draft-29",
    bytes.fromhex("afbfec289993d24c9e9786f19c6111e04390a899"),
)
DRAFT_27 = QuicVersion(
    0xFF00001B,
    "draft-27",
    bytes.fromhex("c3eef712c72ebb5a11a7d2432bb46365bef9f502"),
)
#: Facebook's mvfst deployments advertise vendor version numbers; the
#: mvfst-draft-27 variant the paper reports maps onto draft-27 wire
#: format with a facebook version value.
MVFST_27 = QuicVersion(
    0xFACEB002,
    "mvfst-draft-27",
    bytes.fromhex("c3eef712c72ebb5a11a7d2432bb46365bef9f502"),
)
MVFST_EXP = QuicVersion(
    0xFACEB00E,
    "mvfst-exp",
    bytes.fromhex("c3eef712c72ebb5a11a7d2432bb46365bef9f502"),
)
#: Legacy Google QUIC ("Q043"/"Q046" on the wire); still seen in scans.
GQUIC_Q043 = QuicVersion(0x51303433, "gQUIC-Q043", b"\x00" * 20, ietf_layout=False)
GQUIC_Q046 = QuicVersion(0x51303436, "gQUIC-Q046", b"\x00" * 20, ietf_layout=False)

#: The version value of a Version Negotiation packet.
VERSION_NEGOTIATION = 0x00000000

KNOWN_VERSIONS: tuple[QuicVersion, ...] = (
    QUIC_V1,
    DRAFT_29,
    DRAFT_27,
    MVFST_27,
    MVFST_EXP,
    GQUIC_Q043,
    GQUIC_Q046,
)

_BY_VALUE = {v.value: v for v in KNOWN_VERSIONS}


def version_by_value(value: int) -> QuicVersion | None:
    """Look up a known version; ``None`` for unknown or greased values."""
    return _BY_VALUE.get(value)


def is_greased(value: int) -> bool:
    """RFC 9000 §15: versions of the form 0x?a?a?a?a are reserved to
    exercise version negotiation ("greasing")."""
    return (value & 0x0F0F0F0F) == 0x0A0A0A0A


def is_known(value: int) -> bool:
    return value in _BY_VALUE
