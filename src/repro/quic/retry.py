"""Retry packets: address-validation tokens and integrity tags.

RETRY is QUIC's built-in defense against the handshake resource
exhaustion the paper studies (Section 2): before doing any expensive
work, the server sends a Retry carrying an opaque token; only a client
at the claimed address can echo it back, so spoofed floods die at one
cheap HMAC per packet.  The paper finds RETRY effective in the lab
(Table 1) yet absent in the wild.

Token format (self-describing, HMAC-authenticated):

    issued_at (8 bytes, big-endian centiseconds) ||
    odcid_len (1) || odcid ||
    HMAC-SHA-256(secret, issued_at || client_ip || client_port || odcid)[:16]

The integrity tag over the Retry pseudo-packet substitutes HMAC for the
RFC 9001 §5.8 AES-128-GCM construction (same 16-byte expansion; see
DESIGN.md on the AEAD substitution).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.quic.header import RetryPacket

#: RFC 9001 §5.8 fixed key/nonce (kept for fidelity; they key the HMAC).
_RETRY_KEY_V1 = bytes.fromhex("be0c690b9f66575a1d766b54e368c84e")
_RETRY_NONCE_V1 = bytes.fromhex("461599d35d632bf2239825bb")

TOKEN_TAG_LEN = 16
TOKEN_TIMESTAMP_LEN = 8


class RetryTokenError(ValueError):
    """Raised when a Retry token fails validation."""


def retry_integrity_tag(version: int, odcid: bytes, retry_without_tag: bytes) -> bytes:
    """Compute the 16-byte Retry integrity tag.

    The pseudo-packet is ``odcid_len || odcid || retry_packet`` per
    RFC 9001 §5.8; the tag binds the Retry to the client's original
    DCID so an off-path attacker cannot forge one.
    """
    pseudo = bytes([len(odcid)]) + odcid + retry_without_tag
    mac = hmac.new(
        _RETRY_KEY_V1 + version.to_bytes(4, "big"),
        _RETRY_NONCE_V1 + pseudo,
        hashlib.sha256,
    )
    return mac.digest()[:TOKEN_TAG_LEN]


def build_retry_packet(
    version: int, dcid: bytes, scid: bytes, odcid: bytes, token: bytes
) -> bytes:
    """Serialize a full Retry packet with a valid integrity tag."""
    without_tag = RetryPacket(
        version=version, dcid=dcid, scid=scid, token=token, integrity_tag=b"\x00" * 16
    ).serialize()[:-16]
    tag = retry_integrity_tag(version, odcid, without_tag)
    return without_tag + tag


def verify_retry_packet(packet: RetryPacket, odcid: bytes) -> bool:
    """Check the integrity tag of a parsed Retry against the original DCID."""
    without_tag = RetryPacket(
        version=packet.version,
        dcid=packet.dcid,
        scid=packet.scid,
        token=packet.token,
        integrity_tag=b"\x00" * 16,
    ).serialize()[:-16]
    expected = retry_integrity_tag(packet.version, odcid, without_tag)
    return hmac.compare_digest(expected, packet.integrity_tag)


@dataclass
class RetryTokenMinter:
    """Mints and validates address-validation tokens.

    ``lifetime`` bounds replay: tokens older than it are rejected, which
    is why a flood cannot stockpile tokens.
    """

    secret: bytes
    lifetime: float = 30.0

    def _mac(self, issued_raw: bytes, client_ip: int, client_port: int, odcid: bytes) -> bytes:
        mac = hmac.new(self.secret, digestmod=hashlib.sha256)
        mac.update(issued_raw)
        mac.update(client_ip.to_bytes(4, "big"))
        mac.update(client_port.to_bytes(2, "big"))
        mac.update(odcid)
        return mac.digest()[:TOKEN_TAG_LEN]

    def mint(self, client_ip: int, client_port: int, odcid: bytes, now: float) -> bytes:
        """Create a token for ``client_ip:client_port`` covering ``odcid``."""
        if len(odcid) > 255:
            raise RetryTokenError("odcid too long for token encoding")
        issued_raw = int(now * 100).to_bytes(TOKEN_TIMESTAMP_LEN, "big")
        tag = self._mac(issued_raw, client_ip, client_port, odcid)
        return issued_raw + bytes([len(odcid)]) + odcid + tag

    def validate(self, token: bytes, client_ip: int, client_port: int, now: float) -> bytes:
        """Return the original DCID bound into a valid token.

        Raises :class:`RetryTokenError` on malformed, forged, or expired
        tokens — the server treats all three the same way (drop).
        """
        if len(token) < TOKEN_TIMESTAMP_LEN + 1 + TOKEN_TAG_LEN:
            raise RetryTokenError("token too short")
        issued_raw = token[:TOKEN_TIMESTAMP_LEN]
        odcid_len = token[TOKEN_TIMESTAMP_LEN]
        body_end = TOKEN_TIMESTAMP_LEN + 1 + odcid_len
        if len(token) != body_end + TOKEN_TAG_LEN:
            raise RetryTokenError("token length mismatch")
        odcid = token[TOKEN_TIMESTAMP_LEN + 1 : body_end]
        tag = token[body_end:]
        expected = self._mac(issued_raw, client_ip, client_port, odcid)
        if not hmac.compare_digest(tag, expected):
            raise RetryTokenError("token MAC mismatch")
        issued = int.from_bytes(issued_raw, "big") / 100.0
        if now - issued > self.lifetime:
            raise RetryTokenError("token expired")
        if issued > now + 1.0:
            raise RetryTokenError("token from the future")
        return odcid
