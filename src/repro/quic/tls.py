"""Minimal TLS 1.3 handshake messages (RFC 8446) carried in QUIC CRYPTO frames.

QUIC merges the TCP/TLS/HTTP handshakes into one exchange: the client's
Initial carries a ClientHello, the server's Initial a ServerHello, and
the server's Handshake packets carry EncryptedExtensions, Certificate,
CertificateVerify and Finished.  The reproduction needs these messages
for three reasons:

1. **Sizes.**  The amplification behaviour the paper discusses (server
   sends ~3x and must pad client Initials to 1200 bytes; certificates
   dominate the server flight) falls out of realistic message sizes.
2. **Dissection.**  The pipeline detects whether an observed Initial
   contains an *unencrypted ClientHello* — the telltale that separates
   scan requests from backscatter (Section 6 of the paper).
3. **Handshake state.**  The server simulator charges crypto cost per
   ClientHello processed.

Only the fields the reproduction touches are modeled; everything else
is structurally valid filler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.rng import SeededRng

# Handshake message types (RFC 8446 §4)
CLIENT_HELLO = 1
SERVER_HELLO = 2
ENCRYPTED_EXTENSIONS = 8
CERTIFICATE = 11
CERTIFICATE_VERIFY = 15
FINISHED = 20
NEW_SESSION_TICKET = 4

# Extension types
EXT_SERVER_NAME = 0
EXT_SUPPORTED_GROUPS = 10
EXT_ALPN = 16
EXT_PRE_SHARED_KEY = 41
EXT_SUPPORTED_VERSIONS = 43
EXT_KEY_SHARE = 51
EXT_QUIC_TRANSPORT_PARAMETERS = 57

TLS_AES_128_GCM_SHA256 = 0x1301
TLS_1_3 = 0x0304
X25519 = 0x001D

#: A typical compressed certificate chain is ~1.5 kB; uncompressed ~3 kB
#: (McManus 2020, cited by the paper).  Defaults produce server flights
#: whose Initial+Handshake split matches the two-datagram pattern.
DEFAULT_CERT_CHAIN_LEN = 1500


class TlsParseError(ValueError):
    """Raised when a TLS handshake message cannot be parsed."""


def _vector(data: bytes, length_bytes: int) -> bytes:
    return len(data).to_bytes(length_bytes, "big") + data


def _extension(ext_type: int, body: bytes) -> bytes:
    return ext_type.to_bytes(2, "big") + _vector(body, 2)


def _handshake_message(msg_type: int, body: bytes) -> bytes:
    return bytes([msg_type]) + len(body).to_bytes(3, "big") + body


@dataclass
class ClientHello:
    """A parsed/parseable TLS 1.3 ClientHello."""

    random: bytes
    session_id: bytes = b""
    cipher_suites: tuple[int, ...] = (TLS_AES_128_GCM_SHA256,)
    server_name: str | None = None
    alpn: tuple[str, ...] = ("h3",)
    key_share_group: int = X25519
    key_share: bytes = b"\x00" * 32
    transport_parameters: bytes = b""
    #: session-resumption PSK identity (the NewSessionTicket blob).
    psk_identity: Optional[bytes] = None

    def serialize(self) -> bytes:
        suites = b"".join(s.to_bytes(2, "big") for s in self.cipher_suites)
        extensions = []
        if self.server_name is not None:
            name = self.server_name.encode("ascii")
            sni = _vector(b"\x00" + _vector(name, 2), 2)
            extensions.append(_extension(EXT_SERVER_NAME, sni))
        extensions.append(
            _extension(EXT_SUPPORTED_GROUPS, _vector(X25519.to_bytes(2, "big"), 2))
        )
        if self.alpn:
            protos = b"".join(_vector(p.encode("ascii"), 1) for p in self.alpn)
            extensions.append(_extension(EXT_ALPN, _vector(protos, 2)))
        extensions.append(
            _extension(EXT_SUPPORTED_VERSIONS, _vector(TLS_1_3.to_bytes(2, "big"), 1))
        )
        share = self.key_share_group.to_bytes(2, "big") + _vector(self.key_share, 2)
        extensions.append(_extension(EXT_KEY_SHARE, _vector(share, 2)))
        extensions.append(
            _extension(EXT_QUIC_TRANSPORT_PARAMETERS, self.transport_parameters)
        )
        if self.psk_identity is not None:
            # simplified pre_shared_key offer: one identity, zero-length
            # binder (the reproduction does not model binder HMACs)
            psk = _vector(_vector(self.psk_identity, 2) + (0).to_bytes(4, "big"), 2)
            extensions.append(_extension(EXT_PRE_SHARED_KEY, psk))
        body = (0x0303).to_bytes(2, "big")  # legacy_version
        body += self.random
        body += _vector(self.session_id, 1)
        body += _vector(suites, 2)
        body += _vector(b"\x00", 1)  # legacy compression: null only
        body += _vector(b"".join(extensions), 2)
        return _handshake_message(CLIENT_HELLO, body)

    @classmethod
    def parse(cls, data: bytes) -> "ClientHello":
        """Parse a ClientHello handshake message (header included)."""
        msg_type, body = _parse_handshake_header(data)
        if msg_type != CLIENT_HELLO:
            raise TlsParseError(f"not a ClientHello (type={msg_type})")
        if len(body) < 2 + 32 + 1:
            raise TlsParseError("ClientHello truncated")
        offset = 2  # legacy_version
        random = body[offset : offset + 32]
        offset += 32
        sid_len = body[offset]
        offset += 1
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        if offset + 2 > len(body):
            raise TlsParseError("ClientHello cipher suites truncated")
        suites_len = int.from_bytes(body[offset : offset + 2], "big")
        offset += 2
        suites_raw = body[offset : offset + suites_len]
        if len(suites_raw) < suites_len:
            raise TlsParseError("ClientHello cipher suites truncated")
        suites = tuple(
            int.from_bytes(suites_raw[i : i + 2], "big")
            for i in range(0, suites_len - 1, 2)
        )
        offset += suites_len
        comp_len = body[offset]
        offset += 1 + comp_len
        extensions = _parse_extensions(body, offset)
        server_name = None
        alpn: tuple[str, ...] = ()
        tp = b""
        psk_identity = None
        for ext_type, ext_body in extensions:
            if ext_type == EXT_SERVER_NAME and len(ext_body) >= 5:
                name_len = int.from_bytes(ext_body[3:5], "big")
                server_name = ext_body[5 : 5 + name_len].decode("ascii", "replace")
            elif ext_type == EXT_ALPN and len(ext_body) >= 2:
                protos = []
                pos = 2
                while pos < len(ext_body):
                    plen = ext_body[pos]
                    protos.append(
                        ext_body[pos + 1 : pos + 1 + plen].decode("ascii", "replace")
                    )
                    pos += 1 + plen
                alpn = tuple(protos)
            elif ext_type == EXT_QUIC_TRANSPORT_PARAMETERS:
                tp = ext_body
            elif ext_type == EXT_PRE_SHARED_KEY and len(ext_body) >= 4:
                identity_len = int.from_bytes(ext_body[2:4], "big")
                psk_identity = ext_body[4 : 4 + identity_len]
        return cls(
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            server_name=server_name,
            alpn=alpn,
            transport_parameters=tp,
            psk_identity=psk_identity,
        )


@dataclass
class ServerHello:
    """A TLS 1.3 ServerHello."""

    random: bytes
    session_id: bytes = b""
    cipher_suite: int = TLS_AES_128_GCM_SHA256
    key_share_group: int = X25519
    key_share: bytes = b"\x00" * 32

    def serialize(self) -> bytes:
        extensions = [
            _extension(EXT_SUPPORTED_VERSIONS, TLS_1_3.to_bytes(2, "big")),
            _extension(
                EXT_KEY_SHARE,
                self.key_share_group.to_bytes(2, "big") + _vector(self.key_share, 2),
            ),
        ]
        body = (0x0303).to_bytes(2, "big")
        body += self.random
        body += _vector(self.session_id, 1)
        body += self.cipher_suite.to_bytes(2, "big")
        body += b"\x00"  # legacy compression
        body += _vector(b"".join(extensions), 2)
        return _handshake_message(SERVER_HELLO, body)

    @classmethod
    def parse(cls, data: bytes) -> "ServerHello":
        msg_type, body = _parse_handshake_header(data)
        if msg_type != SERVER_HELLO:
            raise TlsParseError(f"not a ServerHello (type={msg_type})")
        if len(body) < 2 + 32 + 1:
            raise TlsParseError("ServerHello truncated")
        offset = 2
        random = body[offset : offset + 32]
        offset += 32
        sid_len = body[offset]
        offset += 1
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        suite = int.from_bytes(body[offset : offset + 2], "big")
        return cls(random=random, session_id=session_id, cipher_suite=suite)


@dataclass
class ServerFlight:
    """The encrypted remainder of the server's first flight."""

    encrypted_extensions: bytes
    certificate: bytes
    certificate_verify: bytes
    finished: bytes

    @property
    def handshake_payload(self) -> bytes:
        """Concatenated messages for the Handshake-level CRYPTO stream."""
        return (
            self.encrypted_extensions
            + self.certificate
            + self.certificate_verify
            + self.finished
        )


@dataclass
class NewSessionTicket:
    """A TLS 1.3 NewSessionTicket (RFC 8446 §4.6.1), post-handshake.

    Servers issue these over 1-RTT CRYPTO frames; the ticket blob is the
    PSK identity a resuming client offers in its next ClientHello, which
    is what enables 0-RTT (and lets RETRY's extra round-trip be skipped
    for returning clients — the Section 6 argument)."""

    ticket: bytes
    lifetime: int = 86400
    age_add: int = 0
    nonce: bytes = b"\x00"

    def serialize(self) -> bytes:
        body = self.lifetime.to_bytes(4, "big")
        body += self.age_add.to_bytes(4, "big")
        body += _vector(self.nonce, 1)
        body += _vector(self.ticket, 2)
        body += _vector(b"", 2)  # extensions
        return _handshake_message(NEW_SESSION_TICKET, body)

    @classmethod
    def parse(cls, data: bytes) -> "NewSessionTicket":
        msg_type, body = _parse_handshake_header(data)
        if msg_type != NEW_SESSION_TICKET:
            raise TlsParseError(f"not a NewSessionTicket (type={msg_type})")
        if len(body) < 9:
            raise TlsParseError("NewSessionTicket truncated")
        lifetime = int.from_bytes(body[0:4], "big")
        age_add = int.from_bytes(body[4:8], "big")
        nonce_len = body[8]
        offset = 9 + nonce_len
        nonce = body[9:offset]
        if offset + 2 > len(body):
            raise TlsParseError("NewSessionTicket ticket truncated")
        ticket_len = int.from_bytes(body[offset : offset + 2], "big")
        offset += 2
        ticket = body[offset : offset + ticket_len]
        if len(ticket) < ticket_len:
            raise TlsParseError("NewSessionTicket ticket truncated")
        return cls(ticket=ticket, lifetime=lifetime, age_add=age_add, nonce=nonce)


def build_server_flight(
    rng: SeededRng, cert_chain_len: int = DEFAULT_CERT_CHAIN_LEN
) -> ServerFlight:
    """Build EE/CERT/CV/FIN messages with realistic sizes."""
    ee = _handshake_message(ENCRYPTED_EXTENSIONS, _vector(b"", 2))
    cert_body = b"\x00" + _vector(_vector(rng.randbytes(cert_chain_len), 3) + b"\x00\x00", 3)
    cert = _handshake_message(CERTIFICATE, cert_body)
    cv = _handshake_message(
        CERTIFICATE_VERIFY, (0x0804).to_bytes(2, "big") + _vector(rng.randbytes(256), 2)
    )
    fin = _handshake_message(FINISHED, rng.randbytes(32))
    return ServerFlight(ee, cert, cv, fin)


def looks_like_client_hello(data: bytes) -> bool:
    """Cheap structural check used by the dissector on CRYPTO payloads."""
    try:
        ClientHello.parse(data)
    except (TlsParseError, IndexError):
        return False
    return True


# --------------------------------------------------------------------------
# shared parsing helpers
# --------------------------------------------------------------------------


def _parse_handshake_header(data: bytes) -> tuple[int, bytes]:
    if len(data) < 4:
        raise TlsParseError("handshake header truncated")
    msg_type = data[0]
    length = int.from_bytes(data[1:4], "big")
    if len(data) < 4 + length:
        raise TlsParseError("handshake body truncated")
    return msg_type, data[4 : 4 + length]


def _parse_extensions(body: bytes, offset: int) -> list[tuple[int, bytes]]:
    if offset + 2 > len(body):
        raise TlsParseError("extensions length truncated")
    total = int.from_bytes(body[offset : offset + 2], "big")
    offset += 2
    end = offset + total
    if end > len(body):
        raise TlsParseError("extensions truncated")
    extensions = []
    while offset + 4 <= end:
        ext_type = int.from_bytes(body[offset : offset + 2], "big")
        ext_len = int.from_bytes(body[offset + 2 : offset + 4], "big")
        offset += 4
        if offset + ext_len > end:
            raise TlsParseError("extension body truncated")
        extensions.append((ext_type, body[offset : offset + ext_len]))
        offset += ext_len
    return extensions
