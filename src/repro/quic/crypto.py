"""QUIC packet-protection cryptography.

Two layers live here:

1. **HKDF (real).**  RFC 5869 extract/expand and the TLS 1.3
   ``HKDF-Expand-Label`` construction from RFC 8446 §7.1 are implemented
   faithfully on stdlib ``hmac``/``hashlib``.  Initial secrets are
   derived exactly as RFC 9001 §5.2 prescribes: from the per-version
   initial salt and the client's Destination Connection ID, split into
   ``client in`` / ``server in`` secrets and then key/IV/HP material.

2. **AEAD (documented substitution).**  RFC 9001 uses AES-128-GCM for
   Initial packets.  No AES implementation is available offline, so we
   substitute a deterministic stream cipher + MAC with *identical
   interface and ciphertext expansion*: keystream blocks are
   ``SHA-256(key || nonce || counter)`` and the 16-byte tag is
   ``HMAC-SHA-256(key, nonce || aad || ciphertext)[:16]``.  Header
   protection similarly derives its 5-byte mask from
   ``SHA-256(hp_key || sample)`` instead of AES-ECB.  Every property the
   telescope analysis relies on is preserved: payloads are
   indistinguishable from random to a passive observer without the keys,
   ciphertext is exactly 16 bytes longer than plaintext, tampering is
   detected, and anyone who knows the version salt and the wire DCID can
   decrypt a client Initial — which is precisely how Wireshark dissects
   Initials.  See DESIGN.md §2.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
from dataclasses import dataclass

from repro.util.caching import template_cache_enabled
from repro.quic.versions import QuicVersion

HASH_LEN = 32  # SHA-256
AEAD_TAG_LEN = 16
AEAD_KEY_LEN = 16
AEAD_IV_LEN = 12
HP_SAMPLE_LEN = 16


class DecryptError(ValueError):
    """Raised when AEAD authentication fails."""


# --------------------------------------------------------------------------
# HKDF (RFC 5869) and HKDF-Expand-Label (RFC 8446)
# --------------------------------------------------------------------------


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract with SHA-256."""
    return hmac.new(salt or b"\x00" * HASH_LEN, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand with SHA-256."""
    if length > 255 * HASH_LEN:
        raise ValueError("HKDF-Expand length too large")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    """TLS 1.3 HKDF-Expand-Label ("tls13 " prefix per RFC 8446 §7.1)."""
    full_label = b"tls13 " + label.encode("ascii")
    info = (
        length.to_bytes(2, "big")
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, info, length)


# --------------------------------------------------------------------------
# Initial secrets (RFC 9001 §5.2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PacketKeys:
    """Key material protecting one direction of one encryption level."""

    key: bytes
    iv: bytes
    hp: bytes


@functools.lru_cache(maxsize=8192)
def derive_initial_keys(version: QuicVersion, client_dcid: bytes) -> tuple[PacketKeys, PacketKeys]:
    """Derive ``(client_keys, server_keys)`` for the Initial level.

    Anyone observing a client Initial can recompute these — the inputs
    are the (public) version salt and the DCID on the wire.  This is
    what makes client Initials dissectable and is also why the Initial
    level offers no confidentiality against on-path observers.
    """
    initial_secret = hkdf_extract(version.initial_salt, client_dcid)
    client_secret = hkdf_expand_label(initial_secret, "client in", b"", HASH_LEN)
    server_secret = hkdf_expand_label(initial_secret, "server in", b"", HASH_LEN)
    return keys_from_secret(client_secret), keys_from_secret(server_secret)


def keys_from_secret(secret: bytes) -> PacketKeys:
    """Expand a traffic secret into AEAD key, IV and header-protection key."""
    return PacketKeys(
        key=hkdf_expand_label(secret, "quic key", b"", AEAD_KEY_LEN),
        iv=hkdf_expand_label(secret, "quic iv", b"", AEAD_IV_LEN),
        hp=hkdf_expand_label(secret, "quic hp", b"", AEAD_KEY_LEN),
    )


@functools.lru_cache(maxsize=8192)
def derive_handshake_secret(version: QuicVersion, client_dcid: bytes, label: str) -> PacketKeys:
    """Handshake-level keys for the simulation.

    Real QUIC derives these from the TLS key schedule after the key
    exchange; a telescope can never compute them.  The simulation only
    needs *some* deterministic per-connection key, so we hash the
    connection inputs.  The analysis code never calls this — it is used
    by endpoints to produce realistically opaque Handshake payloads.
    """
    seed = hkdf_extract(version.initial_salt + b"hs", client_dcid)
    return keys_from_secret(hkdf_expand_label(seed, label, b"", HASH_LEN))


# --------------------------------------------------------------------------
# AEAD substitution (see module docstring)
# --------------------------------------------------------------------------


def _compute_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    prefix = key + nonce
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(prefix + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:length])


_cached_keystream = functools.lru_cache(maxsize=8192)(_compute_keystream)

# Pull-style cache metrics: the memo keeps its own tallies (lru_cache's
# CacheInfo); a registry collector publishes them at export time so the
# seal/open hot path never touches the metrics layer.  Shared family
# with the datagram template caches (labelled per cache).
from repro import obs as _obs  # noqa: E402  (after the cache it observes)

_M_CACHE_HITS = _obs.counter(
    "repro_template_cache_hits_total",
    "wire-template / keystream cache hits, per cache",
    labels=("cache",),
)
_M_CACHE_MISSES = _obs.counter(
    "repro_template_cache_misses_total",
    "wire-template / keystream cache misses (fresh builds), per cache",
    labels=("cache",),
)
_M_CACHE_SIZE = _obs.gauge(
    "repro_template_cache_size",
    "entries currently held, per cache",
    labels=("cache",),
)


def _collect_keystream_metrics() -> None:
    info = _cached_keystream.cache_info()
    _M_CACHE_HITS.set_total(info.hits, cache="keystream")
    _M_CACHE_MISSES.set_total(info.misses, cache="keystream")
    _M_CACHE_SIZE.set(info.currsize, cache="keystream")


_obs.REGISTRY.add_collector(_collect_keystream_metrics)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Keystream for ``(key, nonce, length)``, memoized.

    The stream is a pure function of its arguments, and the generators
    seal near-identical payloads under repeating keys (template pools,
    per-victim handshake flights), so the same triple recurs thousands
    of times per flood.  ``REPRO_DISABLE_TEMPLATE_CACHE=1`` bypasses the
    memo for the equivalence suite.
    """
    if template_cache_enabled():
        return _cached_keystream(key, nonce, length)
    return _compute_keystream(key, nonce, length)


@functools.lru_cache(maxsize=1024)
def _hmac_base(key: bytes) -> "hmac.HMAC":
    """A keyed HMAC-SHA-256 object, processed up to (but not including)
    the message.  ``.copy()`` of the base skips re-hashing the key blocks
    on every seal/open; the digest is identical to a fresh ``hmac.new``.
    """
    return hmac.new(key, digestmod=hashlib.sha256)


def _hmac_tag(key: bytes, message: bytes) -> bytes:
    mac = _hmac_base(key).copy()
    mac.update(message)
    return mac.digest()[:AEAD_TAG_LEN]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """Constant-width XOR via int arithmetic (fast path for payloads)."""
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def _nonce(iv: bytes, packet_number: int) -> bytes:
    pn = packet_number.to_bytes(AEAD_IV_LEN, "big")
    return bytes(a ^ b for a, b in zip(iv, pn))


def aead_seal(keys: PacketKeys, packet_number: int, aad: bytes, plaintext: bytes) -> bytes:
    """Encrypt and authenticate; output is ``len(plaintext) + 16`` bytes."""
    nonce = _nonce(keys.iv, packet_number)
    stream = _keystream(keys.key, nonce, len(plaintext))
    ciphertext = _xor_bytes(plaintext, stream)
    return ciphertext + _hmac_tag(keys.key, nonce + aad + ciphertext)


def aead_open(keys: PacketKeys, packet_number: int, aad: bytes, sealed: bytes) -> bytes:
    """Authenticate and decrypt; raises :class:`DecryptError` on mismatch."""
    if len(sealed) < AEAD_TAG_LEN:
        raise DecryptError("ciphertext shorter than tag")
    ciphertext, tag = sealed[:-AEAD_TAG_LEN], sealed[-AEAD_TAG_LEN:]
    nonce = _nonce(keys.iv, packet_number)
    expected = _hmac_tag(keys.key, nonce + aad + ciphertext)
    if not hmac.compare_digest(tag, expected):
        raise DecryptError("AEAD tag mismatch")
    stream = _keystream(keys.key, nonce, len(ciphertext))
    return _xor_bytes(ciphertext, stream)


def header_protection_mask(hp_key: bytes, sample: bytes) -> bytes:
    """5-byte header-protection mask from a 16-byte ciphertext sample."""
    if len(sample) < HP_SAMPLE_LEN:
        raise ValueError(
            f"header protection sample too short ({len(sample)} bytes)"
        )
    return hashlib.sha256(hp_key + sample[:HP_SAMPLE_LEN]).digest()[:5]


# --------------------------------------------------------------------------
# Packet number encode/decode (RFC 9000 §17.1, Appendix A)
# --------------------------------------------------------------------------


def encode_packet_number(full_pn: int, largest_acked: int = -1) -> bytes:
    """Encode a packet number in the minimal number of bytes (1-4)."""
    num_unacked = full_pn - largest_acked
    min_bits = max(num_unacked.bit_length() + 1, 1)
    length = max(1, (min_bits + 7) // 8)
    if length > 4:
        raise ValueError(f"packet number {full_pn} needs more than 4 bytes")
    return (full_pn & ((1 << (8 * length)) - 1)).to_bytes(length, "big")


def decode_packet_number(truncated: int, pn_nbits: int, largest_pn: int = -1) -> int:
    """Recover the full packet number per RFC 9000 Appendix A.3."""
    expected = largest_pn + 1
    pn_win = 1 << pn_nbits
    pn_hwin = pn_win // 2
    pn_mask = pn_win - 1
    candidate = (expected & ~pn_mask) | truncated
    if candidate <= expected - pn_hwin and candidate < (1 << 62) - pn_win:
        return candidate + pn_win
    if candidate > expected + pn_hwin and candidate >= pn_win:
        return candidate - pn_win
    return candidate
