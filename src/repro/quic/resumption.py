"""Session resumption state: address tokens, tickets, and the cache.

Section 6 of the paper argues the RETRY performance penalty "could be
alleviated by the session resumption feature in QUIC" for frequently
used services.  This module provides the client-side machinery to test
that claim (benchmarked in ``benchmarks/bench_a3_resumption.py``):

- after a completed handshake the server issues a **NEW_TOKEN** address
  token (RFC 9000 §8.1.3) and a TLS **NewSessionTicket** over 1-RTT;
- a returning client presents the token in its Initial (proving its
  address without a Retry round-trip) and the ticket as a PSK identity,
  unlocking **0-RTT** early data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.quic.crypto import PacketKeys, hkdf_extract, keys_from_secret
from repro.quic.versions import QuicVersion


@dataclass
class ResumptionState:
    """What a client remembers about a server after one connection."""

    server_name: str
    version: QuicVersion
    address_token: bytes = b""
    session_ticket: bytes = b""

    @property
    def can_skip_address_validation(self) -> bool:
        return bool(self.address_token)

    @property
    def can_send_early_data(self) -> bool:
        return bool(self.session_ticket)


def early_data_keys(ticket: bytes) -> PacketKeys:
    """0-RTT packet protection keys, derived from the session ticket.

    Both endpoints know the ticket (the client stores it, the server can
    authenticate it), and nobody else does — the ticket only ever
    travels inside 1-RTT-protected packets — so keys derived from it are
    shared secrets.  A telescope observing a 0-RTT long header cannot
    decrypt it, matching reality.
    """
    if not ticket:
        raise ValueError("cannot derive early-data keys from an empty ticket")
    return keys_from_secret(hkdf_extract(b"quic 0rtt", ticket))


class SessionCache:
    """Client-side cache of resumption state, keyed by server identity."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one slot")
        self._entries: dict[str, ResumptionState] = {}
        self._max_entries = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, state: ResumptionState) -> None:
        if state.server_name in self._entries:
            self._entries[state.server_name] = state
            return
        if len(self._entries) >= self._max_entries:
            # drop the oldest entry (insertion order)
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[state.server_name] = state

    def lookup(self, server_name: str) -> Optional[ResumptionState]:
        return self._entries.get(server_name)

    def evict(self, server_name: str) -> None:
        self._entries.pop(server_name, None)
