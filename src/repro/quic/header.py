"""QUIC packet headers (RFC 8999 invariants, RFC 9000 §17).

The *invariant* parts of QUIC headers — header form bit, version,
connection IDs — are readable by any observer, which is exactly what a
network telescope exploits: the long-header packet type (Initial /
0-RTT / Handshake / Retry) sits in bits 4-5 of the first byte and is
**not** covered by header protection, so message-type statistics
(Section 6 of the paper: 31% Initial, 57% Handshake) and SCID counting
(Figure 9) work without any key material.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.util.varint import VarintError, decode_varint, encode_varint
from repro.quic.versions import VERSION_NEGOTIATION

FORM_LONG = 0x80
FIXED_BIT = 0x40
MAX_CID_LEN = 20


class HeaderForm(enum.Enum):
    LONG = "long"
    SHORT = "short"


class PacketType(enum.Enum):
    """Long-header packet types plus the short-header 1-RTT type."""

    INITIAL = 0
    ZERO_RTT = 1
    HANDSHAKE = 2
    RETRY = 3
    ONE_RTT = "1rtt"
    VERSION_NEGOTIATION = "vn"
    GQUIC = "gquic"

    @property
    def wire_bits(self) -> int:
        if not isinstance(self.value, int):
            raise ValueError(f"{self} has no long-header type bits")
        return self.value


class HeaderParseError(ValueError):
    """Raised when bytes are not a valid QUIC header.

    ``reason`` is a stable machine-readable slug for the failure class
    (one of the values of
    :class:`repro.core.dissect.MalformedReason`); the dissector uses it
    to tally malformed traffic per reason instead of per message
    string, so hostile inputs produce bounded-cardinality telemetry.
    """

    def __init__(self, message: str, reason: str = "malformed") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class LongHeader:
    """An unprotected long header for Initial/0-RTT/Handshake packets.

    ``pn_offset``/``end`` are filled by :func:`parse_header` and locate
    the protected packet number and the end of this QUIC packet inside
    a (possibly coalesced) datagram.
    """

    packet_type: PacketType
    version: int
    dcid: bytes
    scid: bytes
    token: bytes = b""
    pn_offset: int = field(default=0, compare=False)
    start: int = field(default=0, compare=False)
    end: int = field(default=0, compare=False)
    payload_length: int = field(default=0, compare=False)

    def pack_prefix(self, pn_length: int, pn_and_payload_length: int) -> bytes:
        """Serialize up to (excluding) the packet number.

        The two low bits of the first byte encode ``pn_length - 1`` and
        are later masked by header protection.
        """
        if not 1 <= pn_length <= 4:
            raise HeaderParseError(f"invalid packet number length {pn_length}")
        _check_cid(self.dcid)
        _check_cid(self.scid)
        first = FORM_LONG | FIXED_BIT | (self.packet_type.wire_bits << 4) | (pn_length - 1)
        out = bytes([first]) + self.version.to_bytes(4, "big")
        out += bytes([len(self.dcid)]) + self.dcid
        out += bytes([len(self.scid)]) + self.scid
        if self.packet_type is PacketType.INITIAL:
            out += encode_varint(len(self.token)) + self.token
        out += encode_varint(pn_and_payload_length, 2)
        return out


@dataclass
class ShortHeader:
    """A 1-RTT short header view.

    The DCID length is not self-describing; observers that did not see
    the handshake (telescopes!) cannot delimit it, so the view keeps the
    raw remainder.
    """

    first_byte: int
    raw: bytes
    start: int = field(default=0, compare=False)
    end: int = field(default=0, compare=False)

    packet_type: PacketType = field(default=PacketType.ONE_RTT, init=False)

    @property
    def spin_bit(self) -> bool:
        return bool(self.first_byte & 0x20)

    def dcid_assuming_length(self, length: int) -> bytes:
        return self.raw[:length]


@dataclass
class RetryPacket:
    """A Retry packet (RFC 9000 §17.2.5): token plus 16-byte integrity tag."""

    version: int
    dcid: bytes
    scid: bytes
    token: bytes
    integrity_tag: bytes
    start: int = field(default=0, compare=False)
    end: int = field(default=0, compare=False)

    packet_type: PacketType = field(default=PacketType.RETRY, init=False)

    def serialize(self) -> bytes:
        _check_cid(self.dcid)
        _check_cid(self.scid)
        if len(self.integrity_tag) != 16:
            raise HeaderParseError("retry integrity tag must be 16 bytes")
        first = FORM_LONG | FIXED_BIT | (PacketType.RETRY.wire_bits << 4)
        out = bytes([first]) + self.version.to_bytes(4, "big")
        out += bytes([len(self.dcid)]) + self.dcid
        out += bytes([len(self.scid)]) + self.scid
        out += self.token + self.integrity_tag
        return out


@dataclass
class VersionNegotiationPacket:
    """Version Negotiation (RFC 9000 §17.2.1): version field is zero."""

    dcid: bytes
    scid: bytes
    supported_versions: tuple[int, ...]
    start: int = field(default=0, compare=False)
    end: int = field(default=0, compare=False)

    packet_type: PacketType = field(default=PacketType.VERSION_NEGOTIATION, init=False)

    def serialize(self) -> bytes:
        _check_cid(self.dcid)
        _check_cid(self.scid)
        first = FORM_LONG | 0x3F  # unused bits set, fixed bit not required
        out = bytes([first]) + VERSION_NEGOTIATION.to_bytes(4, "big")
        out += bytes([len(self.dcid)]) + self.dcid
        out += bytes([len(self.scid)]) + self.scid
        for version in self.supported_versions:
            out += version.to_bytes(4, "big")
        return out


HeaderView = Union[LongHeader, ShortHeader, RetryPacket, VersionNegotiationPacket]


def parse_header(data: bytes, offset: int = 0) -> HeaderView:
    """Parse the next QUIC packet header inside ``data``.

    Returns a header view whose ``end`` marks where the packet ends
    (coalesced datagrams contain further packets from there).  Raises
    :class:`HeaderParseError` for anything that is not plausible QUIC —
    this strictness is what makes the classifier's dissector step filter
    non-QUIC UDP/443 traffic.
    """
    if offset >= len(data):
        raise HeaderParseError("empty packet", reason="empty")
    first = data[offset]
    if not first & FORM_LONG:
        if not first & FIXED_BIT:
            raise HeaderParseError(
                "short header without fixed bit", reason="no-fixed-bit"
            )
        view = ShortHeader(first_byte=first, raw=data[offset + 1 :])
        view.start = offset
        view.end = len(data)
        return view

    if len(data) - offset < 7:
        raise HeaderParseError("long header truncated", reason="truncated-header")
    version = int.from_bytes(data[offset + 1 : offset + 5], "big")
    pos = offset + 5
    dcid, pos = _parse_cid(data, pos)
    scid, pos = _parse_cid(data, pos)

    if version == VERSION_NEGOTIATION:
        rest = data[pos:]
        if len(rest) % 4 or not rest:
            raise HeaderParseError(
                "version negotiation list malformed",
                reason="bad-version-negotiation",
            )
        versions = tuple(
            int.from_bytes(rest[i : i + 4], "big") for i in range(0, len(rest), 4)
        )
        view = VersionNegotiationPacket(dcid, scid, versions)
        view.start = offset
        view.end = len(data)
        return view

    if not first & FIXED_BIT:
        raise HeaderParseError(
            "long header without fixed bit", reason="no-fixed-bit"
        )
    packet_type = PacketType((first >> 4) & 0x03)

    if packet_type is PacketType.RETRY:
        token_and_tag = data[pos:]
        if len(token_and_tag) < 16:
            raise HeaderParseError(
                "retry packet shorter than integrity tag",
                reason="truncated-payload",
            )
        view = RetryPacket(
            version=version,
            dcid=dcid,
            scid=scid,
            token=token_and_tag[:-16],
            integrity_tag=token_and_tag[-16:],
        )
        view.start = offset
        view.end = len(data)
        return view

    token = b""
    if packet_type is PacketType.INITIAL:
        try:
            token_len, pos = decode_varint(data, pos)
        except VarintError as exc:
            raise HeaderParseError(
                f"initial token length: {exc}", reason="bad-varint"
            ) from exc
        if pos + token_len > len(data):
            raise HeaderParseError(
                "initial token truncated", reason="truncated-payload"
            )
        token = data[pos : pos + token_len]
        pos += token_len
    try:
        length, pos = decode_varint(data, pos)
    except VarintError as exc:
        raise HeaderParseError(
            f"long header length: {exc}", reason="bad-varint"
        ) from exc
    end = pos + length
    if end > len(data):
        raise HeaderParseError(
            "long header payload truncated", reason="truncated-payload"
        )
    if length < 4:
        # RFC 9001 §5.4.2 requires pn + payload to allow a 4-byte HP sample
        raise HeaderParseError(
            f"long header payload too short ({length})",
            reason="payload-too-short",
        )
    header = LongHeader(
        packet_type=packet_type,
        version=version,
        dcid=dcid,
        scid=scid,
        token=token,
        pn_offset=pos,
        payload_length=length,
    )
    header.start = offset
    header.end = end
    return header


def _parse_cid(data: bytes, pos: int) -> tuple[bytes, int]:
    if pos >= len(data):
        raise HeaderParseError(
            "connection ID length truncated", reason="bad-connection-id"
        )
    cid_len = data[pos]
    pos += 1
    if cid_len > MAX_CID_LEN:
        raise HeaderParseError(
            f"connection ID length {cid_len} exceeds 20",
            reason="bad-connection-id",
        )
    if pos + cid_len > len(data):
        raise HeaderParseError(
            "connection ID truncated", reason="bad-connection-id"
        )
    return data[pos : pos + cid_len], pos + cid_len


def _check_cid(cid: bytes) -> None:
    if len(cid) > MAX_CID_LEN:
        raise HeaderParseError(f"connection ID too long ({len(cid)} bytes)")
