"""QUIC frames (RFC 9000 §19).

Frames are the payload units inside protected packets.  The subset
implemented covers everything the traffic models and the dissector
encounter: PADDING (Initial size inflation — the attack-padding vector
from Section 3 of the paper), PING (keep-alives, two per handshake in
the NGINX experiment), ACK, CRYPTO (TLS transport), NEW_TOKEN /
NEW_CONNECTION_ID (address-validation and CID machinery),
CONNECTION_CLOSE, HANDSHAKE_DONE and STREAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.util.varint import VarintError, decode_varint, encode_varint


class FrameType(enum.IntEnum):
    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    ACK_ECN = 0x03
    CRYPTO = 0x06
    NEW_TOKEN = 0x07
    STREAM_BASE = 0x08  # 0x08-0x0f with OFF/LEN/FIN bits
    NEW_CONNECTION_ID = 0x18
    CONNECTION_CLOSE = 0x1C
    CONNECTION_CLOSE_APP = 0x1D
    HANDSHAKE_DONE = 0x1E


class FrameParseError(ValueError):
    """Raised when a frame sequence cannot be parsed."""


@dataclass
class PaddingFrame:
    """A *run* of PADDING frames (each is a single zero byte on the wire)."""

    length: int = 1

    def serialize(self) -> bytes:
        return b"\x00" * self.length


@dataclass
class PingFrame:
    def serialize(self) -> bytes:
        return bytes([FrameType.PING])


@dataclass
class AckFrame:
    """ACK with a single range (sufficient for handshake traffic)."""

    largest_acked: int
    ack_delay: int = 0
    first_range: int = 0

    def serialize(self) -> bytes:
        return (
            bytes([FrameType.ACK])
            + encode_varint(self.largest_acked)
            + encode_varint(self.ack_delay)
            + encode_varint(0)  # additional ranges
            + encode_varint(self.first_range)
        )


@dataclass
class CryptoFrame:
    """Carries TLS handshake bytes at a stream offset."""

    offset: int
    data: bytes

    def serialize(self) -> bytes:
        return (
            bytes([FrameType.CRYPTO])
            + encode_varint(self.offset)
            + encode_varint(len(self.data))
            + self.data
        )


@dataclass
class NewTokenFrame:
    token: bytes

    def serialize(self) -> bytes:
        return bytes([FrameType.NEW_TOKEN]) + encode_varint(len(self.token)) + self.token


@dataclass
class StreamFrame:
    """STREAM with explicit offset and length bits set."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def serialize(self) -> bytes:
        first = FrameType.STREAM_BASE | 0x04 | 0x02 | (0x01 if self.fin else 0)
        return (
            bytes([first])
            + encode_varint(self.stream_id)
            + encode_varint(self.offset)
            + encode_varint(len(self.data))
            + self.data
        )


@dataclass
class NewConnectionIdFrame:
    sequence: int
    retire_prior_to: int
    connection_id: bytes
    reset_token: bytes = field(default=b"\x00" * 16)

    def serialize(self) -> bytes:
        return (
            bytes([FrameType.NEW_CONNECTION_ID])
            + encode_varint(self.sequence)
            + encode_varint(self.retire_prior_to)
            + bytes([len(self.connection_id)])
            + self.connection_id
            + self.reset_token
        )


@dataclass
class ConnectionCloseFrame:
    error_code: int
    frame_type: int = 0
    reason: bytes = b""
    application: bool = False

    def serialize(self) -> bytes:
        first = FrameType.CONNECTION_CLOSE_APP if self.application else FrameType.CONNECTION_CLOSE
        out = bytes([first]) + encode_varint(self.error_code)
        if not self.application:
            out += encode_varint(self.frame_type)
        return out + encode_varint(len(self.reason)) + self.reason


@dataclass
class HandshakeDoneFrame:
    def serialize(self) -> bytes:
        return bytes([FrameType.HANDSHAKE_DONE])


Frame = Union[
    PaddingFrame,
    PingFrame,
    AckFrame,
    CryptoFrame,
    NewTokenFrame,
    StreamFrame,
    NewConnectionIdFrame,
    ConnectionCloseFrame,
    HandshakeDoneFrame,
]


def serialize_frames(frames: list) -> bytes:
    """Concatenate serialized frames into a packet payload."""
    return b"".join(frame.serialize() for frame in frames)


def parse_frames(payload: bytes) -> list:
    """Parse a packet payload into frames.

    PADDING runs are collapsed into one :class:`PaddingFrame` with a
    length, matching how dissectors report them.
    """
    frames: list = []
    offset = 0
    try:
        while offset < len(payload):
            first = payload[offset]
            if first == FrameType.PADDING:
                rest = payload[offset:]
                run = len(rest) - len(rest.lstrip(b"\x00"))
                offset += run
                frames.append(PaddingFrame(run))
            elif first == FrameType.PING:
                frames.append(PingFrame())
                offset += 1
            elif first in (FrameType.ACK, FrameType.ACK_ECN):
                offset += 1
                largest, offset = decode_varint(payload, offset)
                delay, offset = decode_varint(payload, offset)
                range_count, offset = decode_varint(payload, offset)
                first_range, offset = decode_varint(payload, offset)
                for _ in range(range_count):
                    _gap, offset = decode_varint(payload, offset)
                    _length, offset = decode_varint(payload, offset)
                if first == FrameType.ACK_ECN:
                    for _ in range(3):
                        _count, offset = decode_varint(payload, offset)
                frames.append(AckFrame(largest, delay, first_range))
            elif first == FrameType.CRYPTO:
                offset += 1
                data_offset, offset = decode_varint(payload, offset)
                length, offset = decode_varint(payload, offset)
                end = offset + length
                if end > len(payload):
                    raise FrameParseError("CRYPTO frame truncated")
                frames.append(CryptoFrame(data_offset, payload[offset:end]))
                offset = end
            elif first == FrameType.NEW_TOKEN:
                offset += 1
                length, offset = decode_varint(payload, offset)
                end = offset + length
                if end > len(payload):
                    raise FrameParseError("NEW_TOKEN frame truncated")
                frames.append(NewTokenFrame(payload[offset:end]))
                offset = end
            elif FrameType.STREAM_BASE <= first <= 0x0F:
                fin = bool(first & 0x01)
                has_len = bool(first & 0x02)
                has_off = bool(first & 0x04)
                offset += 1
                stream_id, offset = decode_varint(payload, offset)
                data_offset = 0
                if has_off:
                    data_offset, offset = decode_varint(payload, offset)
                if has_len:
                    length, offset = decode_varint(payload, offset)
                    end = offset + length
                else:
                    end = len(payload)
                if end > len(payload):
                    raise FrameParseError("STREAM frame truncated")
                frames.append(StreamFrame(stream_id, data_offset, payload[offset:end], fin))
                offset = end
            elif first == FrameType.NEW_CONNECTION_ID:
                offset += 1
                sequence, offset = decode_varint(payload, offset)
                retire, offset = decode_varint(payload, offset)
                cid_len = payload[offset]
                offset += 1
                if cid_len < 1 or cid_len > 20:
                    raise FrameParseError(f"invalid NEW_CONNECTION_ID length {cid_len}")
                cid = payload[offset : offset + cid_len]
                offset += cid_len
                token = payload[offset : offset + 16]
                if len(token) < 16:
                    raise FrameParseError("NEW_CONNECTION_ID token truncated")
                offset += 16
                frames.append(NewConnectionIdFrame(sequence, retire, cid, token))
            elif first in (FrameType.CONNECTION_CLOSE, FrameType.CONNECTION_CLOSE_APP):
                application = first == FrameType.CONNECTION_CLOSE_APP
                offset += 1
                error_code, offset = decode_varint(payload, offset)
                frame_type = 0
                if not application:
                    frame_type, offset = decode_varint(payload, offset)
                reason_len, offset = decode_varint(payload, offset)
                end = offset + reason_len
                if end > len(payload):
                    raise FrameParseError("CONNECTION_CLOSE reason truncated")
                frames.append(
                    ConnectionCloseFrame(error_code, frame_type, payload[offset:end], application)
                )
                offset = end
            elif first == FrameType.HANDSHAKE_DONE:
                frames.append(HandshakeDoneFrame())
                offset += 1
            else:
                raise FrameParseError(f"unknown frame type 0x{first:02x}")
    except VarintError as exc:
        raise FrameParseError(f"varint error in frame: {exc}") from exc
    except IndexError as exc:
        raise FrameParseError("frame truncated") from exc
    return frames


def crypto_payload(frames: list) -> bytes:
    """Reassemble the CRYPTO stream from a parsed frame list."""
    chunks = sorted(
        ((f.offset, f.data) for f in frames if isinstance(f, CryptoFrame)),
        key=lambda pair: pair[0],
    )
    stream = bytearray()
    for chunk_offset, data in chunks:
        if chunk_offset <= len(stream):
            stream[chunk_offset : chunk_offset + len(data)] = data
        # gaps mean we saw only part of the stream; keep what we have
    return bytes(stream)
