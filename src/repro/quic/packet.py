"""QUIC packet protection and datagram assembly (RFC 9001 §5, RFC 9000 §12.2).

This module turns frame lists into protected wire packets and back:

- AEAD protection with the header as associated data,
- header protection masking the first-byte low bits and packet number,
- datagram *coalescing* (the server's first flight ships an Initial and
  a Handshake packet in one UDP datagram — the two-datagram response
  train discussed in Section 6 of the paper),
- the client-Initial 1200-byte padding rule (RFC 9000 §14.1), which is
  the knob an amplification attacker would turn (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.quic import crypto
from repro.quic.crypto import PacketKeys
from repro.quic.frames import Frame, PaddingFrame, parse_frames, serialize_frames
from repro.quic.header import (
    HeaderParseError,
    HeaderView,
    LongHeader,
    PacketType,
    parse_header,
)

#: RFC 9000 §14.1: a client MUST pad datagrams containing Initial
#: packets to at least 1200 bytes.
MIN_INITIAL_DATAGRAM = 1200


@dataclass
class PlainPacket:
    """An unprotected QUIC packet: header template + packet number + frames."""

    header: LongHeader
    packet_number: int
    frames: list

    def with_padding_to(self, target_payload_len: int) -> "PlainPacket":
        """Return a copy padded (with PADDING frames) to the target size."""
        current = len(serialize_frames(self.frames))
        if current >= target_payload_len:
            return self
        return PlainPacket(
            header=self.header,
            packet_number=self.packet_number,
            frames=list(self.frames) + [PaddingFrame(target_payload_len - current)],
        )


def protect_packet(
    plain: PlainPacket, keys: PacketKeys, largest_acked: int = -1
) -> bytes:
    """Serialize and protect one long-header packet."""
    pn_bytes = crypto.encode_packet_number(plain.packet_number, largest_acked)
    pn_len = len(pn_bytes)
    payload = serialize_frames(plain.frames)
    # The header-protection sample starts 4 bytes after the pn offset;
    # guarantee the ciphertext is long enough to sample from.
    min_payload = max(1, 4 - pn_len)
    if len(payload) < min_payload:
        payload += PaddingFrame(min_payload - len(payload)).serialize()
    header_bytes = plain.header.pack_prefix(
        pn_len, pn_len + len(payload) + crypto.AEAD_TAG_LEN
    )
    aad = header_bytes + pn_bytes
    sealed = crypto.aead_seal(keys, plain.packet_number, aad, payload)
    sample = sealed[4 - pn_len : 4 - pn_len + crypto.HP_SAMPLE_LEN]
    mask = crypto.header_protection_mask(keys.hp, sample)
    first = header_bytes[0] ^ (mask[0] & 0x0F)
    protected_pn = bytes(b ^ m for b, m in zip(pn_bytes, mask[1 : 1 + pn_len]))
    return bytes([first]) + header_bytes[1:] + protected_pn + sealed


def unprotect_initial(
    datagram: bytes,
    view: LongHeader,
    keys: PacketKeys,
    largest_pn: int = -1,
) -> tuple[int, list]:
    """Remove protection from a parsed Initial/Handshake packet.

    ``view`` must come from :func:`~repro.quic.header.parse_header` over
    the same ``datagram``.  Returns ``(packet_number, frames)``.
    Raises :class:`~repro.quic.crypto.DecryptError` on tag mismatch and
    :class:`~repro.quic.header.HeaderParseError` on structural problems.
    """
    pn_offset = view.pn_offset
    sample_start = pn_offset + 4
    sample = datagram[sample_start : sample_start + crypto.HP_SAMPLE_LEN]
    mask = crypto.header_protection_mask(keys.hp, sample)
    packet_start = view.start
    first = datagram[packet_start] ^ (mask[0] & 0x0F)
    pn_len = (first & 0x03) + 1
    protected_pn = datagram[pn_offset : pn_offset + pn_len]
    pn_bytes = bytes(b ^ m for b, m in zip(protected_pn, mask[1 : 1 + pn_len]))
    truncated_pn = int.from_bytes(pn_bytes, "big")
    packet_number = crypto.decode_packet_number(truncated_pn, pn_len * 8, largest_pn)
    header_bytes = (
        bytes([first]) + datagram[packet_start + 1 : pn_offset] + pn_bytes
    )
    sealed = datagram[pn_offset + pn_len : view.end]
    payload = crypto.aead_open(keys, packet_number, header_bytes, sealed)
    return packet_number, parse_frames(payload)


def protect_short_packet(
    dcid: bytes,
    packet_number: int,
    frames: list,
    keys: PacketKeys,
    key_phase: bool = False,
    largest_acked: int = -1,
) -> bytes:
    """Protect a 1-RTT short-header packet (RFC 9000 §17.3).

    Short headers carry no length field, so a packet occupies the rest
    of its datagram; endpoints delimit the DCID by knowing their own
    connection-ID length.
    """
    pn_bytes = crypto.encode_packet_number(packet_number, largest_acked)
    pn_len = len(pn_bytes)
    payload = serialize_frames(frames)
    min_payload = max(1, 4 - pn_len)
    if len(payload) < min_payload:
        payload += PaddingFrame(min_payload - len(payload)).serialize()
    first = 0x40 | (0x04 if key_phase else 0x00) | (pn_len - 1)
    header = bytes([first]) + dcid
    aad = header + pn_bytes
    sealed = crypto.aead_seal(keys, packet_number, aad, payload)
    sample = sealed[4 - pn_len : 4 - pn_len + crypto.HP_SAMPLE_LEN]
    mask = crypto.header_protection_mask(keys.hp, sample)
    protected_first = first ^ (mask[0] & 0x1F)  # 5 masked bits for short headers
    protected_pn = bytes(b ^ m for b, m in zip(pn_bytes, mask[1 : 1 + pn_len]))
    return bytes([protected_first]) + dcid + protected_pn + sealed


def unprotect_short_packet(
    datagram: bytes,
    dcid_len: int,
    keys: PacketKeys,
    largest_pn: int = -1,
) -> tuple[int, list]:
    """Remove protection from a 1-RTT packet given the local CID length."""
    if len(datagram) < 1 + dcid_len + 4 + crypto.HP_SAMPLE_LEN:
        raise HeaderParseError("short-header packet too small")
    pn_offset = 1 + dcid_len
    sample_start = pn_offset + 4
    sample = datagram[sample_start : sample_start + crypto.HP_SAMPLE_LEN]
    mask = crypto.header_protection_mask(keys.hp, sample)
    first = datagram[0] ^ (mask[0] & 0x1F)
    pn_len = (first & 0x03) + 1
    protected_pn = datagram[pn_offset : pn_offset + pn_len]
    pn_bytes = bytes(b ^ m for b, m in zip(protected_pn, mask[1 : 1 + pn_len]))
    truncated = int.from_bytes(pn_bytes, "big")
    packet_number = crypto.decode_packet_number(truncated, pn_len * 8, largest_pn)
    header = bytes([first]) + datagram[1:pn_offset] + pn_bytes
    sealed = datagram[pn_offset + pn_len :]
    payload = crypto.aead_open(keys, packet_number, header, sealed)
    return packet_number, parse_frames(payload)


@dataclass
class CoalescedDatagram:
    """A UDP datagram holding one or more QUIC packets."""

    raw: bytes
    packets: list

    def __len__(self) -> int:
        return len(self.raw)


def build_datagram(
    parts: Sequence[tuple[PlainPacket, PacketKeys]],
    pad_to: Optional[int] = None,
) -> bytes:
    """Protect and coalesce packets into one datagram.

    ``pad_to`` pads the datagram to a minimum size by inflating the
    *first Initial* packet's payload with PADDING frames, as clients do
    to satisfy the 1200-byte rule (and as attackers do to maximize
    reflected bytes).
    """
    if not parts:
        raise ValueError("datagram needs at least one packet")
    protected = [protect_packet(packet, keys) for packet, keys in parts]
    total = sum(len(p) for p in protected)
    if pad_to is not None and total < pad_to:
        deficit = pad_to - total
        index = next(
            (
                i
                for i, (packet, _keys) in enumerate(parts)
                if packet.header.packet_type is PacketType.INITIAL
            ),
            0,
        )
        packet, keys = parts[index]
        current_len = len(serialize_frames(packet.frames))
        padded = packet.with_padding_to(current_len + deficit)
        protected[index] = protect_packet(padded, keys)
    return b"".join(protected)


def split_datagram(data: bytes) -> list:
    """Parse a datagram into its coalesced packet header views.

    Walks packets front to back; a short-header packet consumes the rest
    of the datagram (its length is not self-describing).  Raises
    :class:`HeaderParseError` if any packet is malformed — callers that
    merely *classify* traffic catch this.
    """
    views: list[HeaderView] = []
    offset = 0
    while offset < len(data):
        view = parse_header(data, offset)
        # offsets inside the view are absolute within `data`
        views.append(view)
        if view.end <= offset:
            raise HeaderParseError("packet does not advance", reason="no-advance")
        offset = view.end
    return views
