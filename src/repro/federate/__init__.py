"""Multi-telescope federation: distributed capture, one global result.

The paper measures one /9 telescope.  This package asks the follow-up
question: what would K *smaller* telescopes, each watching one tile of
the prefix, see — and can their observations be merged back into
exactly the single-telescope analysis?

- :mod:`repro.federate.protocol` — the checksummed, versioned frame
  format vantages ship snapshots in;
- :mod:`repro.federate.transport` — file-spool and TCP transports with
  the lenient skip-and-count damage contract;
- :mod:`repro.federate.vantage` — one tile's local analysis run;
- :mod:`repro.federate.merge` — the overlap-aware distributed state
  merge (destination partitioning means the same source appears at
  several vantages);
- :mod:`repro.federate.aggregate` — the aggregator: global result,
  cross-telescope flood dedup, per-vantage differential, and the
  extrapolation check.

Design notes and the dedup semantics live in ``docs/FEDERATION.md``;
bit-exactness against a single telescope is pinned by
``tests/test_federation_equivalence.py``.
"""

from repro.federate.aggregate import (
    Aggregator,
    FederationResult,
    GlobalFlood,
    VantageStream,
)
from repro.federate.merge import merge_federated_states, tile_prefixes
from repro.federate.protocol import (
    FRAME_KINDS,
    Frame,
    FrameDecoder,
    PROTOCOL_VERSION,
    ProtocolError,
    SCHEMA_VERSION,
    decode_frames,
    encode_frame,
)
from repro.federate.transport import (
    FederationListener,
    SocketSender,
    SpoolReader,
    SpoolWriter,
    TransportError,
    connect_with_retry,
)
from repro.federate.vantage import Vantage, VantageConfig

__all__ = [
    "Aggregator",
    "FederationResult",
    "FederationListener",
    "FRAME_KINDS",
    "Frame",
    "FrameDecoder",
    "GlobalFlood",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SCHEMA_VERSION",
    "SocketSender",
    "SpoolReader",
    "SpoolWriter",
    "TransportError",
    "Vantage",
    "VantageConfig",
    "VantageStream",
    "connect_with_retry",
    "decode_frames",
    "encode_frame",
    "merge_federated_states",
    "tile_prefixes",
]
