"""One federated vantage: a telescope tile running its own analysis.

A :class:`Vantage` owns one tile of the telescope prefix (see
:func:`repro.federate.merge.tile_prefixes`), regenerates the shared
scenario under the **same seed** — the simulated Internet is identical
at every vantage, only the capture tap differs — and runs the
per-packet analysis phase locally.  Its product is a frame stream
(:mod:`repro.federate.protocol`): a ``hello`` handshake, periodic
cumulative ``state`` snapshots, the closing ``final-state`` (and, in
sketch mode, a ``sketch`` frame carrying the tier plus its alert
history), an optional ``obs`` metrics snapshot, and a ``bye``
manifest.

The vantage always accumulates an exact
:class:`~repro.core.pipeline.PartialState` with a
:class:`~repro.core.sessions.RecordingSweep`, because the federated
merge replays sweep timestamps to stay bit-exact.  ``sketch`` mode
*additionally* runs a :class:`~repro.stream.sketch.tier.SketchTier`
and ships it with the recorded flood alert/ended events — the
aggregator's cross-telescope dedup works on those events, while the
global result still merges from the exact states (conservative-update
count-min is order-dependent, so a partitioned sketch union cannot be
bit-equal to a single-stream sketch; see
``SketchTier.merge_federated``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.batchlane import BatchLane
from repro.core.pipeline import AnalysisConfig, PartialState
from repro.core.sessions import RecordingSweep
from repro.federate.protocol import (
    FINAL_STATE,
    OBS,
    SKETCH,
    STATE,
    bye_frame,
    hello_frame,
    pickle_frame,
)
from repro.telescope.workload import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro import obs

EXACT = "exact"
SKETCH_MODE = "sketch"


@dataclass
class VantageConfig:
    """One vantage's identity and cadence."""

    name: str
    #: CIDR tile to capture; ``None`` keeps the scenario's full prefix
    #: (a one-vantage federation).
    prefix: Optional[str] = None
    mode: str = EXACT
    #: event-seconds between cumulative interim ``state`` frames;
    #: ``0`` ships only the final state.
    snapshot_every: float = 3600.0
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)


class Vantage:
    """Run one tile's analysis and stream frames into a transport sink.

    ``run(sink)`` regenerates the tile's capture through the
    generation fast lane; ``run(sink, packets=...)`` instead filters a
    caller-provided packet iterable through the tile's telescope —
    the equivalence tests generate the full-prefix capture once and
    fan it out to K vantages without re-simulating K times.
    """

    def __init__(self, config: VantageConfig) -> None:
        if config.mode not in (EXACT, SKETCH_MODE):
            raise ValueError(f"unknown vantage mode {config.mode!r}")
        self.config = config
        self.scenario = Scenario(config.scenario)
        if config.prefix is not None:
            self.scenario.retarget(config.prefix)
        self.frames_sent = 0
        self._seq = 0

    # -- frame emission ----------------------------------------------------

    def _emit(self, sink, frame_bytes: bytes) -> None:
        sink.send(frame_bytes)
        self.frames_sent += 1
        self._seq += 1

    # -- the run -----------------------------------------------------------

    def run(self, sink, packets: Optional[Iterable] = None) -> PartialState:
        """Analyze the tile and stream the frame sequence into ``sink``.

        Returns the final (closed) state, which the in-process CLI
        path reuses directly instead of re-decoding its own spool.
        """
        config = self.config
        analysis = config.analysis
        state = PartialState.initial(analysis)
        state.sweep = RecordingSweep()
        lane = BatchLane(dissect_payloads=analysis.dissect_payloads)

        tier = None
        alerts: list = []
        ended: list = []
        if config.mode == SKETCH_MODE:
            from repro.stream.sketch.tier import SketchTier

            def on_alert(vector, victim, start, crossed_at, count, max_pps):
                alerts.append(
                    {
                        "vector": vector,
                        "victim": victim,
                        "start": start,
                        "crossed_at": crossed_at,
                        "packets": count,
                        "max_pps": max_pps,
                    }
                )
                return None

            def on_ended(vector, victim, start, end, count, max_pps):
                ended.append(
                    {
                        "vector": vector,
                        "victim": victim,
                        "start": start,
                        "end": end,
                        "packets": count,
                        "max_pps": max_pps,
                    }
                )

            tier = SketchTier(
                thresholds=analysis.thresholds,
                timeout=analysis.session_timeout,
                seed=config.scenario.seed,
                on_alert=on_alert,
                on_ended=on_ended,
            )

        self._emit(
            sink,
            hello_frame(
                config.name,
                str(self.scenario.telescope.prefix),
                config.mode,
                self._seq,
            ),
        )

        next_snapshot: Optional[float] = None
        use_gen_lane = packets is None and tier is None
        if use_gen_lane:
            batches = self.scenario.lane_batches(analysis.batch_size)
        elif packets is None:
            batches = self.scenario.packet_batches(analysis.batch_size)
        else:
            batches = batched(
                self.scenario.telescope.capture(iter(packets)),
                analysis.batch_size,
            )
        for batch in batches:
            if use_gen_lane:
                state.consume_lane_records(batch, lane)
                watermark = batch[-1][0]
            else:
                state.consume_lane(batch, lane)
                if tier is not None:
                    tier.consume_lane(batch, lane)
                watermark = batch[-1].timestamp
            if config.snapshot_every:
                if next_snapshot is None:
                    next_snapshot = watermark + config.snapshot_every
                elif watermark >= next_snapshot:
                    self._emit(sink, pickle_frame(STATE, state, self._seq))
                    next_snapshot = watermark + config.snapshot_every

        state.record_classifier(lane)
        state.close()
        self._emit(sink, pickle_frame(FINAL_STATE, state, self._seq))
        if tier is not None:
            tier.flush()
            self._emit(
                sink,
                pickle_frame(
                    SKETCH,
                    {"tier": tier, "alerts": alerts, "ended": ended},
                    self._seq,
                ),
            )
        if obs.enabled():
            self._emit(
                sink,
                pickle_frame(
                    OBS, obs.REGISTRY.snapshot(run_collectors=False), self._seq
                ),
            )
        self._emit(sink, bye_frame(self.frames_sent + 1, state.total_packets, self._seq))
        return state
