"""The federation wire protocol: checksummed, versioned snapshot frames.

A vantage ships its accumulated analysis state to the aggregator as a
sequence of *frames*.  Each frame is self-delimiting and individually
checksummed, so a receiver can skip damage without losing the rest of
the stream — the same lenient skip-and-count contract the pcap reader
honors for corrupt capture records.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic        b"QSFD"
    4       1     protocol     PROTOCOL_VERSION (frame format)
    5       1     kind         see FRAME_KINDS
    6       4     sequence     per-vantage monotonically increasing
    10      8     length       payload bytes that follow the header
    18      4     crc32        zlib.crc32 of the payload
    22      ...   payload

Payloads are either JSON (``hello``/``bye`` — the schema-version
handshake and the closing manifest) or pickles (``state``/
``final-state`` carry :class:`~repro.core.pipeline.PartialState`
snapshots, ``sketch`` a :class:`~repro.stream.sketch.tier.SketchTier`
plus its alert history, ``obs`` a registry snapshot dict).
``SCHEMA_VERSION`` governs the pickled payload schema and travels in
the ``hello`` frame; the aggregator rejects a vantage whose schema
does not match instead of unpickling blind.

:class:`FrameDecoder` is the lenient receiving side: feed it bytes in
any chunking, get complete frames out, and read ``corrupt_frames`` for
how many damaged or truncated frames were skipped.  Decoding **never
raises** on damage: a bad magic resynchronizes to the next magic, a
bad checksum skips the declared frame, and a partial trailing frame
counts as truncated when the stream closes.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs

#: frame container format version (the header above).
PROTOCOL_VERSION = 1
#: pickled payload schema version (the handshake value in ``hello``).
SCHEMA_VERSION = 1

MAGIC = b"QSFD"

HELLO = "hello"
STATE = "state"
FINAL_STATE = "final-state"
SKETCH = "sketch"
OBS = "obs"
BYE = "bye"

FRAME_KINDS = (HELLO, STATE, FINAL_STATE, SKETCH, OBS, BYE)
_KIND_CODES = {kind: index + 1 for index, kind in enumerate(FRAME_KINDS)}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

_HEADER = struct.Struct(">4sBBIQI")
HEADER_SIZE = _HEADER.size

#: hard ceiling on a single frame payload — anything larger is treated
#: as a corrupt length field during resync, not an allocation request.
MAX_PAYLOAD = 1 << 30

M_FRAMES = obs.counter(
    "repro_federate_frames_total",
    "federation frames decoded by a receiver, per frame kind",
    labels=("kind",),
)
M_BYTES = obs.counter(
    "repro_federate_bytes_total",
    "federation frame bytes received (headers + payloads)",
)
M_CORRUPT = obs.counter(
    "repro_federate_corrupt_frames_total",
    "corrupt or truncated federation frames skipped by receivers",
)


class ProtocolError(ValueError):
    """A sender-side protocol violation (receivers never raise this
    for wire damage — damage is counted and skipped)."""


@dataclass(frozen=True)
class Frame:
    """One decoded federation frame."""

    kind: str
    seq: int
    payload: bytes

    def json(self) -> dict:
        return json.loads(self.payload.decode("utf-8"))

    def unpickle(self):
        return pickle.loads(self.payload)


def encode_frame(kind: str, payload: bytes, seq: int = 0) -> bytes:
    """A complete wire frame for ``payload``."""
    code = _KIND_CODES.get(kind)
    if code is None:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload over {MAX_PAYLOAD} bytes")
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, code, seq & 0xFFFFFFFF, len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


def hello_frame(vantage: str, prefix: str, mode: str, seq: int = 0) -> bytes:
    """The handshake frame opening every vantage stream."""
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "vantage": vantage,
            "prefix": prefix,
            "mode": mode,
        },
        sort_keys=True,
    ).encode("utf-8")
    return encode_frame(HELLO, payload, seq)


def bye_frame(frames_sent: int, packets: int, seq: int) -> bytes:
    """The closing manifest: what the vantage believes it shipped."""
    payload = json.dumps(
        {"frames": frames_sent, "packets": packets}, sort_keys=True
    ).encode("utf-8")
    return encode_frame(BYE, payload, seq)


def pickle_frame(kind: str, obj, seq: int) -> bytes:
    """A frame carrying a pickled snapshot payload."""
    return encode_frame(
        kind, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), seq
    )


class FrameDecoder:
    """Incremental, damage-tolerant frame decoder.

    ``feed(data)`` buffers bytes and yields every complete, valid
    frame; ``finish()`` flags a dangling partial frame as truncated.
    Damage handling mirrors the lenient pcap reader:

    - header not starting with the magic → scan forward to the next
      magic, count one corrupt frame for the skipped run;
    - bad version / unknown kind / absurd length → count one, drop the
      magic, rescan;
    - checksum mismatch → count one, skip the declared frame (the
      header was structurally valid, so the length is trusted; if it
      lied, the next magic scan recovers);
    - bytes left after ``finish()`` → one truncated frame.

    ``corrupt_frames`` is the skip count; the module counters
    (``repro_federate_*``) are incremented as frames decode.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_received = 0
        self.corrupt_frames = 0
        #: inside a damage run already counted — suppresses recounting
        #: the same run across feed() calls and rescans.
        self._resyncing = False

    def _count_corrupt(self, n: int = 1) -> None:
        self.corrupt_frames += n
        if obs.enabled():
            M_CORRUPT.inc(n)

    def feed(self, data: bytes) -> Iterator[Frame]:
        """Buffer ``data`` and yield every frame it completes."""
        self._buffer.extend(data)
        self.bytes_received += len(data)
        buffer = self._buffer
        metrics = obs.enabled()
        while True:
            if len(buffer) < HEADER_SIZE:
                return
            if not buffer.startswith(MAGIC):
                # resync: one corrupt run, however long, however chunked
                if not self._resyncing:
                    self._count_corrupt()
                    self._resyncing = True
                index = buffer.find(MAGIC, 1)
                if index < 0:
                    # keep a magic-sized tail in case the magic is split
                    del buffer[: max(0, len(buffer) - (len(MAGIC) - 1))]
                    return
                del buffer[:index]
                self._resyncing = False
                continue
            magic, version, code, seq, length, crc = _HEADER.unpack_from(buffer)
            kind = _CODE_KINDS.get(code)
            if version != PROTOCOL_VERSION or kind is None or length > MAX_PAYLOAD:
                self._count_corrupt()
                del buffer[: len(MAGIC)]
                self._resyncing = True  # the rescan is part of this run
                continue
            if len(buffer) < HEADER_SIZE + length:
                return  # wait for the rest of the frame
            payload = bytes(buffer[HEADER_SIZE : HEADER_SIZE + length])
            del buffer[: HEADER_SIZE + length]
            self._resyncing = False
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                self._count_corrupt()
                continue
            self.frames_decoded += 1
            if metrics:
                M_FRAMES.inc(kind=kind)
                M_BYTES.inc(HEADER_SIZE + length)
            yield Frame(kind=kind, seq=seq, payload=payload)

    def finish(self) -> None:
        """End of stream: a dangling partial frame counts as truncated."""
        if self._buffer and not self._resyncing:
            self._count_corrupt()
        self._buffer.clear()
        self._resyncing = False


def decode_frames(data: bytes) -> tuple[list, int]:
    """Decode a complete byte string; returns (frames, corrupt count)."""
    decoder = FrameDecoder()
    frames = list(decoder.feed(data))
    decoder.finish()
    return frames, decoder.corrupt_frames
