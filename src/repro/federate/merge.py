"""Distributed state merge for destination-partitioned telescopes.

Federated vantages tile the telescope prefix by *destination*, so —
unlike the source-sharded ``--workers`` path — the same source shows
up at several vantages and the disjoint-source merges raise.  This
module provides the overlap-aware alternative:

- :func:`tile_prefixes` splits the telescope net into K tiles (K need
  not be a power of two — the largest tile is halved repeatedly, so
  K=3 over a /9 yields one /10 and two /11s);
- :func:`merge_federated_states` rebuilds the exact single-telescope
  :class:`~repro.core.pipeline.PartialState` from the per-vantage
  states: additive counters ride
  :meth:`~repro.core.pipeline.PartialState.merge_counts`, session
  fragments are rejoined by
  :func:`~repro.core.sessions.chain_merge_sessions` (exactness proof
  in its docstring), and the timeout sweep is replayed from recorded
  timestamps via :func:`~repro.core.sessions.merge_recorded_sweeps`.

Bit-exactness against the serial pipeline is pinned by
``tests/test_federation_equivalence.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.pipeline import AnalysisConfig, PartialState
from repro.core.sessions import (
    RecordingSweep,
    chain_merge_sessions,
    merge_recorded_sweeps,
)
from repro.net.addresses import IPv4Network


def tile_prefixes(base, count: int) -> list:
    """Split ``base`` into ``count`` tiles covering it exactly.

    Repeatedly halves the largest (shortest-prefix) tile, breaking
    ties toward the lowest network address, then returns the tiles in
    address order.  Powers of two give equal tiles; other counts give
    the flattest possible split (K=3 → ``[/10, /11, /11]`` of a /9).
    """
    if isinstance(base, str):
        base = IPv4Network.from_cidr(base)
    if count < 1:
        raise ValueError("need at least one tile")
    if count > 2 ** (32 - base.prefix_len):
        raise ValueError(f"cannot split {base} into {count} tiles")
    tiles = [base]
    while len(tiles) < count:
        widest = min(tiles, key=lambda net: (net.prefix_len, net.network))
        tiles.remove(widest)
        tiles.extend(widest.subnets(widest.prefix_len + 1))
    tiles.sort(key=lambda net: net.network)
    return tiles


def _merge_sessionizers(
    merged: PartialState, states: Sequence[PartialState], timeout: float
) -> None:
    for packet_class, target in merged.sessionizers.items():
        fragments: list = []
        seen: set = set()
        for state in states:
            source = state.sessionizers.get(packet_class)
            if source is None:
                continue
            if source.timeout != timeout:
                raise ValueError(
                    "cannot merge vantage sessionizers with different timeouts"
                )
            fragments.extend(source.closed)
            fragments.extend(source.open_sessions())
            seen |= source._seen_sources
        target.closed = chain_merge_sessions(fragments, timeout)
        target._seen_sources = seen
        target.source_count = len(seen)


def merge_federated_states(
    states: Iterable[PartialState], config: AnalysisConfig
) -> PartialState:
    """The global state of K destination-partitioned vantage states.

    Every input must carry a :class:`~repro.core.sessions.RecordingSweep`
    (vantages install one; see :mod:`repro.federate.vantage`) and must
    already be closed — open sessions are treated as fragments, so an
    unflushed state still merges, but the bit-exactness pin assumes
    end-of-window flushes.  The inputs are not mutated.
    """
    states = list(states)
    if not states:
        raise ValueError("nothing to merge: no vantage states")
    merged = PartialState.initial(config)
    for state in states:
        merged.merge_counts(state)
    _merge_sessionizers(merged, states, config.session_timeout)
    sweeps = [state.sweep for state in states]
    for sweep in sweeps:
        if not isinstance(sweep, RecordingSweep):
            raise ValueError(
                "federated merge needs RecordingSweep vantage states "
                "(plain TimeoutSweep gaps cannot be re-unioned exactly)"
            )
    merged.sweep = merge_recorded_sweeps(sweeps)
    return merged
