"""Federation transports: file spool and TCP socket pair.

Two ways to move :mod:`repro.federate.protocol` frames from vantages
to the aggregator:

- **File spool** — each vantage appends its frames to
  ``<spool>/<name>.qsf``; the aggregator globs ``*.qsf`` and decodes
  each file as one stream.  No sockets, no ordering assumptions, works
  offline and in CI, and a half-written file just shows up as one
  truncated frame (counted, not raised).
- **TCP sockets** — the aggregator binds a listener (port ``0`` picks
  a free port), each vantage connects and streams its frames.
  Connection setup retries with seeded jittered backoff so a vantage
  started before the aggregator converges instead of dying.

Both sides share :class:`~repro.federate.protocol.FrameDecoder`, so
the lenient damage contract is identical: corrupt frames are counted
and skipped, never raised.
"""

from __future__ import annotations

import os
import socket
from typing import Callable, Iterable, Iterator, Optional

from repro.federate.protocol import Frame, FrameDecoder
from repro.util.rng import SeededRng

#: spool file suffix — one file per vantage stream.
SPOOL_SUFFIX = ".qsf"


class TransportError(OSError):
    """Raised when a transport cannot be established (connect retries
    exhausted, spool path unusable) — never for in-stream damage."""


class SpoolWriter:
    """Append-only frame spool for one vantage stream."""

    def __init__(self, directory: str, name: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, name + SPOOL_SUFFIX)
        self.frames_written = 0
        self.bytes_written = 0
        self._file = open(self.path, "ab")

    def send(self, frame_bytes: bytes) -> None:
        self._file.write(frame_bytes)
        self.frames_written += 1
        self.bytes_written += len(frame_bytes)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "SpoolWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SpoolReader:
    """Decode every vantage stream spooled into a directory.

    ``streams()`` yields ``(stream_name, frames)`` per ``*.qsf`` file
    in sorted name order; ``corrupt_frames`` accumulates the lenient
    skip count across all files.
    """

    CHUNK = 1 << 16

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.corrupt_frames = 0
        self.frames_decoded = 0
        self.bytes_received = 0

    def stream_names(self) -> list:
        if not os.path.isdir(self.directory):
            raise TransportError(f"spool directory {self.directory!r} missing")
        return sorted(
            entry[: -len(SPOOL_SUFFIX)]
            for entry in os.listdir(self.directory)
            if entry.endswith(SPOOL_SUFFIX)
        )

    def read_stream(self, name: str) -> list:
        """All valid frames of one spooled stream, damage skipped."""
        decoder = FrameDecoder()
        frames: list = []
        with open(os.path.join(self.directory, name + SPOOL_SUFFIX), "rb") as fh:
            while True:
                chunk = fh.read(self.CHUNK)
                if not chunk:
                    break
                frames.extend(decoder.feed(chunk))
        decoder.finish()
        self.corrupt_frames += decoder.corrupt_frames
        self.frames_decoded += decoder.frames_decoded
        self.bytes_received += decoder.bytes_received
        return frames

    def streams(self) -> Iterator[tuple]:
        for name in self.stream_names():
            yield name, self.read_stream(name)


def connect_with_retry(
    host: str,
    port: int,
    attempts: int = 8,
    base_delay: float = 0.05,
    seed: int = 20210401,
    sleep: Callable[[float], None] = None,
) -> socket.socket:
    """Connect to the aggregator, retrying with jittered backoff.

    Vantages and aggregator start in arbitrary order; a refused
    connection sleeps ``base_delay * 2**attempt`` scaled by a seeded
    jitter in ``[0.5, 1.0)`` and tries again.  After ``attempts``
    failures the last error is re-raised as :class:`TransportError`.
    """
    import time

    if sleep is None:
        sleep = time.sleep
    rng = SeededRng(seed, f"federate-connect:{host}:{port}")
    last_error: Optional[Exception] = None
    for attempt in range(attempts):
        try:
            return socket.create_connection((host, port))
        except OSError as exc:
            last_error = exc
            if attempt + 1 < attempts:
                jitter = 0.5 + rng.random() / 2.0
                sleep(base_delay * (2.0 ** attempt) * jitter)
    raise TransportError(
        f"could not connect to {host}:{port} after {attempts} attempts"
    ) from last_error


class SocketSender:
    """Stream frames to the aggregator over one TCP connection."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.frames_written = 0
        self.bytes_written = 0

    def send(self, frame_bytes: bytes) -> None:
        self._sock.sendall(frame_bytes)
        self.frames_written += 1
        self.bytes_written += len(frame_bytes)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "SocketSender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FederationListener:
    """Aggregator-side listener accepting K vantage connections.

    Bind with ``port=0`` to let the kernel pick a free port (read it
    back from ``.port``).  ``accept_streams(k)`` accepts ``k``
    connections sequentially and decodes each connection's bytes to a
    frame list — vantage order is arrival order, which is why every
    stream self-identifies with its ``hello`` frame rather than
    relying on connection order.
    """

    CHUNK = 1 << 16

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._server.bind((host, port))
        except OSError as exc:
            self._server.close()
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._server.listen()
        self.host, self.port = self._server.getsockname()[:2]
        self.corrupt_frames = 0
        self.frames_decoded = 0
        self.bytes_received = 0

    def accept_stream(self) -> list:
        """Accept one connection and decode it to completion."""
        conn, _addr = self._server.accept()
        decoder = FrameDecoder()
        frames: list = []
        with conn:
            while True:
                chunk = conn.recv(self.CHUNK)
                if not chunk:
                    break
                frames.extend(decoder.feed(chunk))
        decoder.finish()
        self.corrupt_frames += decoder.corrupt_frames
        self.frames_decoded += decoder.frames_decoded
        self.bytes_received += decoder.bytes_received
        return frames

    def accept_streams(self, count: int) -> Iterator[list]:
        for _ in range(count):
            yield self.accept_stream()

    def close(self) -> None:
        self._server.close()

    def __enter__(self) -> "FederationListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def drain_frames(sink, frames: Iterable[bytes]) -> int:
    """Send every encoded frame through ``sink`` (writer or sender)."""
    count = 0
    for frame_bytes in frames:
        sink.send(frame_bytes)
        count += 1
    return count
