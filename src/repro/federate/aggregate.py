"""The federation aggregator: K vantage streams → one global result.

The aggregator ingests per-vantage frame streams (from a file spool
or a socket listener — :mod:`repro.federate.transport`), rehydrates
each vantage's final :class:`~repro.core.pipeline.PartialState`, and
produces three things:

- the **global result** — the vantage states merged with
  :func:`repro.federate.merge.merge_federated_states` and finalized
  through the ordinary pipeline, bit-identical to a single telescope
  over the whole prefix (pinned by
  ``tests/test_federation_equivalence.py``);
- **per-vantage results** — each state finalized on its own, which is
  what a telescope operator who *doesn't* federate would publish;
- the **cross-telescope dedup** — the same flood backscatters into
  every tile whose addresses the victim's spoofed traffic covers, so
  per-vantage flood lists overcount.  Floods with the same victim and
  vector whose windows chain within the session timeout collapse into
  one :class:`GlobalFlood` carrying a per-vantage visibility map;
  every collapsed duplicate counts as a *dedup hit*.

The federation report renders the global section, a per-vantage
differential (what each tile saw alone, including floods *only* it
saw), and the extrapolation check: each vantage's packet count scaled
by its tile's share of the federation prefix, compared against the
federation's actual observation — the single-telescope extrapolation
the paper applies to the /9, validated against ground truth here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro import obs
from repro.core.pipeline import PartialState, PipelineResult, QuicsandPipeline
from repro.core.report import build_report
from repro.federate.merge import merge_federated_states
from repro.federate.protocol import (
    BYE,
    FINAL_STATE,
    HELLO,
    OBS,
    SCHEMA_VERSION,
    SKETCH,
    STATE,
    Frame,
    ProtocolError,
)
from repro.federate.transport import FederationListener, SpoolReader
from repro.net.addresses import IPv4Network, format_ipv4
from repro.util.render import format_table

M_MERGE = obs.histogram(
    "repro_federate_merge_seconds",
    "wall time of the federated state merge + global finalization",
)
M_DEDUP = obs.counter(
    "repro_federate_dedup_hits_total",
    "per-vantage flood sightings collapsed into an existing global flood",
)
M_LAG = obs.gauge(
    "repro_federate_vantage_lag_seconds",
    "event-time gap between a vantage's last packet and the federation horizon",
    labels=("vantage",),
)


@dataclass
class VantageStream:
    """One ingested vantage frame stream."""

    name: str
    prefix: Optional[str] = None
    mode: str = "exact"
    #: the final-state payload is kept as bytes and rehydrated on
    #: demand — the aggregator needs two *independent* copies (the
    #: global merge and the per-vantage finalization both mutate).
    state_bytes: Optional[bytes] = None
    sketch: Optional[dict] = None
    obs_snapshot: Optional[dict] = None
    bye: Optional[dict] = None
    frames: int = 0
    interim_states: int = 0

    def state(self) -> PartialState:
        """A fresh rehydration of the final state."""
        if self.state_bytes is None:
            raise ProtocolError(
                f"vantage {self.name!r} shipped no final-state frame"
            )
        return PartialState.from_snapshot_bytes(self.state_bytes)


@dataclass
class GlobalFlood:
    """One deduplicated federation-wide flood."""

    vector: str
    victim_ip: int
    start: float
    end: float
    max_pps: float
    #: vantage name → packets that vantage's tile attributed to the
    #: flood (the visibility map; len > 1 means the dedup collapsed
    #: multiple sightings).
    vantages: Dict[str, int] = field(default_factory=dict)

    @property
    def packet_count(self) -> int:
        return sum(self.vantages.values())


@dataclass
class FederationResult:
    """Everything :meth:`Aggregator.federate` produces."""

    global_result: PipelineResult
    vantage_results: Dict[str, PipelineResult]
    streams: List[VantageStream]
    global_floods: List[GlobalFlood]
    dedup_hits: int
    corrupt_frames: int
    merge_seconds: float
    #: vantage name → extrapolation check row (tile share, scaled
    #: estimate, estimate / federation observation).
    extrapolation: Dict[str, dict] = field(default_factory=dict)


class Aggregator:
    """Merge K vantage frame streams into a federation result."""

    def __init__(
        self, pipeline: QuicsandPipeline, research_weight: float = 1.0
    ) -> None:
        self.pipeline = pipeline
        self.research_weight = research_weight
        self.streams: List[VantageStream] = []
        self.corrupt_frames = 0

    # -- ingestion ---------------------------------------------------------

    def ingest_frames(self, fallback_name: str, frames: Iterable[Frame]) -> VantageStream:
        """Fold one decoded frame stream into a :class:`VantageStream`.

        The ``hello`` handshake names the stream and carries the
        payload schema version — a mismatch raises
        :class:`~repro.federate.protocol.ProtocolError` instead of
        unpickling blind.  A stream whose ``hello`` was lost to damage
        keeps ``fallback_name`` and default metadata; only a missing
        final state makes the stream unusable (surfaced later by
        :meth:`VantageStream.state`).
        """
        stream = VantageStream(name=fallback_name)
        for frame in frames:
            stream.frames += 1
            if frame.kind == HELLO:
                meta = frame.json()
                if meta.get("schema") != SCHEMA_VERSION:
                    raise ProtocolError(
                        f"vantage {meta.get('vantage')!r} speaks payload "
                        f"schema {meta.get('schema')!r}, expected {SCHEMA_VERSION}"
                    )
                stream.name = meta.get("vantage", fallback_name)
                stream.prefix = meta.get("prefix")
                stream.mode = meta.get("mode", "exact")
            elif frame.kind == STATE:
                stream.interim_states += 1
            elif frame.kind == FINAL_STATE:
                stream.state_bytes = frame.payload
            elif frame.kind == SKETCH:
                stream.sketch = frame.unpickle()
            elif frame.kind == OBS:
                stream.obs_snapshot = frame.unpickle()
                if obs.enabled():
                    obs.REGISTRY.merge_snapshot(stream.obs_snapshot)
            elif frame.kind == BYE:
                stream.bye = frame.json()
        self.streams.append(stream)
        return stream

    def consume_spool(self, directory: str) -> List[VantageStream]:
        """Ingest every ``*.qsf`` stream spooled into ``directory``."""
        reader = SpoolReader(directory)
        ingested = []
        for name, frames in reader.streams():
            ingested.append(self.ingest_frames(name, frames))
        self.corrupt_frames += reader.corrupt_frames
        return ingested

    def consume_listener(
        self, listener: FederationListener, count: int
    ) -> List[VantageStream]:
        """Accept ``count`` socket connections and ingest each stream."""
        ingested = []
        for index, frames in enumerate(listener.accept_streams(count)):
            ingested.append(self.ingest_frames(f"vantage-{index}", frames))
        self.corrupt_frames += listener.corrupt_frames
        return ingested

    # -- federation --------------------------------------------------------

    def federate(self) -> FederationResult:
        """Merge every ingested stream into the federation result."""
        if not self.streams:
            raise ValueError("no vantage streams ingested")
        started = time.perf_counter()
        config = self.pipeline.config
        states = [stream.state() for stream in self.streams]
        merged = merge_federated_states(states, config)
        global_result = self.pipeline.finalize_state(merged)
        vantage_results = {}
        for stream in self.streams:
            vantage_results[stream.name] = self.pipeline.finalize_state(
                stream.state()
            )
        global_floods, dedup_hits = self._dedup(
            vantage_results, config.session_timeout
        )
        merge_seconds = time.perf_counter() - started
        extrapolation = self._extrapolation(global_result)
        if obs.enabled():
            M_MERGE.observe(merge_seconds)
            if dedup_hits:
                M_DEDUP.inc(dedup_hits)
            horizon = global_result.window_end
            for stream in self.streams:
                result = vantage_results[stream.name]
                M_LAG.set(
                    max(0.0, horizon - result.window_end), vantage=stream.name
                )
        return FederationResult(
            global_result=global_result,
            vantage_results=vantage_results,
            streams=list(self.streams),
            global_floods=global_floods,
            dedup_hits=dedup_hits,
            corrupt_frames=self.corrupt_frames,
            merge_seconds=merge_seconds,
            extrapolation=extrapolation,
        )

    def _dedup(
        self, vantage_results: Dict[str, PipelineResult], timeout: float
    ) -> tuple:
        """Collapse per-vantage flood sightings into global floods.

        Two sightings are the same flood when vector and victim match
        and their windows chain within the session timeout — the same
        gap rule that splits sessions, applied across telescopes.
        """
        sightings: dict = {}
        for name in sorted(vantage_results):
            result = vantage_results[name]
            for attack in result.quic_attacks + result.common_attacks:
                key = (attack.vector, attack.victim_ip)
                sightings.setdefault(key, []).append((attack, name))
        floods: List[GlobalFlood] = []
        dedup_hits = 0
        for (vector, victim), seen in sightings.items():
            seen.sort(key=lambda pair: (pair[0].start, pair[1]))
            current: Optional[GlobalFlood] = None
            for attack, name in seen:
                if current is not None and attack.start - current.end <= timeout:
                    if name in current.vantages:
                        current.vantages[name] += attack.packet_count
                    else:
                        current.vantages[name] = attack.packet_count
                        dedup_hits += 1
                    current.end = max(current.end, attack.end)
                    current.start = min(current.start, attack.start)
                    current.max_pps = max(current.max_pps, attack.max_pps)
                else:
                    current = GlobalFlood(
                        vector=vector,
                        victim_ip=victim,
                        start=attack.start,
                        end=attack.end,
                        max_pps=attack.max_pps,
                        vantages={name: attack.packet_count},
                    )
                    floods.append(current)
        floods.sort(key=lambda f: (f.start, f.victim_ip, f.vector))
        return floods, dedup_hits

    def _extrapolation(self, global_result: PipelineResult) -> Dict[str, dict]:
        """Each tile's scaled packet estimate vs the federation total.

        The paper extrapolates /9 observations to the full address
        space by the prefix-share factor; the federation lets us test
        that logic one level down: scale each tile's count by
        ``federation size / tile size`` and compare with what the
        federation actually captured.
        """
        checks: Dict[str, dict] = {}
        tiles = []
        for stream in self.streams:
            if stream.prefix:
                try:
                    tiles.append(IPv4Network.from_cidr(stream.prefix))
                except ValueError:
                    tiles.append(None)
            else:
                tiles.append(None)
        known = [net for net in tiles if net is not None]
        federation_size = sum(net.size for net in known) or 1
        global_packets = global_result.total_packets
        for stream, net in zip(self.streams, tiles):
            state = stream.state()
            share = (net.size / federation_size) if net is not None else 1.0
            estimate = state.total_packets / share if share else 0.0
            checks[stream.name] = {
                "prefix": stream.prefix,
                "share": share,
                "packets": state.total_packets,
                "estimate": estimate,
                "ratio": (estimate / global_packets) if global_packets else 0.0,
            }
        return checks

    # -- rendering ---------------------------------------------------------

    def report(self, fed: FederationResult) -> str:
        """The federation report: global summary, dedup table,
        per-vantage differential, extrapolation check, then the full
        single-telescope report of the merged global result."""
        sections = [
            self._summary_section(fed),
            self._flood_section(fed),
            self._differential_section(fed),
            self._extrapolation_section(fed),
            build_report(fed.global_result, research_weight=self.research_weight),
        ]
        return ("\n" + "=" * 72 + "\n").join(s for s in sections if s)

    def _summary_section(self, fed: FederationResult) -> str:
        modes = ", ".join(
            f"{stream.name} ({stream.mode})" for stream in fed.streams
        )
        rows = [
            ["vantages", f"{len(fed.streams)}: {modes}"],
            ["frames ingested", str(sum(s.frames for s in fed.streams))],
            ["corrupt frames skipped", str(fed.corrupt_frames)],
            ["global floods", str(len(fed.global_floods))],
            ["dedup hits", str(fed.dedup_hits)],
            ["merge + finalize", f"{fed.merge_seconds:.3f}s"],
        ]
        return format_table(
            ["metric", "value"], rows, title="Federation overview"
        )

    def _flood_section(self, fed: FederationResult) -> str:
        if not fed.global_floods:
            return ""
        rows = []
        for flood in fed.global_floods:
            rows.append(
                [
                    flood.vector,
                    format_ipv4(flood.victim_ip),
                    f"{flood.end - flood.start:.0f}s",
                    f"{flood.packet_count:,}",
                    f"{flood.max_pps:.1f}",
                    ",".join(sorted(flood.vantages)),
                ]
            )
        return format_table(
            ["vector", "victim", "duration", "packets", "max pps", "seen by"],
            rows,
            title="Global floods (cross-telescope dedup)",
        )

    def _differential_section(self, fed: FederationResult) -> str:
        rows = []
        for stream in fed.streams:
            result = fed.vantage_results[stream.name]
            local = len(result.quic_attacks) + len(result.common_attacks)
            exclusive = sum(
                1
                for flood in fed.global_floods
                if set(flood.vantages) == {stream.name}
            )
            lag = fed.global_result.window_end - result.window_end
            rows.append(
                [
                    stream.name,
                    stream.prefix or "(full)",
                    f"{result.total_packets:,}",
                    str(local),
                    str(exclusive),
                    f"{max(0.0, lag):.0f}s",
                ]
            )
        return format_table(
            ["vantage", "prefix", "packets", "floods", "exclusive", "lag"],
            rows,
            title="Per-vantage differential",
        )

    def _extrapolation_section(self, fed: FederationResult) -> str:
        rows = []
        for name, check in fed.extrapolation.items():
            rows.append(
                [
                    name,
                    check["prefix"] or "(full)",
                    f"{check['share'] * 100:.1f}%",
                    f"{check['packets']:,}",
                    f"{check['estimate']:,.0f}",
                    f"{check['ratio']:.2f}x",
                ]
            )
        return format_table(
            ["vantage", "prefix", "share", "packets", "estimate", "vs federation"],
            rows,
            title="Extrapolation check (tile estimate vs federation)",
        )
