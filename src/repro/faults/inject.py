"""The seeded fault injector.

Wraps a time-ordered :class:`~repro.net.packet.CapturedPacket` stream
and applies the faults of a :class:`~repro.faults.spec.FaultSpec`.
Every stochastic decision draws from its own labelled
:class:`~repro.util.rng.SeededRng` child, so enabling one fault kind
never perturbs another kind's stream and a given ``(spec, seed)`` pair
always produces the same faulted capture — the property the
equivalence suite leans on.

Two invariants matter for downstream analysis:

- **Time order is preserved.**  Inserted garbage and duplicates reuse
  the current packet's timestamp, and a reorder swaps packet
  *contents* while keeping the original timestamp sequence (the
  capture tap stamps arrival time, so reordering is modelled as two
  arrivals whose payloads changed places).  The pipeline's
  time-ordered-stream contract therefore still holds.
- **Faults are injected upstream, once.**  The injector sits between
  the feed and the analysis, so serial, parallel, and streaming runs
  of the same faulted scenario see byte-identical packets.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro import obs
from repro.faults.spec import FAULT_KINDS, FaultSpec
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.util.batching import batched
from repro.util.rng import SeededRng

#: default injector seed (distinct from scenario seeds so a faulted
#: run of scenario N is not accidentally correlated with its traffic).
DEFAULT_FAULT_SEED = 0xFA017

_QUIC_PORT = 443
_MAX_GARBAGE_PAYLOAD = 64

_M_FAULTS = obs.counter(
    "repro_faults_injected_total",
    "faults injected into the packet stream, per kind "
    "(see docs/ROBUSTNESS.md for the taxonomy)",
    labels=("kind",),
)


class FaultInjector:
    """Applies a :class:`FaultSpec` to packet streams, deterministically.

    ``stats`` tallies applied faults per kind; ``summary()`` renders
    them for the CLI.  The registry counter
    ``repro_faults_injected_total{kind}`` is published when a wrapped
    stream finishes (including early exits), never per packet.
    """

    def __init__(
        self, spec: FaultSpec, seed: int = DEFAULT_FAULT_SEED
    ) -> None:
        self.spec = spec
        self.seed = seed
        root = SeededRng(seed, "faults")
        # split() derives the same seeds as child() but rejects label
        # reuse, so each fault kind provably owns its own stream
        self._rng = {kind: root.split(f"faults:{kind}") for kind in FAULT_KINDS}
        self.stats: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._published: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- stream wrapping ---------------------------------------------------

    def wrap(self, stream: Iterable[CapturedPacket]) -> Iterator[CapturedPacket]:
        """Yield the faulted view of a time-ordered packet stream."""
        if not self.spec.enabled():
            yield from stream
            return
        try:
            yield from self._reorder(self._per_packet(iter(stream)))
        finally:
            self._publish()

    def wrap_batches(
        self, feed: Iterable[list], batch_size: int = 512
    ) -> Iterator[list]:
        """Faulted view of a batch feed (flattens, faults, rebatches).

        Rebatching is safe: streaming results are independent of batch
        boundaries (asserted by the batch-size-independence test).
        """
        if not self.spec.enabled():
            yield from feed
            return
        packets = (packet for batch in feed for packet in batch)
        yield from batched(self.wrap(packets), batch_size)

    # -- per-kind stages ---------------------------------------------------

    def _per_packet(
        self, stream: Iterator[CapturedPacket]
    ) -> Iterator[CapturedPacket]:
        spec = self.spec
        stats = self.stats
        rng_interrupt = self._rng["interrupt"]
        rng_drop = self._rng["drop"]
        rng_garbage = self._rng["garbage"]
        rng_duplicate = self._rng["duplicate"]
        for packet in stream:
            if spec.interrupt and rng_interrupt.random() < spec.interrupt:
                stats["interrupt"] += 1
                return
            if spec.drop and rng_drop.random() < spec.drop:
                stats["drop"] += 1
                continue
            if spec.garbage and rng_garbage.random() < spec.garbage:
                stats["garbage"] += 1
                yield self._garbage_packet(packet, rng_garbage)
            packet = self._mutate_payload(packet)
            yield packet
            if spec.duplicate and rng_duplicate.random() < spec.duplicate:
                stats["duplicate"] += 1
                yield _copy(packet, packet.timestamp)

    def _mutate_payload(self, packet: CapturedPacket) -> CapturedPacket:
        spec = self.spec
        stats = self.stats
        payload = packet.payload
        mutated = False
        if spec.zero and self._rng["zero"].random() < spec.zero:
            if payload:
                payload = b""
                mutated = True
                stats["zero"] += 1
        if spec.truncate and self._rng["truncate"].random() < spec.truncate:
            if len(payload) > 1:
                payload = payload[: self._rng["truncate"].randint(1, len(payload) - 1)]
                mutated = True
                stats["truncate"] += 1
        if spec.byteflip and self._rng["byteflip"].random() < spec.byteflip:
            if payload:
                rng = self._rng["byteflip"]
                index = rng.randint(0, len(payload) - 1)
                old = payload[index]
                new = (old + rng.randint(1, 255)) & 0xFF
                payload = payload[:index] + bytes([new]) + payload[index + 1 :]
                mutated = True
                stats["byteflip"] += 1
        if spec.bitflip and self._rng["bitflip"].random() < spec.bitflip:
            if payload:
                rng = self._rng["bitflip"]
                index = rng.randint(0, len(payload) - 1)
                bit = 1 << rng.randint(0, 7)
                payload = (
                    payload[:index]
                    + bytes([payload[index] ^ bit])
                    + payload[index + 1 :]
                )
                mutated = True
                stats["bitflip"] += 1
        if not mutated:
            return packet
        return CapturedPacket(
            timestamp=packet.timestamp,
            ip=packet.ip,
            transport=packet.transport,
            payload=payload,
        )

    def _reorder(
        self, stream: Iterator[CapturedPacket]
    ) -> Iterator[CapturedPacket]:
        spec = self.spec
        if not spec.reorder:
            yield from stream
            return
        rng = self._rng["reorder"]
        held: CapturedPacket | None = None
        for packet in stream:
            if held is not None:
                # the held packet's contents arrive late: its successor's
                # contents take the earlier timestamp, its own take the
                # later one, so the stream stays time-ordered.
                yield _copy(packet, held.timestamp)
                yield _copy(held, packet.timestamp)
                self.stats["reorder"] += 1
                held = None
            elif rng.random() < spec.reorder:
                held = packet
            else:
                yield packet
        if held is not None:
            yield held  # no successor to swap with: emit unchanged

    def _garbage_packet(
        self, reference: CapturedPacket, rng: SeededRng
    ) -> CapturedPacket:
        """A non-QUIC UDP/443 datagram aimed at the same telescope.

        Destination follows the packet it rides next to (so it lands in
        the observed prefix); the source is a fresh random address, the
        payload short random bytes — the stray-UDP bulk of PAPER.md §3.
        """
        src = rng.randint(0x01000000, 0xDFFFFFFF)
        src_port = rng.randint(1024, 65535)
        payload = rng.randbytes(rng.randint(1, _MAX_GARBAGE_PAYLOAD))
        return CapturedPacket(
            timestamp=reference.timestamp,
            ip=IPv4Header(src=src, dst=reference.dst, proto=int(IPProto.UDP)),
            transport=UdpHeader(src_port=src_port, dst_port=_QUIC_PORT),
            payload=payload,
        )

    # -- reporting ---------------------------------------------------------

    def _publish(self) -> None:
        if not obs.enabled():
            return
        for kind, count in self.stats.items():
            delta = count - self._published[kind]
            if delta:
                self._published[kind] = count
                _M_FAULTS.inc(delta, kind=kind)

    def summary(self) -> str:
        """One line for the CLI: applied fault counts, skipping zeros."""
        parts = [
            f"{kind}={count}" for kind, count in self.stats.items() if count
        ]
        applied = " ".join(parts) if parts else "none applied"
        return (
            f"faults[spec={self.spec.render()} seed={self.seed}]: {applied}"
        )


def _copy(packet: CapturedPacket, timestamp: float) -> CapturedPacket:
    return CapturedPacket(
        timestamp=timestamp,
        ip=packet.ip,
        transport=packet.transport,
        payload=packet.payload,
    )
