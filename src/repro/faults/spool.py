"""Federation spool corruption — the frame-stream twin of
:mod:`repro.faults.pcap`.

Walks the :mod:`repro.federate.protocol` frame framing of a spooled
byte string and damages frames at a seeded per-frame rate, so the
lenient :class:`~repro.federate.protocol.FrameDecoder` skip-and-count
path can be exercised with a known answer: every corruption applied
here is recoverable and costs the decoder exactly one
``corrupt_frames`` tick, so a fully lenient read reports exactly the
returned count.
"""

from __future__ import annotations

from repro.federate.protocol import HEADER_SIZE, MAGIC, _CODE_KINDS, _HEADER
from repro.util.rng import SeededRng


def corrupt_frame_bytes(
    data: bytes,
    rng: SeededRng,
    rate: float = 0.1,
    kinds: tuple = ("header", "payload"),
    spare_kinds: tuple = (),
) -> tuple[bytes, int]:
    """Corrupt a federation frame stream in memory; returns ``(bytes, n)``.

    With probability ``rate`` per frame, applies one corruption drawn
    from ``kinds``:

    - ``"header"`` — clobber the protocol-version byte (the decoder
      rejects the header, drops the magic, and rescans);
    - ``"payload"`` — flip a payload byte (or, for empty payloads, a
      checksum byte) so the CRC no longer matches.

    Both are *countable*: the decoder charges exactly one corrupt
    frame per damaged frame, even for adjacent damage, so ``n`` is the
    exact expected ``corrupt_frames``.  Frames whose kind name is in
    ``spare_kinds`` are never touched — equivalence tests spare the
    ``hello``/``final-state`` frames and damage only interim traffic,
    keeping the merged result intact while the skip path still fires.
    """
    if not kinds:
        raise ValueError("kinds must name at least one corruption")
    out = bytearray(data)
    offset = 0
    corrupted = 0
    while offset + HEADER_SIZE <= len(data):
        magic, _version, code, _seq, length, _crc = _HEADER.unpack_from(
            data, offset
        )
        if magic != MAGIC:
            break  # already out of framing: leave the tail alone
        frame_end = offset + HEADER_SIZE + length
        if frame_end > len(data):
            break  # truncated tail frame: leave as-is
        kind = _CODE_KINDS.get(code)
        if kind not in spare_kinds and rng.random() < rate:
            choice = kinds[0] if len(kinds) == 1 else rng.choice(list(kinds))
            if choice == "header":
                out[offset + 4] = 0xFF  # impossible protocol version
            elif choice == "payload":
                if length:
                    out[offset + HEADER_SIZE] ^= 0xFF
                else:
                    out[offset + HEADER_SIZE - 1] ^= 0xFF  # last CRC byte
            else:
                raise ValueError(f"unknown corruption kind {choice!r}")
            corrupted += 1
        offset = frame_end
    return bytes(out), corrupted
