"""Deterministic fault injection for robustness testing.

A telescope pipeline must survive arbitrary Internet garbage; this
package *manufactures* that garbage reproducibly.  A
:class:`~repro.faults.spec.FaultSpec` describes per-packet corruption
rates (bit/byte flips, truncation, zeroed payloads, garbage UDP/443
datagrams, duplicates, drops, reorders, mid-stream interruption) and a
:class:`~repro.faults.inject.FaultInjector` applies them to any packet
stream or batch feed, driven entirely by labelled
:class:`~repro.util.rng.SeededRng` children — the same spec and seed
always yield the same faulted stream, which is what lets
``tests/test_faults_equivalence.py`` assert bit-identical results
across the serial, parallel, and streaming analysis paths.

:mod:`repro.faults.pcap` corrupts pcap *container* bytes (record
headers and bodies) to exercise the lenient reader's skip-and-count
path.  The CLI exposes all of it via ``--faults`` / ``--fault-seed``
on ``analyze``/``report``/``watch`` (see ``docs/ROBUSTNESS.md``).
"""

from repro.faults.inject import FaultInjector
from repro.faults.pcap import corrupt_pcap_bytes
from repro.faults.spec import FAULT_KINDS, FaultSpec, FaultSpecError
from repro.faults.spool import corrupt_frame_bytes

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "corrupt_frame_bytes",
    "corrupt_pcap_bytes",
]
