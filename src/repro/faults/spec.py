"""The fault-scenario specification and its CLI grammar.

A spec is a set of per-packet rates, one per fault kind.  On the
command line it is written as a comma-separated list of
``kind=rate`` terms::

    --faults bitflip=0.01,drop=0.005,garbage=0.02

``none`` (or an empty string) means "no faults" — handy for scripted
matrices where the fault column is sometimes off.  Rates are
probabilities in ``[0, 1]``; unknown kinds and out-of-range rates
raise :class:`FaultSpecError` so a typo fails fast instead of silently
running a clean stream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: every fault kind, in application order (documented in
#: docs/ROBUSTNESS.md; the sync test keeps the table honest).
FAULT_KINDS = (
    "bitflip",
    "byteflip",
    "truncate",
    "zero",
    "garbage",
    "duplicate",
    "drop",
    "reorder",
    "interrupt",
)


class FaultSpecError(ValueError):
    """Raised for an unparseable ``--faults`` specification."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-packet fault rates; all default to "never".

    - ``bitflip`` — flip one random bit of the payload
    - ``byteflip`` — overwrite one random payload byte
    - ``truncate`` — cut the payload at a random earlier offset
    - ``zero`` — replace the payload with zero bytes
    - ``garbage`` — insert a random non-QUIC UDP/443 datagram
    - ``duplicate`` — emit the packet twice
    - ``drop`` — silently discard the packet
    - ``reorder`` — swap the packet's contents with its successor's
      (timestamps keep their original order: the capture tap stamps
      arrival time, so a reordered pair is two arrivals whose payloads
      changed places)
    - ``interrupt`` — end the stream at this packet (per-packet
      probability of a mid-capture feed death)
    """

    bitflip: float = 0.0
    byteflip: float = 0.0
    truncate: float = 0.0
    zero: float = 0.0
    garbage: float = 0.0
    duplicate: float = 0.0
    drop: float = 0.0
    reorder: float = 0.0
    interrupt: float = 0.0

    def __post_init__(self) -> None:
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"{spec_field.name} rate {value!r} outside [0, 1]"
                )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``kind=rate,...`` grammar.

        >>> FaultSpec.parse("bitflip=0.25,drop=0.1")
        FaultSpec(bitflip=0.25, ..., drop=0.1, ...)
        >>> FaultSpec.parse("none").enabled()
        False
        """
        text = text.strip()
        if not text or text.lower() == "none":
            return cls()
        rates: dict[str, float] = {}
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            kind, sep, raw = term.partition("=")
            kind = kind.strip()
            if not sep:
                raise FaultSpecError(
                    f"fault term {term!r} is not of the form kind=rate"
                )
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
            if kind in rates:
                raise FaultSpecError(f"fault kind {kind!r} given twice")
            try:
                rate = float(raw)
            except ValueError as exc:
                raise FaultSpecError(
                    f"fault rate {raw!r} for {kind!r} is not a number"
                ) from exc
            rates[kind] = rate
        return cls(**rates)

    def enabled(self) -> bool:
        """Whether any fault kind has a nonzero rate."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    def render(self) -> str:
        """The spec back in CLI grammar (``none`` when disabled)."""
        terms = [
            f"{kind}={getattr(self, kind):g}"
            for kind in FAULT_KINDS
            if getattr(self, kind) > 0.0
        ]
        return ",".join(terms) if terms else "none"
