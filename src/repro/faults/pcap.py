"""Deterministic pcap *container* corruption.

The injector in :mod:`repro.faults.inject` corrupts packets; this
module corrupts the file framing around them — record headers with
absurd lengths and bodies that no longer parse as IPv4 — which is what
the lenient reader (:class:`repro.net.pcap.PcapReader` with
``lenient=True``) must skip-and-count.  Used by the robustness tests
and benchmarks; corruption sites are drawn from a
:class:`~repro.util.rng.SeededRng`, so a corrupted fixture is
reproducible from its seed.
"""

from __future__ import annotations

import struct

from repro.net.pcap import PcapFormatError
from repro.util.rng import SeededRng

_GLOBAL_SIZE = 24
_RECORD = struct.Struct("<IIII")
_U32_LE = struct.Struct("<I")

#: a caplen no plausibility check accepts (> SNAPLEN).
_ABSURD_CAPLEN = 0x7FFF_FFFF


def corrupt_pcap_bytes(
    data: bytes,
    rng: SeededRng,
    rate: float = 0.1,
    kinds: tuple = ("header", "body"),
) -> tuple[bytes, int]:
    """Corrupt a little-endian pcap in memory; returns ``(bytes, n)``.

    Walks the record framing and, with probability ``rate`` per record,
    applies one corruption drawn from ``kinds``:

    - ``"header"`` — overwrite the record's caplen with an absurd value
      (the reader loses framing and must resync);
    - ``"body"`` — clobber the first body byte so the record no longer
      parses as an IPv4 packet (the reader skips it).

    ``n`` is the number of corrupted records — the exact value a fully
    lenient read should report in ``corrupt_records`` when every
    corruption is recoverable.
    """
    if not kinds:
        raise ValueError("kinds must name at least one corruption")
    out = bytearray(data)
    offset = _GLOBAL_SIZE
    if len(data) < _GLOBAL_SIZE:
        raise PcapFormatError("not a pcap: shorter than the global header")
    corrupted = 0
    while offset + _RECORD.size <= len(data):
        _seconds, _fraction, caplen, _origlen = _RECORD.unpack_from(data, offset)
        body_start = offset + _RECORD.size
        body_end = body_start + caplen
        if body_end > len(data):
            break  # truncated tail record: leave as-is
        if rng.random() < rate:
            kind = kinds[0] if len(kinds) == 1 else rng.choice(list(kinds))
            if kind == "header":
                _U32_LE.pack_into(out, offset + 8, _ABSURD_CAPLEN)
            elif kind == "body" and caplen:
                out[body_start] = 0x00  # IPv4 version nibble becomes 0
            else:
                raise ValueError(f"unknown corruption kind {kind!r}")
            corrupted += 1
        offset = body_end
    return bytes(out), corrupted
