"""The online telescope monitor: QUICsand analysis over an unbounded feed.

:class:`StreamAnalyzer` runs the same classify → dissect → sessionize
machinery as the batch :class:`~repro.core.pipeline.QuicsandPipeline`
(it literally accumulates the same
:class:`~repro.core.pipeline.PartialState`), with three streaming
additions:

1. **Watermark-driven session expiry** — after every batch the
   event-time watermark (newest timestamp minus an allowed lateness)
   advances and sessions idle past the timeout are closed.  On a
   time-ordered stream this closes exactly the sessions the batch
   sessionizer would close, with identical contents (see
   :meth:`repro.core.sessions.Sessionizer.expire`), which is why the
   exact mode reproduces batch results bit for bit.
2. **Incremental flood detection** — a per-packet hook on the
   backscatter sessionizers threshold-checks each updated session, so
   a :class:`~repro.stream.events.FloodAlert` fires the moment a
   session crosses the Moore thresholds (monotone conditions make the
   crossing packet exact), and an
   :class:`~repro.stream.events.AttackEnded` follows when the session
   expires — with an online multi-vector category from the sliding
   common-flood window.
3. **Bounded memory** (``StreamConfig(mode="bounded")``) — closed
   sessions are folded into running summaries and evicted, the
   per-packet timeout sweep is disabled, and per-source tallies are
   pruned on every hour rollover down to *open* sources plus
   research-threshold heavy hitters.  Memory is then proportional to
   active sources (plus the alert history and the rolling hour window),
   not capture size; telemetry reports the live/evicted counts.
4. **Sketch mode** (``StreamConfig(mode="sketch")``) — no sessions and
   no per-source dicts at all: per-packet updates land in the
   fixed-size structures of :mod:`repro.stream.sketch` (count-min
   source tallies, space-saving heavy-hitter victims carrying flood
   episodes, HyperLogLog cardinalities), and alerts fire when the
   space-saving *lower bound* crosses the Moore thresholds.  Memory is
   constant in source cardinality;
   ``benchmarks/bench_sketch_accuracy.py`` measures alert
   precision/recall against the exact mode and enforces the ceiling.

Exact mode (the default) retains the full state: after ``finish()``,
``result()`` runs the batch finalization and returns a
``PipelineResult`` identical to ``QuicsandPipeline.process`` over the
same capture — asserted in ``tests/test_stream_equivalence.py``.  The
other modes surrender ``result()`` (it raises the structured
:class:`StreamResultUnavailable` naming the alternatives) in exchange
for their memory ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro import obs
from repro.core.batchlane import BatchLane
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dos import DosDetector
from repro.core.pipeline import AnalysisConfig, PartialState, PipelineResult, QuicsandPipeline
from repro.core.sessions import Session
from repro.stream.correlate import LiveFlood, OnlineCorrelator
from repro.stream.events import AttackEnded, FloodAlert, format_event_time
from repro.stream.sketch.tier import SketchTier
from repro.util.render import format_table
from repro.util.timeutil import HOUR

#: the monitor's state-retention modes, least to most compressed.
STREAM_MODES = ("exact", "bounded", "sketch")

_BACKSCATTER_CLASSES = (
    PacketClass.QUIC_RESPONSE,
    PacketClass.TCP_BACKSCATTER,
    PacketClass.ICMP_BACKSCATTER,
)

# The monitor's observability surface.  :class:`StreamTelemetry` stays
# as the in-process view (status lines, tests poke at its fields); the
# ``repro.obs`` metrics below are the *export* surface — updated at
# batch boundaries and on (rare) alert/eviction events, never per
# packet, and absorbed into `--metrics-out` / `repro stats` output.
_M_BATCH = obs.histogram(
    "repro_stream_batch_seconds",
    "wall seconds per monitor batch (consume + expiry + drain)",
)
_M_LAG = obs.histogram(
    "repro_stream_watermark_lag_seconds",
    "event-time lag from newest packet to the watermark, per batch",
    buckets=obs.LATENCY_BUCKETS,
)
_M_ALERT_LATENCY = obs.histogram(
    "repro_stream_alert_latency_seconds",
    "event-time delay from threshold crossing to alert emission",
    buckets=obs.LATENCY_BUCKETS,
)
_M_ALERTS = obs.counter(
    "repro_stream_alerts_total",
    "flood alerts fired, per vector",
    labels=("vector",),
)
_M_ENDED = obs.counter(
    "repro_stream_attacks_ended_total",
    "flood-ended events emitted, per vector",
    labels=("vector",),
)
_M_EVICTED = obs.counter(
    "repro_stream_evicted_sessions_total",
    "closed sessions evicted in bounded mode",
)
_M_PRUNED_SOURCES = obs.counter(
    "repro_stream_pruned_sources_total",
    "idle per-source tallies pruned on hour rollovers (bounded mode)",
)
_M_PRUNED_HOURS = obs.counter(
    "repro_stream_pruned_hours_total",
    "hourly buckets rolled out of the retain window (bounded mode)",
)
_M_OPEN_SESSIONS = obs.gauge(
    "repro_stream_open_sessions", "sessions currently open"
)
_M_LIVE_SOURCES = obs.gauge(
    "repro_stream_live_sources", "distinct sources with an open session"
)
_M_ACTIVE_FLOODS = obs.gauge(
    "repro_stream_active_floods", "floods past threshold and not yet ended"
)
_M_TRACKED_SOURCES = obs.gauge(
    "repro_stream_tracked_sources",
    "per-source tally map size (the bounded-memory proxy)",
)


class StreamResultUnavailable(RuntimeError):
    """``result()`` needs the full exact state, which this mode traded
    away for its memory ceiling.

    Raised with the mode and the surfaces that *are* available, so the
    message tells the caller where to go instead of dead-ending on a
    bare string.  Subclasses ``RuntimeError`` so pre-existing handlers
    keep working.
    """

    def __init__(self, mode: str, alternatives: tuple) -> None:
        self.mode = mode
        self.alternatives = tuple(alternatives)
        super().__init__(
            f"no batch result available in {mode} mode: session state was "
            "evicted as it closed; use " + " / ".join(self.alternatives)
            + " instead, or rerun with StreamConfig(mode=\"exact\")"
        )


@dataclass
class StreamConfig:
    """Knobs of the online monitor."""

    #: watermark = newest event time − allowed lateness; 0 is exact for
    #: time-ordered feeds, raise it for mildly out-of-order captures.
    allowed_lateness: float = 0.0
    #: evict closed sessions / idle sources and disable the per-packet
    #: timeout sweep, bounding memory by *active* sources.  Disables
    #: the batch-identical ``result()``.  Kept as the boolean spelling
    #: of ``mode="bounded"`` for backward compatibility; ``mode`` wins
    #: when both are given.
    bounded: bool = False
    #: sliding window for online multi-vector correlation.
    correlation_horizon: float = 24 * HOUR
    #: hour buckets kept in the rolling hourly series (bounded/sketch).
    retain_hours: int = 48
    #: state retention: "exact" (full state, batch-identical result),
    #: "bounded" (evict closed sessions, prune idle sources) or
    #: "sketch" (constant memory — repro.stream.sketch structures).
    #: ``None`` derives exact/bounded from the legacy ``bounded`` flag.
    mode: Optional[str] = None
    #: count-min geometry for sketch mode (cells per hash row / rows).
    sketch_width: int = 2048
    sketch_depth: int = 4
    #: space-saving heavy-hitter capacity per backscatter vector.
    sketch_capacity: int = 512
    #: HyperLogLog precision (2**p one-byte registers).
    sketch_precision: int = 12
    #: hash-family seed for every sketch structure.
    sketch_seed: int = 20210401

    def __post_init__(self) -> None:
        if self.mode is None:
            self.mode = "bounded" if self.bounded else "exact"
        if self.mode not in STREAM_MODES:
            raise ValueError(
                f"unknown stream mode {self.mode!r}; pick one of {STREAM_MODES}"
            )
        self.bounded = self.mode == "bounded"


@dataclass
class StreamTelemetry:
    """The monitor's in-process counters and gauges.

    Status lines and tests read these fields directly; the exportable
    view of the same quantities lives in :mod:`repro.obs` (the
    ``repro_stream_*`` families — see ``docs/METRICS.md``), which the
    analyzer keeps in sync at batch boundaries.  New telemetry should
    be added to the registry first and mirrored here only when the
    status line needs it.
    """

    packets: int = 0
    batches: int = 0
    watermark: float = float("-inf")
    newest_ts: float = float("-inf")
    alerts: int = 0
    attacks_ended: int = 0
    evicted_sessions: int = 0
    pruned_sources: int = 0
    pruned_hours: int = 0
    live_sources: int = 0
    open_sessions: int = 0
    peak_live_sources: int = 0
    active_floods: int = 0
    #: size of the per-source tally maps — the bounded-memory proxy.
    #: In sketch mode: monitored heavy-hitter entries (the tally that
    #: replaces the maps).
    tracked_sources: int = 0
    #: corrupt pcap records skipped by a lenient feed (see
    #: ``follow_pcap(lenient=True)``); fed via record_corrupt_records.
    corrupt_records: int = 0
    #: sketch mode: actual bytes in the sketch tally structures.
    sketch_memory_bytes: int = 0
    #: sketch mode: HLL estimates of distinct QUIC sources / victims.
    distinct_sources_est: int = 0
    distinct_victims_est: int = 0

    @property
    def watermark_lag(self) -> float:
        """Event-time distance from the newest packet to the watermark
        (equals the allowed lateness once the stream is flowing)."""
        if self.newest_ts == float("-inf"):
            return 0.0
        return self.newest_ts - self.watermark


class _NullSweep:
    """Timeout-sweep stand-in for bounded mode: recording every
    inter-packet gap is inherently capture-sized, so the sweep is
    disabled rather than evicted."""

    source_count = 0
    packet_count = 0

    def observe(self, source: int, timestamp: float) -> None:
        pass


class StreamAnalyzer:
    """Online QUICsand analysis with live flood alerting."""

    def __init__(
        self,
        registry=None,
        census=None,
        greynoise=None,
        config: Optional[AnalysisConfig] = None,
        stream_config: Optional[StreamConfig] = None,
    ) -> None:
        self.pipeline = QuicsandPipeline(registry, census, greynoise, config)
        self.config = self.pipeline.config
        self.stream_config = stream_config or StreamConfig()
        self.state = PartialState.initial(self.config)
        # the monitor rides the batch fast lane unless the escape hatch
        # (--no-fast-lane) asked for the rich classifier; finish() and
        # record_classifier() are duck-typed over both.
        if self.config.fast_lane:
            self.classifier = BatchLane(
                dissect_payloads=self.config.dissect_payloads
            )
        else:
            self.classifier = TrafficClassifier(
                dissect_payloads=self.config.dissect_payloads
            )
        self.detector = DosDetector(self.config.thresholds)
        self.correlator = OnlineCorrelator(
            horizon=self.stream_config.correlation_horizon
        )
        self.telemetry = StreamTelemetry()
        #: alert history (floods are rare — ~4/hour Internet-wide — so
        #: this stays small even on long runs).
        self.alerts: list = []
        self._pending: list = []
        self._active: dict = {}
        self._cursor = {cls: 0 for cls in self.state.sessionizers}
        self._current_hour: Optional[int] = None
        self._finished = False
        self._floods_by_vector: dict = {}
        self._category_counts: dict = {}
        self._pruned_requests = 0
        self._pruned_responses = 0
        self.sketch: Optional[SketchTier] = None
        if self.stream_config.mode == "sketch":
            self.sketch = SketchTier(
                width=self.stream_config.sketch_width,
                depth=self.stream_config.sketch_depth,
                capacity=self.stream_config.sketch_capacity,
                precision=self.stream_config.sketch_precision,
                seed=self.stream_config.sketch_seed,
                thresholds=self.config.thresholds,
                timeout=self.config.session_timeout,
                on_alert=self._on_sketch_alert,
                on_ended=self._on_sketch_ended,
            )
            self.state.sweep = _NullSweep()
        else:
            for cls in _BACKSCATTER_CLASSES:
                self.state.sessionizers[cls].on_update = (
                    self._on_backscatter_update
                )
            if self.stream_config.bounded:
                self.state.sweep = _NullSweep()

    # -- streaming loop ---------------------------------------------------

    def process_batch(self, batch: list) -> list:
        """Consume one time-ordered batch; returns the events it caused."""
        if self._finished:
            raise RuntimeError("stream already finished")
        if not batch:
            return []
        with obs.span(_M_BATCH):
            if self.sketch is not None:
                if self.state.window_start is None:
                    self.state.window_start = batch[0].timestamp
                self.state.window_end = batch[-1].timestamp
                if self.config.fast_lane:
                    self.sketch.consume_lane(batch, self.classifier)
                else:
                    self.sketch.consume(batch, self.classifier)
            elif self.config.fast_lane:
                self.state.consume_lane(batch, self.classifier)
            else:
                self.state.consume(batch, self.classifier)
            telemetry = self.telemetry
            telemetry.packets += len(batch)
            telemetry.batches += 1
            newest = batch[-1].timestamp
            if newest > telemetry.newest_ts:
                telemetry.newest_ts = newest
            watermark = telemetry.newest_ts - self.stream_config.allowed_lateness
            if watermark > telemetry.watermark:
                telemetry.watermark = watermark
            if self.sketch is not None:
                self.sketch.sweep(telemetry.watermark)
            else:
                for sessionizer in self.state.sessionizers.values():
                    sessionizer.expire(telemetry.watermark)
            events = self._drain(telemetry.watermark)
            self._hour_rollover(telemetry.watermark)
            self._update_gauges()
            _M_LAG.observe(telemetry.watermark_lag)
        return events

    def events(self, feed: Iterable[list]) -> Iterator:
        """Run the monitor over a batch feed, yielding events as they
        fire; finishes the stream when the feed ends."""
        for batch in feed:
            yield from self.process_batch(batch)
        yield from self.finish()

    def finish(self) -> list:
        """End of stream (EOF / SIGINT): flush every open session and
        return the final events."""
        if self._finished:
            return []
        self._finished = True
        if self.sketch is not None:
            self.sketch.flush()
        else:
            self.state.record_classifier(self.classifier)
            self.state.close()
        events = self._drain(self.telemetry.watermark)
        self._update_gauges()
        return events

    def record_corrupt_records(self, count: int) -> None:
        """Tally corrupt pcap records a lenient feed skipped.

        The feed owns the reader, so the count arrives as deltas via
        :func:`repro.stream.feeds.follow_pcap`'s ``on_corrupt`` hook;
        the analyzer only mirrors it into telemetry (the registry
        counter is published by the feed itself).
        """
        if count:
            self.telemetry.corrupt_records += count

    def result(self) -> PipelineResult:
        """The batch-identical analysis result (exact mode only)."""
        if not self._finished:
            raise RuntimeError("call finish() before result()")
        mode = self.stream_config.mode
        if mode == "bounded":
            raise StreamResultUnavailable(
                mode,
                (
                    "stream_report()",
                    "the StreamTelemetry snapshot (analyzer.telemetry)",
                    "hourly_counters()",
                ),
            )
        if mode == "sketch":
            raise StreamResultUnavailable(
                mode,
                (
                    "stream_report()",
                    "the StreamTelemetry snapshot (analyzer.telemetry)",
                    "the sketch estimates (analyzer.sketch: count-min "
                    "packet/byte counts, space-saving heavy hitters, "
                    "HyperLogLog cardinalities)",
                ),
            )
        return self.pipeline.finalize_state(self.state)

    # -- incremental detection hooks --------------------------------------

    def _on_backscatter_update(self, session: Session) -> None:
        attack = self.detector.observe_update(session)
        if attack is None:
            return
        alert = FloodAlert(
            victim_ip=attack.victim_ip,
            vector=attack.vector,
            start=attack.start,
            crossed_at=session.last_ts,
            packet_count=attack.packet_count,
            max_pps=attack.max_pps,
        )
        self._pending.append(alert)
        self.alerts.append(alert)
        self.telemetry.alerts += 1
        _M_ALERTS.inc(vector=attack.vector)
        flood = LiveFlood(
            victim_ip=attack.victim_ip,
            vector=attack.vector,
            start=attack.start,
            session=session,
        )
        self._active[
            (session.traffic_class, session.source, session.first_ts)
        ] = flood
        if attack.vector != "quic":
            self.correlator.register_common(flood)

    def _on_session_closed(self, session: Session) -> None:
        key = (session.traffic_class, session.source, session.first_ts)
        self.detector.release(session)
        flood = self._active.pop(key, None)
        if flood is None:
            return
        flood.end = session.last_ts
        flood.session = None
        category = None
        partners: tuple = ()
        gap = None
        if flood.vector == "quic":
            category, partners, gap = self.correlator.classify(
                session.source, session.first_ts, session.last_ts
            )
            self._category_counts[category] = (
                self._category_counts.get(category, 0) + 1
            )
        self._floods_by_vector[flood.vector] = (
            self._floods_by_vector.get(flood.vector, 0) + 1
        )
        self.telemetry.attacks_ended += 1
        _M_ENDED.inc(vector=flood.vector)
        self._pending.append(
            AttackEnded(
                victim_ip=session.source,
                vector=flood.vector,
                start=session.first_ts,
                end=session.last_ts,
                packet_count=session.packet_count,
                max_pps=session.max_pps,
                category=category,
                partner_vectors=partners,
                nearest_gap=gap,
            )
        )

    def _on_sketch_alert(
        self,
        vector: str,
        victim: int,
        start: float,
        crossed_at: float,
        packet_count: int,
        max_pps: float,
    ):
        """Sketch-tier twin of :meth:`_on_backscatter_update`: the tier
        proved (via the space-saving lower bound) that a monitored
        victim crossed the Moore thresholds."""
        alert = FloodAlert(
            victim_ip=victim,
            vector=vector,
            start=start,
            crossed_at=crossed_at,
            packet_count=packet_count,
            max_pps=max_pps,
        )
        self._pending.append(alert)
        self.alerts.append(alert)
        self.telemetry.alerts += 1
        _M_ALERTS.inc(vector=vector)
        flood = LiveFlood(
            victim_ip=victim, vector=vector, start=start, end=crossed_at
        )
        self._active[(vector, victim, start)] = flood
        if vector != "quic":
            self.correlator.register_common(flood)
        return flood  # the tier keeps flood.end fresh per packet

    def _on_sketch_ended(
        self,
        vector: str,
        victim: int,
        start: float,
        end: float,
        packet_count: int,
        max_pps: float,
    ) -> None:
        flood = self._active.pop((vector, victim, start), None)
        if flood is not None:
            flood.end = end
        category = None
        partners: tuple = ()
        gap = None
        if vector == "quic":
            category, partners, gap = self.correlator.classify(
                victim, start, end
            )
            self._category_counts[category] = (
                self._category_counts.get(category, 0) + 1
            )
        self._floods_by_vector[vector] = (
            self._floods_by_vector.get(vector, 0) + 1
        )
        self.telemetry.attacks_ended += 1
        _M_ENDED.inc(vector=vector)
        self._pending.append(
            AttackEnded(
                victim_ip=victim,
                vector=vector,
                start=start,
                end=end,
                packet_count=packet_count,
                max_pps=max_pps,
                category=category,
                partner_vectors=partners,
                nearest_gap=gap,
            )
        )

    # -- draining and eviction --------------------------------------------

    def _drain(self, watermark: float) -> list:
        for cls, sessionizer in self.state.sessionizers.items():
            closed = sessionizer.closed
            cursor = self._cursor[cls]
            if len(closed) > cursor:
                for session in closed[cursor:]:
                    self._on_session_closed(session)
                self._cursor[cls] = len(closed)
        if self.stream_config.bounded:
            for cls, sessionizer in self.state.sessionizers.items():
                evicted = sessionizer.evict_closed()
                self.telemetry.evicted_sessions += evicted
                if evicted:
                    _M_EVICTED.inc(evicted)
                self._cursor[cls] = 0
        events = self._pending
        self._pending = []
        record_latency = obs.enabled()
        for event in events:
            event.emitted_at = watermark
            if record_latency and isinstance(event, FloodAlert):
                _M_ALERT_LATENCY.observe(max(0.0, watermark - event.crossed_at))
        return events

    def _hour_rollover(self, watermark: float) -> None:
        hour = int(watermark // HOUR)
        if hour == self._current_hour:
            return
        first = self._current_hour is None
        self._current_hour = hour
        if first:
            return
        self.correlator.prune(watermark)
        if self.sketch is not None:
            requests, responses, buckets = self.sketch.prune_hours(
                hour, self.stream_config.retain_hours
            )
            self._pruned_requests += requests
            self._pruned_responses += responses
            if buckets:
                self.telemetry.pruned_hours += buckets
                _M_PRUNED_HOURS.inc(buckets)
        elif self.stream_config.bounded:
            self._evict_idle(hour)

    def _evict_idle(self, hour: int) -> None:
        """Bounded mode, per hour: keep tallies only for open sources
        and research-threshold heavy hitters; prune rolled-off hours."""
        state = self.state
        telemetry = self.telemetry
        open_sources: set = set()
        for sessionizer in state.sessionizers.values():
            open_sources.update(
                session.source for session in sessionizer.open_sessions()
            )
        min_packets = self.config.research_min_packets
        tallies = state.quic_source_packets
        keep = {
            source
            for source, count in tallies.items()
            if count >= min_packets or source in open_sources
        }
        dropped = len(tallies) - len(keep)
        if dropped:
            state.quic_source_packets = {
                source: count for source, count in tallies.items() if source in keep
            }
            state.per_source_hourly = {
                source: hours
                for source, hours in state.per_source_hourly.items()
                if source in keep
            }
            telemetry.pruned_sources += dropped
            _M_PRUNED_SOURCES.inc(dropped)
        floor = hour - self.stream_config.retain_hours
        for rolled in [h for h in state.hourly_requests if h < floor]:
            self._pruned_requests += state.hourly_requests.pop(rolled)
            telemetry.pruned_hours += 1
            _M_PRUNED_HOURS.inc()
        for rolled in [h for h in state.hourly_responses if h < floor]:
            self._pruned_responses += state.hourly_responses.pop(rolled)
            telemetry.pruned_hours += 1
            _M_PRUNED_HOURS.inc()
        for hours in state.per_source_hourly.values():
            for rolled in [h for h in hours if h < floor]:
                del hours[rolled]

    def _update_gauges(self) -> None:
        telemetry = self.telemetry
        if self.sketch is not None:
            sketch = self.sketch
            telemetry.open_sessions = 0
            telemetry.live_sources = sketch.episode_count()
            if telemetry.live_sources > telemetry.peak_live_sources:
                telemetry.peak_live_sources = telemetry.live_sources
            telemetry.active_floods = len(self._active)
            telemetry.tracked_sources = sketch.heavy_entries()
            telemetry.sketch_memory_bytes = sketch.memory_bytes()
            telemetry.distinct_sources_est = int(sketch.sources.estimate())
            telemetry.distinct_victims_est = int(sketch.victims.estimate())
            if obs.enabled():
                _M_OPEN_SESSIONS.set(0)
                _M_LIVE_SOURCES.set(telemetry.live_sources)
                _M_ACTIVE_FLOODS.set(telemetry.active_floods)
                _M_TRACKED_SOURCES.set(telemetry.tracked_sources)
                sketch.publish_metrics()
            return
        sessionizers = self.state.sessionizers.values()
        telemetry.open_sessions = sum(s.open_count for s in sessionizers)
        live: set = set()
        for sessionizer in sessionizers:
            live.update(s.source for s in sessionizer.open_sessions())
        telemetry.live_sources = len(live)
        if telemetry.live_sources > telemetry.peak_live_sources:
            telemetry.peak_live_sources = telemetry.live_sources
        telemetry.active_floods = len(self._active)
        telemetry.tracked_sources = len(self.state.quic_source_packets)
        if obs.enabled():
            _M_OPEN_SESSIONS.set(telemetry.open_sessions)
            _M_LIVE_SOURCES.set(telemetry.live_sources)
            _M_ACTIVE_FLOODS.set(telemetry.active_floods)
            _M_TRACKED_SOURCES.set(telemetry.tracked_sources)

    # -- reporting ---------------------------------------------------------

    def _hourly_series(self):
        """The (requests, responses) hour dicts of the active mode."""
        if self.sketch is not None:
            return self.sketch.hourly_requests, self.sketch.hourly_responses
        return self.state.hourly_requests, self.state.hourly_responses

    def hourly_counters(self) -> dict:
        """Rolling hourly requests/responses (current window), newest
        hours last."""
        hourly_requests, hourly_responses = self._hourly_series()
        hours = sorted(set(hourly_requests) | set(hourly_responses))
        return {
            hour: (
                hourly_requests.get(hour, 0),
                hourly_responses.get(hour, 0),
            )
            for hour in hours
        }

    def status_line(self) -> str:
        """One-line monitor status for the periodic watch output."""
        telemetry = self.telemetry
        watermark = (
            format_event_time(telemetry.watermark)
            if telemetry.watermark != float("-inf")
            else "-"
        )
        hour_key = int(telemetry.watermark // HOUR) if telemetry.watermark != float("-inf") else 0
        hourly_requests, hourly_responses = self._hourly_series()
        requests = hourly_requests.get(hour_key, 0)
        responses = hourly_responses.get(hour_key, 0)
        line = (
            f"[status] watermark={watermark} packets={telemetry.packets:,} "
            f"live_sources={telemetry.live_sources} "
            f"open_sessions={telemetry.open_sessions} "
            f"active_floods={telemetry.active_floods} "
            f"alerts={telemetry.alerts} "
            f"evicted={telemetry.evicted_sessions:,} "
            f"pruned_sources={telemetry.pruned_sources:,} "
            f"pruned_hours={telemetry.pruned_hours:,} "
            f"hour_req/resp={requests}/{responses} "
            f"lag={telemetry.watermark_lag:.1f}s"
        )
        if self.sketch is not None:
            config = self.stream_config
            exact_kib = self.sketch.exact_memory_estimate() / 1024
            line += (
                f" sketch[cms={config.sketch_width}x{config.sketch_depth}"
                f" topk={config.sketch_capacity}"
                f" hll=2^{config.sketch_precision}]"
                f" mem={telemetry.sketch_memory_bytes / 1024:.0f}KiB"
                f" (exact~{exact_kib:.0f}KiB)"
                f" distinct~{telemetry.distinct_sources_est:,}"
            )
        return line

    def stream_report(self) -> str:
        """Final summary of an (optionally bounded) monitoring run."""
        telemetry = self.telemetry
        state = self.state
        window = ""
        if state.window_start is not None and state.window_end is not None:
            hours = (state.window_end - state.window_start) / HOUR
            window = (
                f"{format_event_time(state.window_start)} — "
                f"{format_event_time(state.window_end)} ({hours:.1f} h)"
            )
        hourly_requests, hourly_responses = self._hourly_series()
        requests = sum(hourly_requests.values()) + self._pruned_requests
        responses = sum(hourly_responses.values()) + self._pruned_responses
        rows = [
            ["window", window or "-"],
            ["packets processed", f"{telemetry.packets:,}"],
            ["QUIC requests / responses", f"{requests:,} / {responses:,}"],
            ["flood alerts", str(telemetry.alerts)],
            ["floods ended", str(telemetry.attacks_ended)],
        ]
        for vector in ("quic", "tcp", "icmp"):
            if vector in self._floods_by_vector:
                rows.append(
                    [f"  {vector} floods", str(self._floods_by_vector[vector])]
                )
        for category in ("concurrent", "sequential", "isolated"):
            if category in self._category_counts:
                rows.append(
                    [
                        f"  quic {category} (online)",
                        str(self._category_counts[category]),
                    ]
                )
        rows += [
            ["live sources (now / peak)", f"{telemetry.live_sources} / {telemetry.peak_live_sources}"],
            ["tracked sources", str(telemetry.tracked_sources)],
            ["sessions evicted", f"{telemetry.evicted_sessions:,}"],
            ["sources pruned", f"{telemetry.pruned_sources:,}"],
        ]
        if self.sketch is not None:
            sketch = self.sketch
            rows += [
                [
                    "distinct sources (HLL est.)",
                    f"~{telemetry.distinct_sources_est:,}",
                ],
                [
                    "distinct victims (HLL est.)",
                    f"~{telemetry.distinct_victims_est:,}",
                ],
                [
                    "sketch memory",
                    f"{telemetry.sketch_memory_bytes / 1024:.0f} KiB "
                    f"(exact would need ~"
                    f"{sketch.exact_memory_estimate() / 1024:.0f} KiB)",
                ],
                [
                    "heavy-hitter evictions",
                    str(sum(s.evictions for s in sketch.heavy.values())),
                ],
            ]
        if telemetry.corrupt_records:
            rows.append(
                ["corrupt pcap records", f"{telemetry.corrupt_records:,}"]
            )
        rows.append(["correlation window", str(self.correlator.window_size)])
        mode = self.stream_config.mode
        return format_table(
            ["metric", "value"], rows, title=f"Streaming monitor summary ({mode} mode)"
        )
