"""The online telescope monitor: QUICsand analysis over an unbounded feed.

:class:`StreamAnalyzer` runs the same classify → dissect → sessionize
machinery as the batch :class:`~repro.core.pipeline.QuicsandPipeline`
(it literally accumulates the same
:class:`~repro.core.pipeline.PartialState`), with three streaming
additions:

1. **Watermark-driven session expiry** — after every batch the
   event-time watermark (newest timestamp minus an allowed lateness)
   advances and sessions idle past the timeout are closed.  On a
   time-ordered stream this closes exactly the sessions the batch
   sessionizer would close, with identical contents (see
   :meth:`repro.core.sessions.Sessionizer.expire`), which is why the
   exact mode reproduces batch results bit for bit.
2. **Incremental flood detection** — a per-packet hook on the
   backscatter sessionizers threshold-checks each updated session, so
   a :class:`~repro.stream.events.FloodAlert` fires the moment a
   session crosses the Moore thresholds (monotone conditions make the
   crossing packet exact), and an
   :class:`~repro.stream.events.AttackEnded` follows when the session
   expires — with an online multi-vector category from the sliding
   common-flood window.
3. **Bounded memory** (``StreamConfig(bounded=True)``) — closed
   sessions are folded into running summaries and evicted, the
   per-packet timeout sweep is disabled, and per-source tallies are
   pruned on every hour rollover down to *open* sources plus
   research-threshold heavy hitters.  Memory is then proportional to
   active sources (plus the alert history and the rolling hour window),
   not capture size; telemetry reports the live/evicted counts.

Exact mode (the default) retains the full state: after ``finish()``,
``result()`` runs the batch finalization and returns a
``PipelineResult`` identical to ``QuicsandPipeline.process`` over the
same capture — asserted in ``tests/test_stream_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro import obs
from repro.core.batchlane import BatchLane
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dos import DosDetector
from repro.core.pipeline import AnalysisConfig, PartialState, PipelineResult, QuicsandPipeline
from repro.core.sessions import Session
from repro.stream.correlate import LiveFlood, OnlineCorrelator
from repro.stream.events import AttackEnded, FloodAlert, format_event_time
from repro.util.render import format_table
from repro.util.timeutil import HOUR

_BACKSCATTER_CLASSES = (
    PacketClass.QUIC_RESPONSE,
    PacketClass.TCP_BACKSCATTER,
    PacketClass.ICMP_BACKSCATTER,
)

# The monitor's observability surface.  :class:`StreamTelemetry` stays
# as the in-process view (status lines, tests poke at its fields); the
# ``repro.obs`` metrics below are the *export* surface — updated at
# batch boundaries and on (rare) alert/eviction events, never per
# packet, and absorbed into `--metrics-out` / `repro stats` output.
_M_BATCH = obs.histogram(
    "repro_stream_batch_seconds",
    "wall seconds per monitor batch (consume + expiry + drain)",
)
_M_LAG = obs.histogram(
    "repro_stream_watermark_lag_seconds",
    "event-time lag from newest packet to the watermark, per batch",
    buckets=obs.LATENCY_BUCKETS,
)
_M_ALERT_LATENCY = obs.histogram(
    "repro_stream_alert_latency_seconds",
    "event-time delay from threshold crossing to alert emission",
    buckets=obs.LATENCY_BUCKETS,
)
_M_ALERTS = obs.counter(
    "repro_stream_alerts_total",
    "flood alerts fired, per vector",
    labels=("vector",),
)
_M_ENDED = obs.counter(
    "repro_stream_attacks_ended_total",
    "flood-ended events emitted, per vector",
    labels=("vector",),
)
_M_EVICTED = obs.counter(
    "repro_stream_evicted_sessions_total",
    "closed sessions evicted in bounded mode",
)
_M_PRUNED_SOURCES = obs.counter(
    "repro_stream_pruned_sources_total",
    "idle per-source tallies pruned on hour rollovers (bounded mode)",
)
_M_PRUNED_HOURS = obs.counter(
    "repro_stream_pruned_hours_total",
    "hourly buckets rolled out of the retain window (bounded mode)",
)
_M_OPEN_SESSIONS = obs.gauge(
    "repro_stream_open_sessions", "sessions currently open"
)
_M_LIVE_SOURCES = obs.gauge(
    "repro_stream_live_sources", "distinct sources with an open session"
)
_M_ACTIVE_FLOODS = obs.gauge(
    "repro_stream_active_floods", "floods past threshold and not yet ended"
)
_M_TRACKED_SOURCES = obs.gauge(
    "repro_stream_tracked_sources",
    "per-source tally map size (the bounded-memory proxy)",
)


@dataclass
class StreamConfig:
    """Knobs of the online monitor."""

    #: watermark = newest event time − allowed lateness; 0 is exact for
    #: time-ordered feeds, raise it for mildly out-of-order captures.
    allowed_lateness: float = 0.0
    #: evict closed sessions / idle sources and disable the per-packet
    #: timeout sweep, bounding memory by *active* sources.  Disables
    #: the batch-identical ``result()``.
    bounded: bool = False
    #: sliding window for online multi-vector correlation.
    correlation_horizon: float = 24 * HOUR
    #: hour buckets kept in the rolling hourly series (bounded mode).
    retain_hours: int = 48


@dataclass
class StreamTelemetry:
    """The monitor's in-process counters and gauges.

    Status lines and tests read these fields directly; the exportable
    view of the same quantities lives in :mod:`repro.obs` (the
    ``repro_stream_*`` families — see ``docs/METRICS.md``), which the
    analyzer keeps in sync at batch boundaries.  New telemetry should
    be added to the registry first and mirrored here only when the
    status line needs it.
    """

    packets: int = 0
    batches: int = 0
    watermark: float = float("-inf")
    newest_ts: float = float("-inf")
    alerts: int = 0
    attacks_ended: int = 0
    evicted_sessions: int = 0
    pruned_sources: int = 0
    pruned_hours: int = 0
    live_sources: int = 0
    open_sessions: int = 0
    peak_live_sources: int = 0
    active_floods: int = 0
    #: size of the per-source tally maps — the bounded-memory proxy.
    tracked_sources: int = 0
    #: corrupt pcap records skipped by a lenient feed (see
    #: ``follow_pcap(lenient=True)``); fed via record_corrupt_records.
    corrupt_records: int = 0

    @property
    def watermark_lag(self) -> float:
        """Event-time distance from the newest packet to the watermark
        (equals the allowed lateness once the stream is flowing)."""
        if self.newest_ts == float("-inf"):
            return 0.0
        return self.newest_ts - self.watermark


class _NullSweep:
    """Timeout-sweep stand-in for bounded mode: recording every
    inter-packet gap is inherently capture-sized, so the sweep is
    disabled rather than evicted."""

    source_count = 0
    packet_count = 0

    def observe(self, source: int, timestamp: float) -> None:
        pass


class StreamAnalyzer:
    """Online QUICsand analysis with live flood alerting."""

    def __init__(
        self,
        registry=None,
        census=None,
        greynoise=None,
        config: Optional[AnalysisConfig] = None,
        stream_config: Optional[StreamConfig] = None,
    ) -> None:
        self.pipeline = QuicsandPipeline(registry, census, greynoise, config)
        self.config = self.pipeline.config
        self.stream_config = stream_config or StreamConfig()
        self.state = PartialState.initial(self.config)
        # the monitor rides the batch fast lane unless the escape hatch
        # (--no-fast-lane) asked for the rich classifier; finish() and
        # record_classifier() are duck-typed over both.
        if self.config.fast_lane:
            self.classifier = BatchLane(
                dissect_payloads=self.config.dissect_payloads
            )
        else:
            self.classifier = TrafficClassifier(
                dissect_payloads=self.config.dissect_payloads
            )
        self.detector = DosDetector(self.config.thresholds)
        self.correlator = OnlineCorrelator(
            horizon=self.stream_config.correlation_horizon
        )
        self.telemetry = StreamTelemetry()
        #: alert history (floods are rare — ~4/hour Internet-wide — so
        #: this stays small even on long runs).
        self.alerts: list = []
        self._pending: list = []
        self._active: dict = {}
        self._cursor = {cls: 0 for cls in self.state.sessionizers}
        self._current_hour: Optional[int] = None
        self._finished = False
        self._floods_by_vector: dict = {}
        self._category_counts: dict = {}
        self._pruned_requests = 0
        self._pruned_responses = 0
        for cls in _BACKSCATTER_CLASSES:
            self.state.sessionizers[cls].on_update = self._on_backscatter_update
        if self.stream_config.bounded:
            self.state.sweep = _NullSweep()

    # -- streaming loop ---------------------------------------------------

    def process_batch(self, batch: list) -> list:
        """Consume one time-ordered batch; returns the events it caused."""
        if self._finished:
            raise RuntimeError("stream already finished")
        if not batch:
            return []
        with obs.span(_M_BATCH):
            if self.config.fast_lane:
                self.state.consume_lane(batch, self.classifier)
            else:
                self.state.consume(batch, self.classifier)
            telemetry = self.telemetry
            telemetry.packets += len(batch)
            telemetry.batches += 1
            newest = batch[-1].timestamp
            if newest > telemetry.newest_ts:
                telemetry.newest_ts = newest
            watermark = telemetry.newest_ts - self.stream_config.allowed_lateness
            if watermark > telemetry.watermark:
                telemetry.watermark = watermark
            for sessionizer in self.state.sessionizers.values():
                sessionizer.expire(telemetry.watermark)
            events = self._drain(telemetry.watermark)
            self._hour_rollover(telemetry.watermark)
            self._update_gauges()
            _M_LAG.observe(telemetry.watermark_lag)
        return events

    def events(self, feed: Iterable[list]) -> Iterator:
        """Run the monitor over a batch feed, yielding events as they
        fire; finishes the stream when the feed ends."""
        for batch in feed:
            yield from self.process_batch(batch)
        yield from self.finish()

    def finish(self) -> list:
        """End of stream (EOF / SIGINT): flush every open session and
        return the final events."""
        if self._finished:
            return []
        self._finished = True
        self.state.record_classifier(self.classifier)
        self.state.close()
        events = self._drain(self.telemetry.watermark)
        self._update_gauges()
        return events

    def record_corrupt_records(self, count: int) -> None:
        """Tally corrupt pcap records a lenient feed skipped.

        The feed owns the reader, so the count arrives as deltas via
        :func:`repro.stream.feeds.follow_pcap`'s ``on_corrupt`` hook;
        the analyzer only mirrors it into telemetry (the registry
        counter is published by the feed itself).
        """
        if count:
            self.telemetry.corrupt_records += count

    def result(self) -> PipelineResult:
        """The batch-identical analysis result (exact mode only)."""
        if not self._finished:
            raise RuntimeError("call finish() before result()")
        if self.stream_config.bounded:
            raise RuntimeError(
                "bounded mode evicts session state; no batch result available"
            )
        return self.pipeline.finalize_state(self.state)

    # -- incremental detection hooks --------------------------------------

    def _on_backscatter_update(self, session: Session) -> None:
        attack = self.detector.observe_update(session)
        if attack is None:
            return
        alert = FloodAlert(
            victim_ip=attack.victim_ip,
            vector=attack.vector,
            start=attack.start,
            crossed_at=session.last_ts,
            packet_count=attack.packet_count,
            max_pps=attack.max_pps,
        )
        self._pending.append(alert)
        self.alerts.append(alert)
        self.telemetry.alerts += 1
        _M_ALERTS.inc(vector=attack.vector)
        flood = LiveFlood(
            victim_ip=attack.victim_ip,
            vector=attack.vector,
            start=attack.start,
            session=session,
        )
        self._active[
            (session.traffic_class, session.source, session.first_ts)
        ] = flood
        if attack.vector != "quic":
            self.correlator.register_common(flood)

    def _on_session_closed(self, session: Session) -> None:
        key = (session.traffic_class, session.source, session.first_ts)
        self.detector.release(session)
        flood = self._active.pop(key, None)
        if flood is None:
            return
        flood.end = session.last_ts
        flood.session = None
        category = None
        partners: tuple = ()
        gap = None
        if flood.vector == "quic":
            category, partners, gap = self.correlator.classify(
                session.source, session.first_ts, session.last_ts
            )
            self._category_counts[category] = (
                self._category_counts.get(category, 0) + 1
            )
        self._floods_by_vector[flood.vector] = (
            self._floods_by_vector.get(flood.vector, 0) + 1
        )
        self.telemetry.attacks_ended += 1
        _M_ENDED.inc(vector=flood.vector)
        self._pending.append(
            AttackEnded(
                victim_ip=session.source,
                vector=flood.vector,
                start=session.first_ts,
                end=session.last_ts,
                packet_count=session.packet_count,
                max_pps=session.max_pps,
                category=category,
                partner_vectors=partners,
                nearest_gap=gap,
            )
        )

    # -- draining and eviction --------------------------------------------

    def _drain(self, watermark: float) -> list:
        for cls, sessionizer in self.state.sessionizers.items():
            closed = sessionizer.closed
            cursor = self._cursor[cls]
            if len(closed) > cursor:
                for session in closed[cursor:]:
                    self._on_session_closed(session)
                self._cursor[cls] = len(closed)
        if self.stream_config.bounded:
            for cls, sessionizer in self.state.sessionizers.items():
                evicted = sessionizer.evict_closed()
                self.telemetry.evicted_sessions += evicted
                if evicted:
                    _M_EVICTED.inc(evicted)
                self._cursor[cls] = 0
        events = self._pending
        self._pending = []
        record_latency = obs.enabled()
        for event in events:
            event.emitted_at = watermark
            if record_latency and isinstance(event, FloodAlert):
                _M_ALERT_LATENCY.observe(max(0.0, watermark - event.crossed_at))
        return events

    def _hour_rollover(self, watermark: float) -> None:
        hour = int(watermark // HOUR)
        if hour == self._current_hour:
            return
        first = self._current_hour is None
        self._current_hour = hour
        if first:
            return
        self.correlator.prune(watermark)
        if self.stream_config.bounded:
            self._evict_idle(hour)

    def _evict_idle(self, hour: int) -> None:
        """Bounded mode, per hour: keep tallies only for open sources
        and research-threshold heavy hitters; prune rolled-off hours."""
        state = self.state
        telemetry = self.telemetry
        open_sources: set = set()
        for sessionizer in state.sessionizers.values():
            open_sources.update(
                session.source for session in sessionizer.open_sessions()
            )
        min_packets = self.config.research_min_packets
        tallies = state.quic_source_packets
        keep = {
            source
            for source, count in tallies.items()
            if count >= min_packets or source in open_sources
        }
        dropped = len(tallies) - len(keep)
        if dropped:
            state.quic_source_packets = {
                source: count for source, count in tallies.items() if source in keep
            }
            state.per_source_hourly = {
                source: hours
                for source, hours in state.per_source_hourly.items()
                if source in keep
            }
            telemetry.pruned_sources += dropped
            _M_PRUNED_SOURCES.inc(dropped)
        floor = hour - self.stream_config.retain_hours
        for rolled in [h for h in state.hourly_requests if h < floor]:
            self._pruned_requests += state.hourly_requests.pop(rolled)
            telemetry.pruned_hours += 1
            _M_PRUNED_HOURS.inc()
        for rolled in [h for h in state.hourly_responses if h < floor]:
            self._pruned_responses += state.hourly_responses.pop(rolled)
            telemetry.pruned_hours += 1
            _M_PRUNED_HOURS.inc()
        for hours in state.per_source_hourly.values():
            for rolled in [h for h in hours if h < floor]:
                del hours[rolled]

    def _update_gauges(self) -> None:
        telemetry = self.telemetry
        sessionizers = self.state.sessionizers.values()
        telemetry.open_sessions = sum(s.open_count for s in sessionizers)
        live: set = set()
        for sessionizer in sessionizers:
            live.update(s.source for s in sessionizer.open_sessions())
        telemetry.live_sources = len(live)
        if telemetry.live_sources > telemetry.peak_live_sources:
            telemetry.peak_live_sources = telemetry.live_sources
        telemetry.active_floods = len(self._active)
        telemetry.tracked_sources = len(self.state.quic_source_packets)
        if obs.enabled():
            _M_OPEN_SESSIONS.set(telemetry.open_sessions)
            _M_LIVE_SOURCES.set(telemetry.live_sources)
            _M_ACTIVE_FLOODS.set(telemetry.active_floods)
            _M_TRACKED_SOURCES.set(telemetry.tracked_sources)

    # -- reporting ---------------------------------------------------------

    def hourly_counters(self) -> dict:
        """Rolling hourly requests/responses (current window), newest
        hours last."""
        hours = sorted(
            set(self.state.hourly_requests) | set(self.state.hourly_responses)
        )
        return {
            hour: (
                self.state.hourly_requests.get(hour, 0),
                self.state.hourly_responses.get(hour, 0),
            )
            for hour in hours
        }

    def status_line(self) -> str:
        """One-line monitor status for the periodic watch output."""
        telemetry = self.telemetry
        watermark = (
            format_event_time(telemetry.watermark)
            if telemetry.watermark != float("-inf")
            else "-"
        )
        hour_key = int(telemetry.watermark // HOUR) if telemetry.watermark != float("-inf") else 0
        requests = self.state.hourly_requests.get(hour_key, 0)
        responses = self.state.hourly_responses.get(hour_key, 0)
        return (
            f"[status] watermark={watermark} packets={telemetry.packets:,} "
            f"live_sources={telemetry.live_sources} "
            f"open_sessions={telemetry.open_sessions} "
            f"active_floods={telemetry.active_floods} "
            f"alerts={telemetry.alerts} "
            f"evicted={telemetry.evicted_sessions:,} "
            f"hour_req/resp={requests}/{responses} "
            f"lag={telemetry.watermark_lag:.1f}s"
        )

    def stream_report(self) -> str:
        """Final summary of an (optionally bounded) monitoring run."""
        telemetry = self.telemetry
        state = self.state
        window = ""
        if state.window_start is not None and state.window_end is not None:
            hours = (state.window_end - state.window_start) / HOUR
            window = (
                f"{format_event_time(state.window_start)} — "
                f"{format_event_time(state.window_end)} ({hours:.1f} h)"
            )
        requests = sum(state.hourly_requests.values()) + self._pruned_requests
        responses = sum(state.hourly_responses.values()) + self._pruned_responses
        rows = [
            ["window", window or "-"],
            ["packets processed", f"{telemetry.packets:,}"],
            ["QUIC requests / responses", f"{requests:,} / {responses:,}"],
            ["flood alerts", str(telemetry.alerts)],
            ["floods ended", str(telemetry.attacks_ended)],
        ]
        for vector in ("quic", "tcp", "icmp"):
            if vector in self._floods_by_vector:
                rows.append(
                    [f"  {vector} floods", str(self._floods_by_vector[vector])]
                )
        for category in ("concurrent", "sequential", "isolated"):
            if category in self._category_counts:
                rows.append(
                    [
                        f"  quic {category} (online)",
                        str(self._category_counts[category]),
                    ]
                )
        rows += [
            ["live sources (now / peak)", f"{telemetry.live_sources} / {telemetry.peak_live_sources}"],
            ["tracked sources", str(telemetry.tracked_sources)],
            ["sessions evicted", f"{telemetry.evicted_sessions:,}"],
            ["sources pruned", f"{telemetry.pruned_sources:,}"],
        ]
        if telemetry.corrupt_records:
            rows.append(
                ["corrupt pcap records", f"{telemetry.corrupt_records:,}"]
            )
        rows.append(["correlation window", str(self.correlator.window_size)])
        mode = "bounded" if self.stream_config.bounded else "exact"
        return format_table(
            ["metric", "value"], rows, title=f"Streaming monitor summary ({mode} mode)"
        )
