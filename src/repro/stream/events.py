"""Typed events emitted by the streaming monitor.

Two event kinds cover the lifecycle of an online flood detection:

- :class:`FloodAlert` — a still-open backscatter session crossed the
  Moore thresholds.  ``crossed_at`` is the exact event time of the
  packet that completed the crossing (all three conditions are
  monotone); ``emitted_at`` is the event-time watermark when the
  monitor surfaced the alert, so ``latency`` measures the detection
  granularity of the batch loop.
- :class:`AttackEnded` — the alerted session expired (its source went
  quiet past the watermark).  Carries the final session statistics and,
  for QUIC floods, the provisional multi-vector category against the
  sliding window of recent TCP/ICMP floods.

Events render to the one-line log format ``python -m repro watch``
prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import format_ipv4


def format_event_time(timestamp: float) -> str:
    """Epoch seconds to compact UTC ``MM-DD HH:MM:SS``."""
    parts = time.gmtime(timestamp)
    return time.strftime("%m-%d %H:%M:%S", parts)


def format_duration(seconds: float) -> str:
    """Compact ``4m32s`` / ``1h07m`` style duration."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


@dataclass
class FloodAlert:
    """A backscatter session crossed the Moore thresholds while open."""

    victim_ip: int
    vector: str  # "quic" | "tcp" | "icmp"
    start: float
    crossed_at: float
    packet_count: int
    max_pps: float
    emitted_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Event-time distance from threshold crossing to emission."""
        if self.emitted_at is None:
            return None
        return self.emitted_at - self.crossed_at

    def render(self) -> str:
        latency = self.latency
        lag = f", detected +{latency:.1f}s" if latency is not None else ""
        return (
            f"[ALERT] {self.vector} flood on {format_ipv4(self.victim_ip)} — "
            f"{self.packet_count:,} pkts, {self.max_pps:.2f} pps peak, "
            f"started {format_event_time(self.start)}, "
            f"crossed {format_event_time(self.crossed_at)}{lag}"
        )


@dataclass
class AttackEnded:
    """An alerted flood's session expired behind the watermark."""

    victim_ip: int
    vector: str
    start: float
    end: float
    packet_count: int
    max_pps: float
    #: online multi-vector category (QUIC floods only): concurrent /
    #: sequential / isolated against the sliding common-flood window —
    #: provisional as-of-watermark; the batch correlation over the full
    #: capture is authoritative.
    category: Optional[str] = None
    partner_vectors: tuple = field(default_factory=tuple)
    nearest_gap: Optional[float] = None
    emitted_at: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def render(self) -> str:
        tail = ""
        if self.category is not None:
            tail = f", multivector: {self.category}"
            if self.partner_vectors:
                tail += f"({'+'.join(self.partner_vectors)})"
            if self.nearest_gap is not None:
                tail += f", nearest gap {format_duration(self.nearest_gap)}"
        return (
            f"[ended] {self.vector} flood on {format_ipv4(self.victim_ip)} — "
            f"{format_duration(self.duration)}, {self.packet_count:,} pkts, "
            f"{self.max_pps:.2f} pps peak{tail}"
        )
