"""Online multi-vector correlation against a sliding flood window.

The batch pipeline classifies each QUIC flood against *every* TCP/ICMP
flood on the same victim across the whole capture (Section 5.2).  An
unbounded stream cannot keep every common flood forever, so the online
correlator keeps a per-victim window of recent common floods — active
ones (still-open alerted sessions) plus ended ones younger than a
``horizon`` — and classifies a QUIC flood the moment it ends.

Categories are therefore *provisional as-of-watermark*: a QUIC flood
classified isolated may retroactively be sequential once a later
common flood hits the same victim.  The equivalence tests pin the
authoritative categories to the batch correlation; the online ones are
the operator's early signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.multivector import CONCURRENT, ISOLATED, SEQUENTIAL
from repro.core.sessions import Session
from repro.util.timeutil import HOUR


@dataclass
class LiveFlood:
    """One alerted flood tracked by the monitor."""

    victim_ip: int
    vector: str
    start: float
    #: while the flood is active its live end is the session's newest
    #: packet; once closed ``end`` is set and the session reference is
    #: dropped (bounded memory).
    session: Optional[Session] = None
    end: Optional[float] = None

    @property
    def current_end(self) -> float:
        if self.end is not None:
            return self.end
        return self.session.last_ts if self.session is not None else self.start


class OnlineCorrelator:
    """Sliding-window concurrent/sequential/isolated classification."""

    def __init__(self, horizon: float = 24 * HOUR, min_overlap: float = 1.0) -> None:
        if horizon <= 0:
            raise ValueError("correlation horizon must be positive")
        self.horizon = horizon
        self.min_overlap = min_overlap
        self._common: dict[int, list] = {}

    def register_common(self, flood: LiveFlood) -> None:
        """Track a TCP/ICMP flood from its alert onward."""
        self._common.setdefault(flood.victim_ip, []).append(flood)

    def classify(self, victim_ip: int, start: float, end: float):
        """Classify one ended QUIC flood against the window.

        Returns ``(category, partner_vectors, nearest_gap)`` mirroring
        the batch :func:`repro.core.multivector.correlate_attacks`
        fields.
        """
        partners = self._common.get(victim_ip, [])
        if not partners:
            return ISOLATED, (), None
        overlapping = []
        nearest: Optional[float] = None
        for partner in partners:
            p_start, p_end = partner.start, partner.current_end
            overlap = min(end, p_end) - max(start, p_start)
            if overlap >= self.min_overlap:
                overlapping.append(partner)
                continue
            if overlap > 0:
                gap = 0.0
            elif end <= p_start:
                gap = p_start - end
            else:
                gap = start - p_end
            if nearest is None or gap < nearest:
                nearest = gap
        if overlapping:
            vectors = tuple(sorted({p.vector for p in overlapping}))
            return CONCURRENT, vectors, None
        vectors = tuple(sorted({p.vector for p in partners}))
        return SEQUENTIAL, vectors, nearest

    def prune(self, watermark: float) -> int:
        """Drop ended common floods older than the horizon; returns the
        number removed.  Active floods are never pruned."""
        floor = watermark - self.horizon
        removed = 0
        for victim in list(self._common):
            floods = self._common[victim]
            kept = [
                f for f in floods if f.end is None or f.end >= floor
            ]
            removed += len(floods) - len(kept)
            if kept:
                self._common[victim] = kept
            else:
                del self._common[victim]
        return removed

    @property
    def window_size(self) -> int:
        return sum(len(floods) for floods in self._common.values())
