"""HyperLogLog distinct-count estimation (Flajolet et al. 2007).

``m = 2 ** precision`` one-byte registers; a key's seeded
:func:`~repro.stream.sketch.hashing.mix64` hash routes on its top
``precision`` bits and contributes the leading-zero rank of the rest.
The standard relative error is ``1.04 / sqrt(m)`` (~1.6% at the
default ``precision=12`` — 4 KiB of registers for cardinalities the
telescope never exceeds).  The small-range linear-counting correction
is applied below ``2.5 * m``; the 32-bit large-range correction is
unnecessary because ranks come from a 64-bit hash.

Merging is register-wise ``max`` — associative, commutative,
idempotent — valid only across sketches built with the same precision
*and* seed (same hash family), which :meth:`merge` enforces.  A
``bytearray`` register file keeps instances picklable and exactly
``m`` bytes big regardless of how many keys were added.
"""

from __future__ import annotations

import math
import sys

from repro.stream.sketch.hashing import mix64
from repro.util.rng import derive_seed


def _alpha(m: int) -> float:
    if m >= 128:
        return 0.7213 / (1.0 + 1.079 / m)
    if m == 64:
        return 0.709
    if m == 32:
        return 0.697
    return 0.673  # m == 16, the minimum precision


class HyperLogLog:
    """Seeded HLL cardinality estimator over integer keys."""

    __slots__ = ("precision", "seed", "updates", "_salt", "_registers")

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("HLL precision must be in [4, 18]")
        self.precision = precision
        self.seed = seed
        self.updates = 0
        self._salt = derive_seed(seed, "hll")
        self._registers = bytearray(1 << precision)

    def add(self, key: int) -> None:
        precision = self.precision
        hashed = mix64(key ^ self._salt)
        index = hashed >> (64 - precision)
        tail_bits = 64 - precision
        tail = hashed & ((1 << tail_bits) - 1)
        rank = tail_bits - tail.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank
        self.updates += 1

    def estimate(self) -> float:
        registers = self._registers
        m = len(registers)
        raw = _alpha(m) * m * m / sum(2.0 ** -value for value in registers)
        if raw <= 2.5 * m:
            zeros = registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    @property
    def relative_error(self) -> float:
        """The standard error of :meth:`estimate`: 1.04 / sqrt(m)."""
        return 1.04 / math.sqrt(len(self._registers))

    def memory_bytes(self) -> int:
        """Bytes held by the register file — constant in key count."""
        return sys.getsizeof(self._registers)

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max of ``other`` into self (same p + seed)."""
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise ValueError(
                "HLL merge needs identical precision/seed: "
                f"{(self.precision, self.seed)} vs "
                f"{(other.precision, other.seed)}"
            )
        mine = self._registers
        for index, value in enumerate(other._registers):
            if value > mine[index]:
                mine[index] = value
        self.updates += other.updates

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HyperLogLog(precision={self.precision}, "
            f"estimate={self.estimate():.0f})"
        )
