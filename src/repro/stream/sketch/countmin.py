"""Seeded count-min sketch with conservative update.

The tally behind the sketch tier's per-source packet/byte counts:
``depth`` rows of ``width`` 64-bit cells, each row hashing through an
independently salted :func:`~repro.stream.sketch.hashing.mix64`.
Estimates never undercount (``estimate(key) >= true count``, always)
and overcount by at most ``epsilon * total`` per row with failure
probability ``delta`` — the classic Cormode–Muthukrishnan bounds with
``epsilon = e / width`` and ``delta = e ** -depth``.  Conservative
update (only raise the cells that *must* rise to keep the minimum
consistent) tightens the overcount substantially in practice without
weakening either guarantee.

Memory is ``depth * width * 8`` bytes regardless of how many distinct
keys pass through — the whole point of the sketch tier.

Sketches with the same geometry **and the same seed** merge by
element-wise addition, which is associative, commutative, and
preserves the overestimate-only property (each addend already
dominates its shard's true counts); :meth:`merge` refuses mismatched
partners loudly.  Plain attributes keep instances picklable for the
sharded pipeline and obs snapshots.
"""

from __future__ import annotations

import math
import sys
from array import array

from repro.stream.sketch.hashing import mix64
from repro.util.rng import derive_seed


class CountMinSketch:
    """Conservative-update count-min sketch over integer keys."""

    __slots__ = ("width", "depth", "seed", "total", "updates", "_salts", "_rows")

    def __init__(self, width: int = 2048, depth: int = 4, seed: int = 0) -> None:
        if width < 1:
            raise ValueError("count-min width must be >= 1")
        if depth < 1:
            raise ValueError("count-min depth must be >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        #: sum of all update increments (the N of the epsilon*N bound).
        self.total = 0
        #: number of update() calls (telemetry, not part of the bound).
        self.updates = 0
        self._salts = tuple(
            derive_seed(seed, f"cms-row-{row}") for row in range(depth)
        )
        self._rows = [array("Q", bytes(8 * width)) for _ in range(depth)]

    # -- updates -----------------------------------------------------------

    def update(self, key: int, count: int = 1) -> int:
        """Add ``count`` to ``key``; returns the new estimate."""
        if count < 1:
            raise ValueError("count-min increments must be positive")
        width = self.width
        cells = [
            (row, mix64(key ^ salt) % width)
            for row, salt in zip(self._rows, self._salts)
        ]
        estimate = min(row[index] for row, index in cells)
        raised = estimate + count
        for row, index in cells:
            if row[index] < raised:
                row[index] = raised
        self.total += count
        self.updates += 1
        return raised

    def estimate(self, key: int) -> int:
        """The (over-)estimate of ``key``'s total count."""
        width = self.width
        return min(
            row[mix64(key ^ salt) % width]
            for row, salt in zip(self._rows, self._salts)
        )

    # -- bounds and sizing -------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Per-key overcount bound factor: error <= epsilon * total."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability the epsilon bound fails for a given key."""
        return math.exp(-self.depth)

    def memory_bytes(self) -> int:
        """Actual bytes held by the tally rows — constant in key count."""
        return sum(sys.getsizeof(row) for row in self._rows)

    # -- composition -------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> None:
        """Element-wise add ``other`` into self (same geometry + seed)."""
        if (self.width, self.depth, self.seed) != (
            other.width,
            other.depth,
            other.seed,
        ):
            raise ValueError(
                "count-min merge needs identical width/depth/seed: "
                f"{(self.width, self.depth, self.seed)} vs "
                f"{(other.width, other.depth, other.seed)}"
            )
        for mine, theirs in zip(self._rows, other._rows):
            for index, value in enumerate(theirs):
                if value:
                    mine[index] += value
        self.total += other.total
        self.updates += other.updates

    # -- pickling (arrays carry their typecode, but keep the protocol
    # explicit so __slots__ classes round-trip on every pickle level) ------

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"total={self.total})"
        )
