"""Constant-memory sketches for million-source streams.

The exact and bounded monitor modes keep per-source dicts and session
objects, so memory scales with source cardinality — fine for a
capture, wrong for a production telescope watching millions of
sources.  This package trades exactness for a *fixed* memory ceiling
with one-sided, quantified error:

- :class:`~repro.stream.sketch.countmin.CountMinSketch` — seeded,
  conservative-update; overestimate-only per-source packet/byte counts
  with the ``epsilon * N`` / ``delta`` bounds;
- :class:`~repro.stream.sketch.spacesaving.SpaceSaving` — top-k heavy
  hitters with guaranteed recall above ``N / k`` and a per-key lower
  bound that can never exceed the true count;
- :class:`~repro.stream.sketch.hll.HyperLogLog` — distinct-source and
  distinct-victim cardinality at ``1.04 / sqrt(m)`` relative error;
- :class:`~repro.stream.sketch.tier.SketchTier` — wires all three into
  the per-packet update path behind ``StreamConfig(mode="sketch")``,
  firing Moore-threshold flood alerts off the space-saving lower bound.

Every structure is seeded (deterministic across runs and processes),
picklable, and merges deterministically — count-min rows add, HLL
registers max, space-saving summaries union-and-truncate — so they
compose with the source-sharded parallel pipeline the same way
``PartialState`` does.  The exact mode is the ground truth:
``benchmarks/bench_sketch_accuracy.py`` measures alert precision/
recall and count error against it across scenario seeds.
"""

from repro.stream.sketch.countmin import CountMinSketch
from repro.stream.sketch.hashing import mix64
from repro.stream.sketch.hll import HyperLogLog
from repro.stream.sketch.spacesaving import SpaceSaving
from repro.stream.sketch.tier import (
    EXACT_TALLY_BYTES_PER_SOURCE,
    FloodEpisode,
    SketchTier,
    VECTORS,
)

__all__ = [
    "CountMinSketch",
    "EXACT_TALLY_BYTES_PER_SOURCE",
    "FloodEpisode",
    "HyperLogLog",
    "SketchTier",
    "SpaceSaving",
    "VECTORS",
    "mix64",
]
