"""Space-saving top-k heavy hitters (Metwally, Agrawal, El Abbadi).

At most ``capacity`` keys are monitored.  A hit on an unmonitored key
when the table is full displaces the minimum-count entry: the new key
inherits the displaced count as both its count and its error term, so
``count - error`` (the :meth:`lower_bound`) never exceeds the key's
true count while ``count`` never falls below it.  The classic
guarantees follow: ``min_count <= total / capacity``, every key whose
true count exceeds ``total / capacity`` is monitored, and a key with
``lower_bound > t`` *provably* has true count above ``t`` — which is
exactly what the sketch tier needs to fire Moore-threshold flood
alerts without false positives from sketch error.

Eviction breaks count ties on the smaller key, so runs are
deterministic regardless of dict iteration history.  Summaries with
equal capacity merge by adding matched (count, error) pairs and
keeping the top ``capacity`` survivors ordered by (count desc, key
asc) — commutative always, associative whenever the combined key set
fits (the sharded pipeline's per-source shards keep key sets disjoint,
so worker merges are exact unions until capacity is hit).  Plain-dict
state keeps instances picklable.
"""

from __future__ import annotations

import sys


class SpaceSaving:
    """Deterministic space-saving summary over integer keys."""

    __slots__ = ("capacity", "total", "evictions", "_entries")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("space-saving capacity must be >= 1")
        self.capacity = capacity
        #: sum of all update increments seen (the N of the N/k bound).
        self.total = 0
        #: monitored keys displaced so far.
        self.evictions = 0
        #: key -> [count, error]; insertion-ordered like any dict.
        self._entries: dict = {}

    # -- updates -----------------------------------------------------------

    def update(self, key: int, count: int = 1):
        """Count a hit; returns ``(count, error, displaced_key)``.

        ``displaced_key`` is the key evicted to make room (or ``None``)
        so callers keeping per-key side state (the sketch tier's flood
        episodes) can drop theirs in lockstep.
        """
        if count < 1:
            raise ValueError("space-saving increments must be positive")
        self.total += count
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            entry[0] += count
            return entry[0], entry[1], None
        if len(entries) < self.capacity:
            entries[key] = [count, 0]
            return count, 0, None
        displaced = min(entries.items(), key=lambda item: (item[1][0], item[0]))
        floor = displaced[1][0]
        del entries[displaced[0]]
        entries[key] = [floor + count, floor]
        self.evictions += 1
        return floor + count, floor, displaced[0]

    # -- queries -----------------------------------------------------------

    def estimate(self, key: int):
        """``(count, error)`` for a monitored key, else ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        return entry[0], entry[1]

    def lower_bound(self, key: int) -> int:
        """Guaranteed-at-least true count (0 for unmonitored keys)."""
        entry = self._entries.get(key)
        if entry is None:
            return 0
        return entry[0] - entry[1]

    @property
    def min_count(self) -> int:
        """Smallest monitored count (0 until the table fills)."""
        entries = self._entries
        if len(entries) < self.capacity:
            return 0
        return min(entry[0] for entry in entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def items(self):
        """``(key, count, error)`` for every monitored key."""
        return [
            (key, entry[0], entry[1]) for key, entry in self._entries.items()
        ]

    def top(self, n: int):
        """The ``n`` heaviest monitored keys, (count desc, key asc)."""
        ranked = sorted(
            self._entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [(key, entry[0], entry[1]) for key, entry in ranked[:n]]

    def guaranteed(self, threshold: int):
        """Keys whose *true* count provably exceeds ``threshold``."""
        return [
            key
            for key, entry in self._entries.items()
            if entry[0] - entry[1] > threshold
        ]

    #: amortized dict-slot cost per entry; the live allocation wobbles
    #: with CPython resize history under eviction churn, so the report
    #: uses a fixed per-slot figure to stay deterministic.
    _DICT_SLOT_BYTES = 72

    def memory_bytes(self) -> int:
        """Deterministic resident-size ceiling: a full table of
        ``capacity`` ``[count, error]`` cells plus amortized dict
        slots — a function of the sizing knob alone, never of how many
        keys churned through."""
        per_entry = sys.getsizeof([0, 0]) + 2 * 28  # list + two boxed ints
        return sys.getsizeof({}) + self.capacity * (
            per_entry + self._DICT_SLOT_BYTES
        )

    # -- composition -------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> None:
        """Combine ``other`` into self (equal capacities required)."""
        if self.capacity != other.capacity:
            raise ValueError(
                "space-saving merge needs equal capacities: "
                f"{self.capacity} vs {other.capacity}"
            )
        combined = {
            key: list(entry) for key, entry in self._entries.items()
        }
        for key, entry in other._entries.items():
            mine = combined.get(key)
            if mine is None:
                combined[key] = list(entry)
            else:
                mine[0] += entry[0]
                mine[1] += entry[1]
        if len(combined) > self.capacity:
            ranked = sorted(
                combined.items(), key=lambda item: (-item[1][0], item[0])
            )
            combined = dict(ranked[: self.capacity])
            self.evictions += len(ranked) - self.capacity
        self._entries = combined
        self.total += other.total
        self.evictions += other.evictions

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceSaving(capacity={self.capacity}, monitored={len(self)}, "
            f"total={self.total})"
        )
