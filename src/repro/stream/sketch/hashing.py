"""Seeded 64-bit mixing for the sketch tier.

All sketch structures hash integer keys (sources and victims are
integer IPv4 addresses throughout the codebase) through the same
finalizer: splitmix64's output mix.  It is seeded by XORing a salt into
the key *before* mixing, so every structure draws an independent hash
family from one parent seed via :func:`repro.util.rng.derive_seed` —
deterministic across processes and interpreter runs, unlike ``hash()``
which `PYTHONHASHSEED` perturbs for str/bytes keys.

The mix is bijective on 64-bit integers, so two distinct keys collide
under a given salt only by landing in the same sketch cell, never in
the hash itself.
"""

from __future__ import annotations

_MASK64 = 0xFFFFFFFFFFFFFFFF


def mix64(value: int) -> int:
    """splitmix64's finalization mix of ``value`` (mod 2**64)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)
