"""The sketch tier: constant-memory flood detection for the monitor.

:class:`SketchTier` is the third :class:`~repro.stream.analyzer.
StreamAnalyzer` mode's engine.  It consumes the same classified packet
stream as the exact/bounded modes but keeps **no sessions and no
per-source dicts** — every per-packet update lands in a fixed-size
probabilistic structure:

- :class:`~repro.stream.sketch.countmin.CountMinSketch` ×2 — per-source
  QUIC packet and byte tallies (the exact mode's
  ``quic_source_packets``, without the dict);
- :class:`~repro.stream.sketch.spacesaving.SpaceSaving` per backscatter
  vector — heavy-hitter victims.  Each monitored victim carries a tiny
  :class:`FloodEpisode` replicating the sessionizer's gap-split rule,
  so Moore-threshold detection runs on the space-saving **lower
  bound**: an alert fires only when the victim *provably* crossed the
  thresholds, never on inherited sketch error;
- :class:`~repro.stream.sketch.hll.HyperLogLog` ×2 — distinct QUIC
  sources and distinct backscatter victims.

While a flood victim stays monitored (capacity permitting — floods are
by construction the heavy hitters), its episode count, minute-slot
maximum, and gap splits match the exact sessionizer packet for packet,
which is why sketch-mode alerts reproduce exact-mode alerts on
telescope workloads (``benchmarks/bench_sketch_accuracy.py`` measures
the precision/recall of exactly that).

Total memory is ``O(width * depth + 2**precision + capacity)`` —
independent of source cardinality; ``memory_bytes()`` reports the real
figure and the accuracy bench asserts it constant in source count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.core.classify import PacketClass
from repro.core.dos import DosThresholds
from repro.core.sessions import DEFAULT_TIMEOUT
from repro.net.tcp import TcpFlags
from repro.stream.sketch.countmin import CountMinSketch
from repro.stream.sketch.hll import HyperLogLog
from repro.stream.sketch.spacesaving import SpaceSaving
from repro.util.rng import derive_seed
from repro.util.timeutil import HOUR, MINUTE

VECTORS = ("quic", "tcp", "icmp")

_TCP_RST = int(TcpFlags.RST)
_TCP_SYN_ACK = int(TcpFlags.SYN | TcpFlags.ACK)

# Registry families of the sketch tier (see docs/METRICS.md).  Like
# every repro.obs surface these publish at batch boundaries — the
# analyzer calls publish_metrics() after each batch — never per packet.
_M_UPDATES = obs.counter(
    "repro_sketch_updates_total",
    "per-packet sketch updates applied, per structure",
    labels=("structure",),
)
_M_EVICTIONS = obs.counter(
    "repro_sketch_evictions_total",
    "space-saving heavy-hitter displacements, per vector",
    labels=("vector",),
)
_M_HEAVY = obs.gauge(
    "repro_sketch_heavy_entries",
    "monitored heavy-hitter victims, per vector",
    labels=("vector",),
)
_M_MEMORY = obs.gauge(
    "repro_sketch_memory_bytes",
    "bytes held by the sketch tally structures, per structure",
    labels=("structure",),
)
_M_DISTINCT = obs.gauge(
    "repro_sketch_distinct_estimate",
    "HyperLogLog distinct-cardinality estimate, per entity",
    labels=("entity",),
)

#: rough per-source cost of the exact mode's dict tallies (a dict slot
#: plus a boxed int) — used only for the status line's "what would
#: exact cost" comparison, not for any accuracy claim.
EXACT_TALLY_BYTES_PER_SOURCE = 120


@dataclass(slots=True)
class FloodEpisode:
    """Per-monitored-victim flood state — the sketch-tier stand-in for
    a backscatter session (same gap-split rule, minute-slot max, and
    threshold snapshot; ~5 numbers instead of a Session)."""

    first_ts: float
    last_ts: float
    #: space-saving lower bound just before the episode's first packet;
    #: the episode's packet count is ``lower_bound_now - base``.
    base: int
    minute: int
    minute_count: int = 1
    max_minute: int = 1
    alerted: bool = False
    #: the LiveFlood the analyzer registered at alert time (its ``end``
    #: is kept fresh so online correlation sees the episode's true span).
    flood: object = None


class SketchTier:
    """Fixed-memory per-packet tallies + lower-bound flood detection."""

    def __init__(
        self,
        *,
        width: int = 2048,
        depth: int = 4,
        capacity: int = 512,
        precision: int = 12,
        seed: int = 20210401,
        thresholds: Optional[DosThresholds] = None,
        timeout: float = DEFAULT_TIMEOUT,
        on_alert: Optional[Callable] = None,
        on_ended: Optional[Callable] = None,
    ) -> None:
        self.width = width
        self.depth = depth
        self.capacity = capacity
        self.precision = precision
        self.seed = seed
        self.thresholds = thresholds or DosThresholds()
        self.timeout = timeout
        #: on_alert(vector, victim, start, crossed_at, packets, max_pps)
        #: -> optional LiveFlood to keep fresh; on_ended(vector, victim,
        #: start, end, packets, max_pps).  Wired by the analyzer; both
        #: optional so the tier runs standalone in tests and benches.
        self.on_alert = on_alert
        self.on_ended = on_ended
        self.packet_counts = CountMinSketch(
            width, depth, derive_seed(seed, "cms-packets")
        )
        self.byte_counts = CountMinSketch(
            width, depth, derive_seed(seed, "cms-bytes")
        )
        self.sources = HyperLogLog(precision, derive_seed(seed, "hll-sources"))
        self.victims = HyperLogLog(precision, derive_seed(seed, "hll-victims"))
        self.heavy = {vector: SpaceSaving(capacity) for vector in VECTORS}
        self._episodes: dict = {vector: {} for vector in VECTORS}
        self.hourly_requests: dict = {}
        self.hourly_responses: dict = {}
        self._published: dict = {}

    # -- per-batch consumption ---------------------------------------------

    def consume_lane(self, batch: list, lane) -> None:
        """Fast-lane twin of :meth:`consume`: inline int classification
        plus the lane's memoized validity oracle, mirroring
        ``PartialState.consume_lane``'s branch structure."""
        entry_for = lane.entry_for
        dissect = lane.dissect_payloads
        for packet in batch:
            if packet.is_udp:
                src443 = packet.src_port == 443
                dst443 = packet.dst_port == 443
                if src443 == dst443:
                    continue  # port conflict or unrelated UDP
                if dissect and not entry_for(packet.payload)[0]:
                    continue  # malformed / non-QUIC payload
                self._observe_quic(
                    packet.src,
                    packet.timestamp,
                    packet.wire_length,
                    request=dst443,
                )
            elif packet.is_tcp:
                transport = packet.transport
                if transport is None:
                    continue
                flags = int(transport.flags)
                if (flags & _TCP_SYN_ACK) == _TCP_SYN_ACK or flags & _TCP_RST:
                    self._observe_backscatter(
                        "tcp", packet.src, packet.timestamp
                    )
            elif packet.is_icmp:
                transport = packet.transport
                if transport is not None and transport.is_backscatter:
                    self._observe_backscatter(
                        "icmp", packet.src, packet.timestamp
                    )

    def consume(self, batch: list, classifier) -> None:
        """Rich-classifier path (``--no-fast-lane``): identical updates
        driven by ``classify_batch`` instead of the inline walk."""
        for classified in classifier.classify_batch(batch):
            cls = classified.packet_class
            packet = classified.packet
            if cls is PacketClass.QUIC_REQUEST:
                self._observe_quic(
                    packet.src, packet.timestamp, packet.wire_length, request=True
                )
            elif cls is PacketClass.QUIC_RESPONSE:
                self._observe_quic(
                    packet.src, packet.timestamp, packet.wire_length, request=False
                )
            elif cls is PacketClass.TCP_BACKSCATTER:
                self._observe_backscatter("tcp", packet.src, packet.timestamp)
            elif cls is PacketClass.ICMP_BACKSCATTER:
                self._observe_backscatter("icmp", packet.src, packet.timestamp)

    # -- per-packet updates ------------------------------------------------

    def _observe_quic(
        self, source: int, timestamp: float, wire_length: int, *, request: bool
    ) -> None:
        self.packet_counts.update(source)
        self.byte_counts.update(source, wire_length)
        self.sources.add(source)
        hour = int(timestamp // HOUR)
        if request:
            self.hourly_requests[hour] = self.hourly_requests.get(hour, 0) + 1
        else:
            self.hourly_responses[hour] = (
                self.hourly_responses.get(hour, 0) + 1
            )
            self._observe_backscatter("quic", source, timestamp)

    def _observe_backscatter(
        self, vector: str, source: int, timestamp: float
    ) -> None:
        self.victims.add(source)
        count, error, displaced = self.heavy[vector].update(source)
        episodes = self._episodes[vector]
        if displaced is not None:
            dead = episodes.pop(displaced, None)
            if dead is not None and dead.alerted:
                self._end_episode(vector, displaced, dead)
        lower = count - error
        episode = episodes.get(source)
        if episode is None:
            episodes[source] = FloodEpisode(
                first_ts=timestamp,
                last_ts=timestamp,
                base=lower - 1,
                minute=int(timestamp // MINUTE),
            )
            return
        if timestamp - episode.last_ts > self.timeout:
            # the sessionizer's gap-split rule: same victim, new flood
            if episode.alerted:
                self._end_episode(vector, source, episode)
            episodes[source] = FloodEpisode(
                first_ts=timestamp,
                last_ts=timestamp,
                base=lower - 1,
                minute=int(timestamp // MINUTE),
            )
            return
        episode.last_ts = timestamp
        minute = int(timestamp // MINUTE)
        if minute == episode.minute:
            episode.minute_count += 1
            if episode.minute_count > episode.max_minute:
                episode.max_minute = episode.minute_count
        else:
            episode.minute = minute
            episode.minute_count = 1
        if episode.alerted:
            if episode.flood is not None:
                episode.flood.end = timestamp
            return
        packets = lower - episode.base
        thresholds = self.thresholds
        if (
            packets > thresholds.min_packets
            and timestamp - episode.first_ts > thresholds.min_duration
            and episode.max_minute / MINUTE > thresholds.min_max_pps
        ):
            episode.alerted = True
            if self.on_alert is not None:
                episode.flood = self.on_alert(
                    vector,
                    source,
                    episode.first_ts,
                    timestamp,
                    packets,
                    episode.max_minute / MINUTE,
                )

    def _end_episode(self, vector: str, source: int, episode) -> None:
        if episode.flood is not None:
            episode.flood.end = episode.last_ts
        if self.on_ended is not None:
            lower = self.heavy[vector].lower_bound(source)
            self.on_ended(
                vector,
                source,
                episode.first_ts,
                episode.last_ts,
                max(0, lower - episode.base),
                episode.max_minute / MINUTE,
            )

    # -- watermark-driven lifecycle ----------------------------------------

    def sweep(self, watermark: float) -> None:
        """Close episodes idle past the timeout — the same watermark
        rule the sessionizer's ``expire`` applies to sessions."""
        timeout = self.timeout
        for vector in VECTORS:
            episodes = self._episodes[vector]
            expired = [
                source
                for source, episode in episodes.items()
                if watermark - episode.last_ts > timeout
            ]
            for source in expired:
                episode = episodes.pop(source)
                if episode.alerted:
                    self._end_episode(vector, source, episode)

    def flush(self) -> None:
        """End of stream: close every remaining episode."""
        for vector in VECTORS:
            episodes = self._episodes[vector]
            for source, episode in episodes.items():
                if episode.alerted:
                    self._end_episode(vector, source, episode)
            episodes.clear()

    def prune_hours(self, hour: int, retain_hours: int):
        """Roll hour buckets older than the retain window out of the
        hourly series; returns (pruned requests, responses, buckets)."""
        floor = hour - retain_hours
        pruned_requests = pruned_responses = buckets = 0
        for rolled in [h for h in self.hourly_requests if h < floor]:
            pruned_requests += self.hourly_requests.pop(rolled)
            buckets += 1
        for rolled in [h for h in self.hourly_responses if h < floor]:
            pruned_responses += self.hourly_responses.pop(rolled)
            buckets += 1
        return pruned_requests, pruned_responses, buckets

    # -- telemetry ---------------------------------------------------------

    def episode_count(self) -> int:
        return sum(len(episodes) for episodes in self._episodes.values())

    def heavy_entries(self) -> int:
        return sum(len(summary) for summary in self.heavy.values())

    def structure_memory_bytes(self) -> int:
        """Bytes in the fixed tally structures alone — a hard ceiling
        set at construction time, independent of source cardinality."""
        total = self.packet_counts.memory_bytes()
        total += self.byte_counts.memory_bytes()
        total += self.sources.memory_bytes()
        total += self.victims.memory_bytes()
        for summary in self.heavy.values():
            total += summary.memory_bytes()
        return total

    def memory_bytes(self) -> int:
        """Actual bytes in the tally structures (episodes included) —
        plateaus once the space-saving tables fill, regardless of how
        many distinct sources the stream carries."""
        # episodes: a slotted dataclass of ~8 scalars per monitored key
        return self.structure_memory_bytes() + self.episode_count() * 120

    def exact_memory_estimate(self) -> int:
        """What the exact mode's per-source dicts would cost for the
        HLL-estimated source cardinality (status-line comparison)."""
        return int(self.sources.estimate()) * EXACT_TALLY_BYTES_PER_SOURCE

    def publish_metrics(self) -> None:
        """Fold tier tallies into the registry (batch boundary only)."""
        if not obs.enabled():
            return
        published = self._published
        updates = {
            "countmin-packets": self.packet_counts.updates,
            "countmin-bytes": self.byte_counts.updates,
            "spacesaving": sum(
                summary.total for summary in self.heavy.values()
            ),
            "hll-sources": self.sources.updates,
            "hll-victims": self.victims.updates,
        }
        for structure, value in updates.items():
            delta = value - published.get(("updates", structure), 0)
            if delta:
                _M_UPDATES.inc(delta, structure=structure)
                published[("updates", structure)] = value
        for vector, summary in self.heavy.items():
            delta = summary.evictions - published.get(("evictions", vector), 0)
            if delta:
                _M_EVICTIONS.inc(delta, vector=vector)
                published[("evictions", vector)] = summary.evictions
            _M_HEAVY.set(len(summary), vector=vector)
        _M_MEMORY.set(
            self.packet_counts.memory_bytes() + self.byte_counts.memory_bytes(),
            structure="countmin",
        )
        _M_MEMORY.set(
            sum(summary.memory_bytes() for summary in self.heavy.values()),
            structure="spacesaving",
        )
        _M_MEMORY.set(
            self.sources.memory_bytes() + self.victims.memory_bytes(),
            structure="hll",
        )
        _M_DISTINCT.set(int(self.sources.estimate()), entity="source")
        _M_DISTINCT.set(int(self.victims.estimate()), entity="victim")

    # -- composition -------------------------------------------------------

    def merge(self, other: "SketchTier") -> None:
        """Fold a shard's tier into this one.

        Valid under the parallel pipeline's source-IP sharding: key
        sets are disjoint, so count-min rows add, HLL registers max,
        space-saving summaries union (exact until capacity), hourly
        buckets add, and live episodes transfer without collisions.
        """
        if (self.width, self.depth, self.capacity, self.precision, self.seed) != (
            other.width,
            other.depth,
            other.capacity,
            other.precision,
            other.seed,
        ):
            raise ValueError("sketch tier merge needs identical sizing + seed")
        self.packet_counts.merge(other.packet_counts)
        self.byte_counts.merge(other.byte_counts)
        self.sources.merge(other.sources)
        self.victims.merge(other.victims)
        for vector in VECTORS:
            self.heavy[vector].merge(other.heavy[vector])
            mine = self._episodes[vector]
            theirs = other._episodes[vector]
            overlap = mine.keys() & theirs.keys()
            if overlap:
                raise ValueError(
                    f"sketch tier merge with overlapping {vector} episode "
                    f"sources: {sorted(overlap)[:3]}"
                )
            mine.update(theirs)
        for hour, count in other.hourly_requests.items():
            self.hourly_requests[hour] = (
                self.hourly_requests.get(hour, 0) + count
            )
        for hour, count in other.hourly_responses.items():
            self.hourly_responses[hour] = (
                self.hourly_responses.get(hour, 0) + count
            )

    def merge_federated(self, other: "SketchTier") -> None:
        """Fold a *destination-partitioned* vantage's tier into this one.

        Telescope federation splits the stream by destination prefix,
        so the same source/victim legitimately appears in several
        tiers — the disjoint-source precondition of :meth:`merge` does
        not hold.  The mergeable structures stay exact or
        conservative: count-min rows add (the merged estimate is an
        upper bound on the union count), HLL registers max (*exactly*
        the union cardinality sketch), space-saving summaries
        union-and-truncate, hourly buckets add (exact).  Live episodes
        for the same victim are joined with the sessionizer gap rule —
        span-union when the fragments overlap or sit within the
        timeout, else the later fragment wins — an *approximation*
        (episode packet counts are lower-bound deltas and cannot be
        reconstructed across partitions), which is why federated
        vantages ship their alert/ended event lists alongside the tier
        and the aggregator dedups floods on those events, not on
        episode state (see docs/FEDERATION.md).
        """
        if (self.width, self.depth, self.capacity, self.precision, self.seed) != (
            other.width,
            other.depth,
            other.capacity,
            other.precision,
            other.seed,
        ):
            raise ValueError("sketch tier merge needs identical sizing + seed")
        self.packet_counts.merge(other.packet_counts)
        self.byte_counts.merge(other.byte_counts)
        self.sources.merge(other.sources)
        self.victims.merge(other.victims)
        for vector in VECTORS:
            self.heavy[vector].merge(other.heavy[vector])
            mine = self._episodes[vector]
            for victim, episode in other._episodes[vector].items():
                current = mine.get(victim)
                if current is None:
                    mine[victim] = episode
                    continue
                first, second = (
                    (current, episode)
                    if current.first_ts <= episode.first_ts
                    else (episode, current)
                )
                if second.first_ts - first.last_ts <= self.timeout:
                    first.last_ts = max(first.last_ts, second.last_ts)
                    first.max_minute = max(first.max_minute, second.max_minute)
                    first.alerted = first.alerted or second.alerted
                    mine[victim] = first
                else:
                    mine[victim] = second
        for hour, count in other.hourly_requests.items():
            self.hourly_requests[hour] = (
                self.hourly_requests.get(hour, 0) + count
            )
        for hour, count in other.hourly_responses.items():
            self.hourly_responses[hour] = (
                self.hourly_responses.get(hour, 0) + count
            )

    def __getstate__(self):
        state = dict(self.__dict__)
        state["on_alert"] = None  # analyzer-bound callbacks don't travel
        state["on_ended"] = None
        return state
