"""Packet feeds for the online monitor.

Two sources drive :class:`~repro.stream.analyzer.StreamAnalyzer`:

- :func:`follow_pcap` — tail-follow a (possibly still growing) pcap
  file using the reader's lenient tail mode: a truncated trailing
  record means "not yet written", so the feed polls until the file
  stops growing for ``idle_timeout`` seconds (``0`` reads a complete
  capture once and stops; ``None`` follows forever).
- :func:`simulator_feed` — the telescope simulator driven as a live
  generator (see :meth:`repro.telescope.workload.Scenario.live_batches`),
  optionally paced against the wall clock.

Both yield non-empty, time-ordered packet batches.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro import obs
from repro.net.pcap import PcapReader

_M_CORRUPT = obs.counter(
    "repro_pcap_corrupt_records_total",
    "corrupt pcap records skipped by lenient readers (bad record "
    "header, unparseable body, or truncated final record)",
)


def note_corrupt_records(count: int) -> None:
    """Publish corrupt-record skips to the registry (used by lenient
    pcap consumers outside this module, e.g. the analyze CLI)."""
    if count and obs.enabled():
        _M_CORRUPT.inc(count)


def follow_pcap(
    path: Union[str, Path],
    *,
    batch_size: int = 512,
    poll_interval: float = 0.2,
    idle_timeout: Optional[float] = 0.0,
    sleep=time.sleep,
    lenient: bool = False,
    on_corrupt: Optional[Callable[[int], None]] = None,
) -> Iterator[list]:
    """Yield packet batches from a pcap file as it is written.

    Partial batches are flushed whenever the file is momentarily
    exhausted so alerts are never starved behind a batch boundary.

    ``lenient=True`` survives interior corruption (see
    :class:`~repro.net.pcap.PcapReader`): corrupt records are skipped
    and counted, and each newly observed skip is reported as a delta to
    ``on_corrupt`` (wire it to
    :meth:`~repro.stream.analyzer.StreamAnalyzer.record_corrupt_records`)
    plus the ``repro_pcap_corrupt_records_total`` counter.
    """
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    if poll_interval <= 0:
        raise ValueError("poll interval must be positive")
    with open(path, "rb") as stream:
        reader = PcapReader(stream, tail=True, lenient=lenient)
        pending: list = []
        idle = 0.0
        seen_corrupt = 0

        def flush_corrupt() -> None:
            nonlocal seen_corrupt
            delta = reader.corrupt_records - seen_corrupt
            if delta:
                seen_corrupt = reader.corrupt_records
                note_corrupt_records(delta)
                if on_corrupt is not None:
                    on_corrupt(delta)

        while True:
            got = 0
            for packet in reader:
                pending.append(packet)
                got += 1
                if len(pending) >= batch_size:
                    yield pending
                    pending = []
            if lenient:
                flush_corrupt()
            if got:
                idle = 0.0
                if pending:
                    yield pending
                    pending = []
            else:
                if idle_timeout is not None and idle >= idle_timeout:
                    break
                sleep(poll_interval)
                idle += poll_interval
        if pending:
            yield pending


def simulator_feed(
    scenario,
    *,
    batch_size: int = 512,
    speed: Optional[float] = None,
) -> Iterator[list]:
    """The telescope simulator as a live feed.

    ``speed`` is event-seconds per wall-second (``None`` or ``0``
    releases batches as fast as they generate).
    """
    return scenario.live_batches(batch_size=batch_size, speed=speed)
