"""Online telescope monitoring: the streaming layer over the batch core.

The batch pipeline (:mod:`repro.core.pipeline`) answers "what happened
in this capture" once, at finalization.  This package answers it *as it
happens*: :class:`StreamAnalyzer` runs the same classification and
sessionization incrementally over an unbounded feed, closes sessions
behind an event-time watermark, raises typed
:class:`~repro.stream.events.FloodAlert` /
:class:`~repro.stream.events.AttackEnded` events the moment the Moore
thresholds are crossed, correlates vectors online against a sliding
flood window, and — in bounded mode — keeps memory proportional to
*active* sources instead of capture size.

On any finite capture the exact mode reproduces the batch
``PipelineResult`` bit for bit (``tests/test_stream_equivalence.py``),
the same way the parallel runner pins serial ≡ parallel.

``python -m repro watch`` is the CLI front end; feeds come from
:mod:`repro.stream.feeds` (live simulator, tail-followed pcap).
"""

from repro.stream.analyzer import (
    STREAM_MODES,
    StreamAnalyzer,
    StreamConfig,
    StreamResultUnavailable,
    StreamTelemetry,
)
from repro.stream.correlate import LiveFlood, OnlineCorrelator
from repro.stream.events import AttackEnded, FloodAlert
from repro.stream.feeds import follow_pcap, simulator_feed
from repro.stream.sketch import (
    CountMinSketch,
    HyperLogLog,
    SketchTier,
    SpaceSaving,
)

__all__ = [
    "AttackEnded",
    "CountMinSketch",
    "FloodAlert",
    "HyperLogLog",
    "LiveFlood",
    "OnlineCorrelator",
    "STREAM_MODES",
    "SketchTier",
    "SpaceSaving",
    "StreamAnalyzer",
    "StreamConfig",
    "StreamResultUnavailable",
    "StreamTelemetry",
    "follow_pcap",
    "simulator_feed",
]
