"""QUIC variable-length integer encoding (RFC 9000, Section 16).

QUIC encodes integers in 1, 2, 4 or 8 bytes.  The two most significant
bits of the first byte encode the total length of the field
(``00`` -> 1 byte, ``01`` -> 2, ``10`` -> 4, ``11`` -> 8); the remaining
bits carry the value in network byte order.

The functions here are used both by the packet *builders* (traffic
generators, handshake machines) and by the *dissector*, so they are kept
strict: malformed input raises :class:`VarintError` instead of silently
mis-parsing, mirroring how Wireshark flags malformed QUIC packets.
"""

from __future__ import annotations

MAX_VARINT = (1 << 62) - 1

_PREFIX_TO_LENGTH = {0b00: 1, 0b01: 2, 0b10: 4, 0b11: 8}


class VarintError(ValueError):
    """Raised when a varint cannot be encoded or decoded."""


def varint_length(value: int) -> int:
    """Return the number of bytes needed to encode ``value``.

    >>> varint_length(37)
    1
    >>> varint_length(15293)
    2
    """
    if value < 0:
        raise VarintError(f"varint cannot encode negative value {value}")
    if value <= 63:
        return 1
    if value <= 16383:
        return 2
    if value <= 1073741823:
        return 4
    if value <= MAX_VARINT:
        return 8
    raise VarintError(f"value {value} exceeds 62-bit varint range")


def encode_varint(value: int, length: int | None = None) -> bytes:
    """Encode ``value`` as a QUIC varint.

    ``length`` may force a wider-than-minimal encoding (1, 2, 4 or 8),
    which RFC 9000 permits and some implementations use, e.g. to
    reserve room for later in-place updates.
    """
    minimal = varint_length(value)
    if length is None:
        length = minimal
    if length not in (1, 2, 4, 8):
        raise VarintError(f"invalid varint length {length}")
    if length < minimal:
        raise VarintError(f"value {value} does not fit in {length} byte(s)")
    prefix = {1: 0b00, 2: 0b01, 4: 0b10, 8: 0b11}[length]
    raw = value.to_bytes(length, "big")
    return bytes([raw[0] | (prefix << 6)]) + raw[1:]


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, new_offset)``.  Raises :class:`VarintError` when
    the buffer is truncated.
    """
    if offset >= len(data):
        raise VarintError("varint truncated: empty buffer")
    first = data[offset]
    length = _PREFIX_TO_LENGTH[first >> 6]
    end = offset + length
    if end > len(data):
        raise VarintError(
            f"varint truncated: need {length} bytes, have {len(data) - offset}"
        )
    raw = bytes([first & 0x3F]) + data[offset + 1 : end]
    return int.from_bytes(raw, "big"), end
