"""Gating for the wire-template synthesis caches.

The traffic generators memoize protected datagram bytes and AEAD
keystreams (see :class:`repro.telescope.backscatter.DatagramTemplateCache`
and :mod:`repro.quic.crypto`).  Every cache key captures all inputs that
determine the cached bytes, so caching never changes output — but the
equivalence suite still proves it empirically by re-running a seeded
scenario with ``REPRO_DISABLE_TEMPLATE_CACHE=1`` and comparing streams
byte for byte.  The flag is read at lookup time so tests can flip it
with ``monkeypatch.setenv`` without re-importing modules.
"""

from __future__ import annotations

import os

DISABLE_TEMPLATE_CACHE_ENV = "REPRO_DISABLE_TEMPLATE_CACHE"


def template_cache_enabled() -> bool:
    """Whether the generator-side synthesis caches are active."""
    return not os.environ.get(DISABLE_TEMPLATE_CACHE_ENV)
