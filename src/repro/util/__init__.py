"""Shared utilities for the QUICsand reproduction.

This package contains small, dependency-free building blocks used across
the substrates and the analysis core:

- :mod:`repro.util.varint` — QUIC variable-length integers (RFC 9000 §16).
- :mod:`repro.util.rng` — deterministic, stream-splittable random sources.
- :mod:`repro.util.timeutil` — epoch/bucket helpers for time-series work.
- :mod:`repro.util.stats` — empirical CDFs, percentiles and summaries.
- :mod:`repro.util.render` — plain-text tables and charts for benches.
- :mod:`repro.util.batching` — chunked iteration over packet streams.
"""

from repro.util.batching import batched
from repro.util.varint import (
    VarintError,
    decode_varint,
    encode_varint,
    varint_length,
)
from repro.util.rng import SeededRng, derive_seed
from repro.util.stats import EmpiricalCdf, Summary, percentile, summarize
from repro.util.timeutil import (
    HOUR,
    MINUTE,
    bucket_of,
    hour_of_day,
    iter_buckets,
)

__all__ = [
    "batched",
    "VarintError",
    "decode_varint",
    "encode_varint",
    "varint_length",
    "SeededRng",
    "derive_seed",
    "EmpiricalCdf",
    "Summary",
    "percentile",
    "summarize",
    "HOUR",
    "MINUTE",
    "bucket_of",
    "hour_of_day",
    "iter_buckets",
]
