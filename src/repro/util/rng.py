"""Deterministic random sources.

Every stochastic component in the reproduction (scanner schedules,
attack arrivals, spoofed address choices, server jitter) draws from a
:class:`SeededRng`.  Components never share a generator: each derives a
child seed from its parent seed plus a label, so adding a new traffic
source does not perturb the random stream of existing sources.  This is
what makes bench output reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from ``parent_seed`` and ``label``."""
    digest = hashlib.sha256(f"{parent_seed}/{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """A labelled, splittable wrapper around :class:`random.Random`.

    >>> rng = SeededRng(7)
    >>> child = rng.child("scanner:tum")
    >>> child2 = SeededRng(7).child("scanner:tum")
    >>> child.randint(0, 10**9) == child2.randint(0, 10**9)
    True
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self._split_labels: set[str] = set()
        rng = self._random = random.Random(seed)
        # Per-draw delegates are bound once instead of defined as
        # wrapper methods: the generators draw tens of thousands of
        # times per simulated hour and the extra call frame is pure
        # overhead.  The draws themselves are unchanged, so streams
        # stay identical.
        self.random = rng.random
        self.randint = rng.randint
        self.getrandbits = rng.getrandbits
        self.uniform = rng.uniform
        self.expovariate = rng.expovariate
        self.lognormvariate = rng.lognormvariate
        self.gauss = rng.gauss
        self.choice = rng.choice
        self.sample = rng.sample
        self.shuffle = rng.shuffle

    def child(self, label: str) -> "SeededRng":
        """Return an independent generator derived from this one's seed."""
        return SeededRng(derive_seed(self.seed, label), label)

    def split(self, label: str) -> "SeededRng":
        """Split off an independent child stream, refusing label reuse.

        The derivation is identical to :meth:`child` — seed-based, so the
        child's stream depends only on ``(parent seed, label)``, never on
        how many draws the parent (or any sibling) has made.  The extra
        contract over ``child`` is that splitting the *same* label twice
        from one parent raises, which catches the one way two components
        can accidentally end up sharing a stream.  Sharded generation
        leans on this: every worker re-splits the same labels from the
        same scenario seed and provably gets the same streams.
        """
        if label in self._split_labels:
            raise ValueError(
                f"label {label!r} already split from {self.label!r}; "
                "reusing it would alias two random streams"
            )
        self._split_labels.add(label)
        return self.child(label)

    # -- remaining delegating helpers --------------------------------------

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int = 1) -> list[T]:
        return self._random.choices(seq, weights=weights, k=k)

    def randbytes(self, n: int) -> bytes:
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Pareto-distributed value with the given minimum (scale)."""
        return minimum * self._random.paretovariate(alpha)

    def weighted_index(self, weights: Iterable[float]) -> int:
        """Pick an index proportionally to ``weights``."""
        weights = list(weights)
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._random.random() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if target < acc:
                return index
        return len(weights) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed}, label={self.label!r})"
