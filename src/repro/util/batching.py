"""Chunked iteration over packet streams.

The pipeline's per-packet phase dispatches work in batches — both the
in-process fast path (one classifier call per batch instead of per
packet) and the sharded parallel runner (one IPC message per batch)
consume streams through :func:`batched`.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator


def batched(iterable: Iterable, size: int) -> Iterator[list]:
    """Yield consecutive lists of up to ``size`` items, preserving order."""
    if size <= 0:
        raise ValueError("batch size must be positive")
    iterator = iter(iterable)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch
