"""Small statistics helpers: percentiles, empirical CDFs, summaries.

The paper reports most results as CDFs (Figures 6, 7, 12, 13) and
medians.  :class:`EmpiricalCdf` is the shared representation the bench
harness prints and the tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} min={self.minimum:.2f} "
            f"p25={self.p25:.2f} med={self.median:.2f} p75={self.p75:.2f} "
            f"max={self.maximum:.2f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from any iterable of numbers."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        minimum=data[0],
        p25=percentile(data, 25),
        median=percentile(data, 50),
        p75=percentile(data, 75),
        maximum=data[-1],
    )


class EmpiricalCdf:
    """Empirical cumulative distribution over a finite sample.

    >>> cdf = EmpiricalCdf([1, 1, 2, 4])
    >>> cdf.fraction_at_most(1)
    0.5
    >>> cdf.quantile(0.75)
    2
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("EmpiricalCdf of empty sample")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def fraction_at_most(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        low, high = 0, len(self._values)
        while low < high:
            mid = (low + high) // 2
            if self._values[mid] <= x:
                low = mid + 1
            else:
                high = mid
        return low / len(self._values)

    def quantile(self, q: float) -> float:
        """Smallest sample value v with P(X <= v) >= q, for q in (0, 1]."""
        if not 0 < q <= 1:
            raise ValueError(f"quantile q={q} outside (0, 1]")
        index = max(0, int(q * len(self._values) + 0.999999) - 1)
        return self._values[min(index, len(self._values) - 1)]

    @property
    def median_value(self) -> float:
        return percentile(self._values, 50)

    def steps(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs, thinned for display."""
        n = len(self._values)
        points = [(v, (i + 1) / n) for i, v in enumerate(self._values)]
        if n <= max_points:
            return points
        stride = n / max_points
        picked = [points[min(int(i * stride), n - 1)] for i in range(max_points)]
        if picked[-1] != points[-1]:
            picked.append(points[-1])
        return picked
