"""Plain-text rendering of tables and charts.

The benchmark harness regenerates every table and figure of the paper as
terminal output: tables as aligned text, figures as ASCII line/bar
charts or printed CDF points.  Keeping rendering here means benches stay
focused on *what* to compute.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 0.0
    label_width = max((len(l) for l in labels), default=0)
    out = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        out.append(f"{label.ljust(label_width)} | {bar} {value:,.2f}")
    return "\n".join(out)


def sparkline(values: Sequence[float]) -> str:
    """Single-line unicode sparkline, used for hourly rate series."""
    glyphs = " .:-=+*#%@"
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return " " * len(values)
    return "".join(glyphs[min(int(v / peak * (len(glyphs) - 1)), len(glyphs) - 1)] for v in values)


def cdf_points(
    pairs: Sequence[tuple[float, float]],
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0),
) -> str:
    """Print selected points of a CDF given (value, fraction) step pairs."""
    out = []
    for target in fractions:
        chosen = next((v for v, f in pairs if f >= target), pairs[-1][0])
        out.append(f"  P{int(target * 100):3d} <= {chosen:,.2f}")
    return "\n".join(out)
