"""Time helpers for telescope time series.

All timestamps in the reproduction are Unix epoch seconds (floats).  The
measurement window in the paper is April 1-30, 2021; scenarios default
to windows inside that month so that correlated data sources
(census, honeypot tags) are trivially "in sync" as the paper requires.
"""

from __future__ import annotations

from typing import Iterator

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

#: 2021-04-01 00:00:00 UTC — start of the paper's measurement window.
APRIL_1_2021 = 1617235200.0
#: 2021-05-01 00:00:00 UTC — end (exclusive) of the measurement window.
MAY_1_2021 = 1619827200.0


def bucket_of(timestamp: float, start: float, width: float) -> int:
    """Return the index of the bucket of ``width`` seconds holding ``timestamp``."""
    if width <= 0:
        raise ValueError("bucket width must be positive")
    return int((timestamp - start) // width)


def hour_of_day(timestamp: float) -> int:
    """UTC hour-of-day (0-23) for an epoch timestamp."""
    return int(timestamp // HOUR) % 24


def iter_buckets(start: float, end: float, width: float) -> Iterator[float]:
    """Yield the left edge of every bucket covering ``[start, end)``."""
    if width <= 0:
        raise ValueError("bucket width must be positive")
    edge = start
    while edge < end:
        yield edge
        edge += width


def overlap_seconds(start_a: float, end_a: float, start_b: float, end_b: float) -> float:
    """Length of the intersection of two closed intervals, >= 0."""
    return max(0.0, min(end_a, end_b) - max(start_a, start_b))


def gap_seconds(start_a: float, end_a: float, start_b: float, end_b: float) -> float:
    """Gap between two non-overlapping intervals (0 when they touch/overlap)."""
    if overlap_seconds(start_a, end_a, start_b, end_b) > 0:
        return 0.0
    if end_a <= start_b:
        return start_b - end_a
    return start_a - end_b
