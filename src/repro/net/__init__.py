"""Packet substrate: IPv4/UDP/TCP/ICMP headers and pcap files.

The telescope simulator emits, and the analysis core consumes, packets
built from these classes.  Headers serialize to and parse from real wire
bytes (with correct Internet checksums), so the classification and
dissection stages of the pipeline operate on the same representation
the paper's toolchain saw in pcaps.
"""

from repro.net.addresses import (
    IPv4Network,
    format_ipv4,
    parse_ipv4,
)
from repro.net.checksum import internet_checksum
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.pcap import (
    PcapReader,
    PcapWriter,
    read_pcap,
    read_pcap_batches,
    write_pcap,
)
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader

__all__ = [
    "IPv4Network",
    "format_ipv4",
    "parse_ipv4",
    "internet_checksum",
    "IcmpHeader",
    "IcmpType",
    "IPProto",
    "IPv4Header",
    "CapturedPacket",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "read_pcap_batches",
    "write_pcap",
    "TcpFlags",
    "TcpHeader",
    "UdpHeader",
]
