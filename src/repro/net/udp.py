"""UDP header serialization and parsing (RFC 768)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.ipv4 import IPProto

_HEADER = struct.Struct("!HHHH")
HEADER_LEN = _HEADER.size  # 8


@dataclass(slots=True)
class UdpHeader:
    """A UDP header; checksum is computed over the pseudo-header."""

    src_port: int
    dst_port: int
    length: int = 0
    checksum: int = field(default=0, compare=False)

    def pack(self, payload: bytes, src_ip: int, dst_ip: int) -> bytes:
        length = HEADER_LEN + len(payload)
        head = _HEADER.pack(self.src_port, self.dst_port, length, 0)
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.UDP, length)
        checksum = internet_checksum(pseudo + head + payload)
        if checksum == 0:  # RFC 768: transmitted as all-ones
            checksum = 0xFFFF
        self.length = length
        self.checksum = checksum
        return head[:6] + checksum.to_bytes(2, "big") + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["UdpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError("UDP header truncated")
        src, dst, length, checksum = _HEADER.unpack_from(data)
        if length < HEADER_LEN:
            raise ValueError(f"invalid UDP length {length}")
        header = cls(src_port=src, dst_port=dst, length=length, checksum=checksum)
        return header, data[HEADER_LEN : min(len(data), length)]
