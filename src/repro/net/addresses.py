"""IPv4 addresses as plain integers.

The simulator routinely touches millions of addresses (full-IPv4
research sweeps, randomly spoofed flood sources), so addresses are
represented as ``int`` throughout and only formatted to dotted quads at
the presentation edge.  :class:`IPv4Network` provides the prefix
arithmetic the telescope (/9 capture filter) and the AS registry
(prefix allocation, longest-prefix match) need.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_IPV4 = (1 << 32) - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation to an integer address.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Format an integer address as a dotted quad."""
    if not 0 <= address <= MAX_IPV4:
        raise ValueError(f"address {address} outside IPv4 range")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class IPv4Network:
    """A CIDR prefix, e.g. ``IPv4Network.from_cidr("44.0.0.0/9")``.

    The network address is normalized (host bits cleared).
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"invalid prefix length {self.prefix_len}")
        mask = self.netmask
        if self.network & ~mask & MAX_IPV4:
            object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def from_cidr(cls, text: str) -> "IPv4Network":
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_ipv4(addr_text), int(len_text))

    @property
    def netmask(self) -> int:
        return (MAX_IPV4 << (32 - self.prefix_len)) & MAX_IPV4

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (~self.netmask & MAX_IPV4)

    def __contains__(self, address: int) -> bool:
        return (address & self.netmask) == self.network

    def contains(self, address: int) -> bool:
        return address in self

    def subnets(self, new_prefix_len: int) -> list["IPv4Network"]:
        """Split into equal-size subnets of ``new_prefix_len``."""
        if new_prefix_len < self.prefix_len or new_prefix_len > 32:
            raise ValueError(
                f"cannot split /{self.prefix_len} into /{new_prefix_len}"
            )
        step = 1 << (32 - new_prefix_len)
        return [
            IPv4Network(self.network + i * step, new_prefix_len)
            for i in range(1 << (new_prefix_len - self.prefix_len))
        ]

    def address_at(self, offset: int) -> int:
        """The ``offset``-th address inside the prefix."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside /{self.prefix_len}")
        return self.network + offset

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.prefix_len}"
