"""ICMP header serialization and parsing (RFC 792).

ICMP backscatter at a telescope is dominated by echo replies (to
spoofed echo-request floods) and destination-unreachable messages
(to spoofed UDP floods); both are modeled.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum

_HEADER = struct.Struct("!BBHHH")
HEADER_LEN = _HEADER.size  # 8


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(slots=True)
class IcmpHeader:
    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    checksum: int = field(default=0, compare=False)

    @property
    def is_backscatter(self) -> bool:
        """Types a darknet interprets as responses to spoofed packets."""
        return self.icmp_type in (
            IcmpType.ECHO_REPLY,
            IcmpType.DEST_UNREACHABLE,
            IcmpType.TIME_EXCEEDED,
        )

    def pack(self, payload: bytes = b"") -> bytes:
        head = _HEADER.pack(self.icmp_type, self.code, 0, self.identifier, self.sequence)
        self.checksum = internet_checksum(head + payload)
        return head[:2] + self.checksum.to_bytes(2, "big") + head[4:] + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["IcmpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError("ICMP header truncated")
        icmp_type, code, checksum, ident, seq = _HEADER.unpack_from(data)
        header = cls(
            icmp_type=icmp_type,
            code=code,
            identifier=ident,
            sequence=seq,
            checksum=checksum,
        )
        return header, data[HEADER_LEN:]
