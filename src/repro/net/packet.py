"""The packet record shared by generators, pcaps, and the pipeline.

A :class:`CapturedPacket` is a timestamped IPv4 packet with its parsed
transport header and opaque transport payload.  Generators construct
records directly (cheap); pcap I/O round-trips them through real wire
bytes so that the analysis behaves identically on synthetic streams and
on files.

The record is the pipeline's hottest object: one instance per packet,
touched by the classifier, the sessionizers, and the hourly counters.
It is therefore slotted (no per-instance ``__dict__``) and the derived
fields the hot path reads — addresses, ports, protocol flags — are
computed once at construction instead of via isinstance-dispatched
properties.  Instances stay picklable (the parallel runner ships them
to worker processes) and equality still compares only the defining
fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.net import icmp, ipv4, tcp, udp
from repro.net.addresses import format_ipv4
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader

TransportHeader = Union[UdpHeader, TcpHeader, IcmpHeader]

_UDP = int(IPProto.UDP)
_TCP = int(IPProto.TCP)
_ICMP = int(IPProto.ICMP)

_TRANSPORT_HEADER_LEN = {
    UdpHeader: udp.HEADER_LEN,
    TcpHeader: tcp.HEADER_LEN,
    IcmpHeader: icmp.HEADER_LEN,
}


@dataclass(slots=True)
class CapturedPacket:
    """One packet as seen at the telescope."""

    timestamp: float
    ip: IPv4Header
    transport: Optional[TransportHeader]
    payload: bytes = b""

    # -- derived fields, precomputed for the per-packet hot path ---------

    src: int = field(init=False, repr=False, compare=False)
    dst: int = field(init=False, repr=False, compare=False)
    proto: int = field(init=False, repr=False, compare=False)
    src_port: Optional[int] = field(init=False, repr=False, compare=False)
    dst_port: Optional[int] = field(init=False, repr=False, compare=False)
    is_udp: bool = field(init=False, repr=False, compare=False)
    is_tcp: bool = field(init=False, repr=False, compare=False)
    is_icmp: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ip = self.ip
        proto = ip.proto
        self.src = ip.src
        self.dst = ip.dst
        self.proto = proto
        self.is_udp = proto == _UDP
        self.is_tcp = proto == _TCP
        self.is_icmp = proto == _ICMP
        transport = self.transport
        if isinstance(transport, (UdpHeader, TcpHeader)):
            self.src_port = transport.src_port
            self.dst_port = transport.dst_port
        else:
            self.src_port = None
            self.dst_port = None

    # -- wire round-trip ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to IPv4 wire bytes (checksums filled in)."""
        transport = self.transport
        if isinstance(transport, (UdpHeader, TcpHeader)):
            body = transport.pack(self.payload, self.ip.src, self.ip.dst)
        elif isinstance(transport, IcmpHeader):
            body = transport.pack(self.payload)
        else:
            body = self.payload
        return self.ip.pack(len(body)) + body

    @classmethod
    def from_bytes(cls, timestamp: float, data: bytes) -> "CapturedPacket":
        """Parse wire bytes into a record.

        Unknown transport protocols keep the raw payload and a ``None``
        transport header — the classifier treats them as non-QUIC.
        """
        ip, ip_payload = IPv4Header.parse(data)
        transport: Optional[TransportHeader] = None
        payload = ip_payload
        try:
            if ip.proto == _UDP:
                transport, payload = UdpHeader.parse(ip_payload)
            elif ip.proto == _TCP:
                transport, payload = TcpHeader.parse(ip_payload)
            elif ip.proto == _ICMP:
                transport, payload = IcmpHeader.parse(ip_payload)
        except ValueError:
            transport, payload = None, ip_payload
        return cls(timestamp=timestamp, ip=ip, transport=transport, payload=payload)

    @property
    def wire_length(self) -> int:
        """Total IPv4 length without serializing."""
        if self.ip.total_length:
            return self.ip.total_length
        transport_len = _TRANSPORT_HEADER_LEN.get(type(self.transport), 0)
        return ipv4.HEADER_LEN + transport_len + len(self.payload)

    def __repr__(self) -> str:
        proto = {1: "ICMP", 6: "TCP", 17: "UDP"}.get(self.proto, str(self.proto))
        ports = ""
        if self.src_port is not None:
            ports = f" {self.src_port}->{self.dst_port}"
        return (
            f"CapturedPacket(t={self.timestamp:.3f} {proto} "
            f"{format_ipv4(self.src)}->{format_ipv4(self.dst)}{ports} "
            f"len={len(self.payload)})"
        )


def wire_record(timestamp: float, data: bytes) -> tuple:
    """Parse wire bytes into the batch lane's flat scalar record.

    Scalar twin of :meth:`CapturedPacket.from_bytes` for the columnar
    fast lane: returns ``(timestamp, src, dst, total_length, proto,
    kind, f1, f2, f3, payload_length, payload)`` as consumed by
    :meth:`repro.core.pipeline.PartialState.consume_lane_records`,
    without constructing any header dataclass.  ``kind`` is 1/2/3 for a
    parsed UDP/TCP/ICMP transport and 0 when the transport header does
    not parse (the same inputs :meth:`from_bytes` maps to a ``None``
    transport); IP-level errors raise ``ValueError`` exactly like
    :meth:`from_bytes`.
    """
    n = len(data)
    if n < ipv4.HEADER_LEN:
        raise ValueError("IPv4 header truncated")
    ver_ihl = data[0]
    version = ver_ihl >> 4
    if version != 4:
        raise ValueError(f"not an IPv4 packet (version={version})")
    ihl = ver_ihl & 0xF
    if ihl < 5:
        raise ValueError(f"invalid IHL {ihl}")
    header_len = ihl * 4
    if n < header_len:
        raise ValueError("IPv4 options truncated")
    total = int.from_bytes(data[2:4], "big")
    proto = data[9]
    src = int.from_bytes(data[12:16], "big")
    dst = int.from_bytes(data[16:20], "big")
    payload_end = min(n, total) if total >= header_len else n
    body = data[header_len:payload_end]
    body_len = len(body)
    kind = 0
    f1 = f2 = f3 = 0
    payload = body
    if proto == _UDP:
        if body_len >= udp.HEADER_LEN:
            length = int.from_bytes(body[4:6], "big")
            if length >= udp.HEADER_LEN:
                kind = 1
                f1 = int.from_bytes(body[0:2], "big")
                f2 = int.from_bytes(body[2:4], "big")
                payload = body[udp.HEADER_LEN : min(body_len, length)]
    elif proto == _TCP:
        if body_len >= tcp.HEADER_LEN:
            data_offset = (body[12] >> 4) * 4
            if tcp.HEADER_LEN <= data_offset <= body_len:
                kind = 2
                f1 = int.from_bytes(body[0:2], "big")
                f2 = int.from_bytes(body[2:4], "big")
                f3 = body[13]
                payload = body[data_offset:]
    elif proto == _ICMP:
        if body_len >= icmp.HEADER_LEN:
            kind = 3
            f1 = body[0]
            f2 = body[1]
            payload = body[icmp.HEADER_LEN :]
    return (
        timestamp,
        src,
        dst,
        total,
        proto,
        kind,
        f1,
        f2,
        f3,
        len(payload),
        payload,
    )
