"""The packet record shared by generators, pcaps, and the pipeline.

A :class:`CapturedPacket` is a timestamped IPv4 packet with its parsed
transport header and opaque transport payload.  Generators construct
records directly (cheap); pcap I/O round-trips them through real wire
bytes so that the analysis behaves identically on synthetic streams and
on files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.net.addresses import format_ipv4
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader

TransportHeader = Union[UdpHeader, TcpHeader, IcmpHeader]


@dataclass
class CapturedPacket:
    """One packet as seen at the telescope."""

    timestamp: float
    ip: IPv4Header
    transport: Optional[TransportHeader]
    payload: bytes = b""

    # -- convenience accessors -------------------------------------------

    @property
    def src(self) -> int:
        return self.ip.src

    @property
    def dst(self) -> int:
        return self.ip.dst

    @property
    def proto(self) -> int:
        return self.ip.proto

    @property
    def src_port(self) -> Optional[int]:
        if isinstance(self.transport, (UdpHeader, TcpHeader)):
            return self.transport.src_port
        return None

    @property
    def dst_port(self) -> Optional[int]:
        if isinstance(self.transport, (UdpHeader, TcpHeader)):
            return self.transport.dst_port
        return None

    @property
    def is_udp(self) -> bool:
        return self.proto == IPProto.UDP

    @property
    def is_tcp(self) -> bool:
        return self.proto == IPProto.TCP

    @property
    def is_icmp(self) -> bool:
        return self.proto == IPProto.ICMP

    # -- wire round-trip ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to IPv4 wire bytes (checksums filled in)."""
        if isinstance(self.transport, UdpHeader):
            body = self.transport.pack(self.payload, self.ip.src, self.ip.dst)
        elif isinstance(self.transport, TcpHeader):
            body = self.transport.pack(self.payload, self.ip.src, self.ip.dst)
        elif isinstance(self.transport, IcmpHeader):
            body = self.transport.pack(self.payload)
        else:
            body = self.payload
        return self.ip.pack(len(body)) + body

    @classmethod
    def from_bytes(cls, timestamp: float, data: bytes) -> "CapturedPacket":
        """Parse wire bytes into a record.

        Unknown transport protocols keep the raw payload and a ``None``
        transport header — the classifier treats them as non-QUIC.
        """
        ip, ip_payload = IPv4Header.parse(data)
        transport: Optional[TransportHeader] = None
        payload = ip_payload
        try:
            if ip.proto == IPProto.UDP:
                transport, payload = UdpHeader.parse(ip_payload)
            elif ip.proto == IPProto.TCP:
                transport, payload = TcpHeader.parse(ip_payload)
            elif ip.proto == IPProto.ICMP:
                transport, payload = IcmpHeader.parse(ip_payload)
        except ValueError:
            transport, payload = None, ip_payload
        return cls(timestamp=timestamp, ip=ip, transport=transport, payload=payload)

    @property
    def wire_length(self) -> int:
        """Total IPv4 length without serializing."""
        if self.ip.total_length:
            return self.ip.total_length
        from repro.net import icmp, ipv4, tcp, udp

        transport_len = {
            UdpHeader: udp.HEADER_LEN,
            TcpHeader: tcp.HEADER_LEN,
            IcmpHeader: icmp.HEADER_LEN,
        }.get(type(self.transport), 0)
        return ipv4.HEADER_LEN + transport_len + len(self.payload)

    def __repr__(self) -> str:
        proto = {1: "ICMP", 6: "TCP", 17: "UDP"}.get(self.proto, str(self.proto))
        ports = ""
        if self.src_port is not None:
            ports = f" {self.src_port}->{self.dst_port}"
        return (
            f"CapturedPacket(t={self.timestamp:.3f} {proto} "
            f"{format_ipv4(self.src)}->{format_ipv4(self.dst)}{ports} "
            f"len={len(self.payload)})"
        )
