"""IPv4 header serialization and parsing (RFC 791, no options)."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum

_HEADER = struct.Struct("!BBHHHBBHII")
HEADER_LEN = _HEADER.size  # 20 bytes, options are not modeled


class IPProto(enum.IntEnum):
    """The IP protocol numbers the telescope pipeline distinguishes."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(slots=True)
class IPv4Header:
    """A minimal IPv4 header.

    ``total_length`` covers header plus payload and is filled in by
    :meth:`pack` when left at 0.  TTL defaults to 64; backscatter
    generators vary it to mimic heterogeneous victim stacks.
    """

    src: int
    dst: int
    proto: int
    total_length: int = 0
    identification: int = 0
    ttl: int = 64
    flags_fragment: int = 0x4000  # don't-fragment, offset 0
    tos: int = 0
    checksum: int = field(default=0, compare=False)

    def pack(self, payload_length: int) -> bytes:
        """Serialize with a correct header checksum."""
        total = self.total_length or HEADER_LEN + payload_length
        head = _HEADER.pack(
            (4 << 4) | 5,
            self.tos,
            total,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        )
        self.checksum = internet_checksum(head)
        self.total_length = total
        return head[:10] + self.checksum.to_bytes(2, "big") + head[12:]

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        """Parse a header, returning ``(header, payload)``.

        Raises ``ValueError`` on truncation, bad version, or IHL < 5.
        """
        if len(data) < HEADER_LEN:
            raise ValueError("IPv4 header truncated")
        (
            ver_ihl,
            tos,
            total,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        version, ihl = ver_ihl >> 4, ver_ihl & 0xF
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        if ihl < 5:
            raise ValueError(f"invalid IHL {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise ValueError("IPv4 options truncated")
        header = cls(
            src=src,
            dst=dst,
            proto=proto,
            total_length=total,
            identification=ident,
            ttl=ttl,
            flags_fragment=flags_frag,
            tos=tos,
            checksum=checksum,
        )
        payload_end = min(len(data), total) if total >= header_len else len(data)
        return header, data[header_len:payload_end]
