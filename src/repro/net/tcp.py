"""TCP header serialization and parsing (RFC 793, no options).

The telescope sees TCP both as scan *requests* (SYN probes) and as
*backscatter* from spoofed SYN floods (SYN-ACK and RST replies from
victims), so flags handling is the part that matters here.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.ipv4 import IPProto

_HEADER = struct.Struct("!HHIIBBHHH")
HEADER_LEN = _HEADER.size  # 20


class TcpFlags(enum.IntFlag):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(slots=True)
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = TcpFlags.SYN
    window: int = 65535
    urgent: int = 0
    checksum: int = field(default=0, compare=False)

    @property
    def is_syn_ack(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and bool(self.flags & TcpFlags.ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    def pack(self, payload: bytes, src_ip: int, dst_ip: int) -> bytes:
        head = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,  # data offset, no options
            int(self.flags),
            self.window,
            0,
            self.urgent,
        )
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.TCP, len(head) + len(payload))
        self.checksum = internet_checksum(pseudo + head + payload)
        return head[:16] + self.checksum.to_bytes(2, "big") + head[18:] + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["TcpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise ValueError("TCP header truncated")
        (
            src,
            dst,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = _HEADER.unpack_from(data)
        data_offset = (offset_byte >> 4) * 4
        if data_offset < HEADER_LEN or data_offset > len(data):
            raise ValueError(f"invalid TCP data offset {data_offset}")
        header = cls(
            src_port=src,
            dst_port=dst,
            seq=seq,
            ack=ack,
            flags=TcpFlags(flags),
            window=window,
            urgent=urgent,
            checksum=checksum,
        )
        return header, data[data_offset:]
