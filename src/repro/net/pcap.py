"""Classic libpcap file format reader/writer.

The format (the pre-pcapng ``.pcap``) is a 24-byte global header and a
16-byte per-record header; we write linktype 101 (``LINKTYPE_RAW``,
packets start at the IPv4 header) so records map one-to-one onto
:class:`~repro.net.packet.CapturedPacket`.  Both byte orders and both
microsecond/nanosecond magics are accepted on read.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional, Union

from repro.net.packet import CapturedPacket
from repro.util.batching import batched

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D
LINKTYPE_RAW = 101
SNAPLEN = 65535

_GLOBAL = struct.Struct("<IHHiIII")
_GLOBAL_BE = struct.Struct(">IHHiIII")
_RECORD = struct.Struct("<IIII")
_RECORD_BE = struct.Struct(">IIII")
_U32_LE = struct.Struct("<I")
_U32_BE = struct.Struct(">I")
#: the little-endian magics as read by a big-endian unpack (and vice
#: versa): a pcap written on the other byte order.
_SWAPPED_MAGICS = {
    _U32_BE.unpack(_U32_LE.pack(MAGIC_MICROS))[0]: MAGIC_MICROS,
    _U32_BE.unpack(_U32_LE.pack(MAGIC_NANOS))[0]: MAGIC_NANOS,
}


class PcapFormatError(ValueError):
    """Raised for malformed pcap files."""


class PcapWriter:
    """Streams :class:`CapturedPacket` records into a pcap file."""

    def __init__(self, stream: BinaryIO, linktype: int = LINKTYPE_RAW) -> None:
        self._stream = stream
        self._stream.write(
            _GLOBAL.pack(MAGIC_MICROS, 2, 4, 0, 0, SNAPLEN, linktype)
        )

    def write(self, packet: CapturedPacket) -> None:
        data = packet.to_bytes()
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(_RECORD.pack(seconds, micros, len(data), len(data)))
        self._stream.write(data)


class PcapReader:
    """Iterates :class:`CapturedPacket` records from a pcap file.

    With ``tail=True`` (requires a seekable stream) a truncated
    trailing record — or a not-yet-complete global header — is treated
    as *not yet written* instead of malformed: the stream position is
    rewound to the start of the incomplete item and iteration stops
    cleanly.  Iterating again after the file has grown resumes exactly
    where the reader left off, so a writer-in-progress capture can be
    tail-followed (see :func:`repro.stream.feeds.follow_pcap`).
    A genuinely bad magic number still raises in both modes.
    """

    def __init__(self, stream: BinaryIO, tail: bool = False) -> None:
        self._stream = stream
        self._tail = tail
        self._record: Optional[struct.Struct] = None
        self._tick = 1e-6
        self.linktype: Optional[int] = None
        if not tail:
            self._try_read_header()

    @property
    def header_read(self) -> bool:
        return self._record is not None

    def _try_read_header(self) -> bool:
        pos = self._stream.tell() if self._tail else None
        header = self._stream.read(_GLOBAL.size)
        if len(header) < _GLOBAL.size:
            if self._tail:
                self._stream.seek(pos)
                return False
            raise PcapFormatError("truncated pcap global header")
        magic = _U32_LE.unpack_from(header)[0]
        if magic in (MAGIC_MICROS, MAGIC_NANOS):
            global_header, record = _GLOBAL, _RECORD
        elif magic in _SWAPPED_MAGICS:
            magic = _SWAPPED_MAGICS[magic]
            global_header, record = _GLOBAL_BE, _RECORD_BE
        else:
            raise PcapFormatError(f"bad pcap magic {magic:#x}")
        self._tick = 1e-9 if magic == MAGIC_NANOS else 1e-6
        fields = global_header.unpack(header)
        self.linktype = fields[6]
        self._record = record
        return True

    def __iter__(self) -> Iterator[CapturedPacket]:
        if self._record is None and not self._try_read_header():
            return
        record = self._record
        stream = self._stream
        tail = self._tail
        while True:
            pos = stream.tell() if tail else None
            head = stream.read(record.size)
            if not head:
                return
            if len(head) < record.size:
                if tail:
                    stream.seek(pos)
                    return
                raise PcapFormatError("truncated pcap record header")
            seconds, fraction, caplen, _origlen = record.unpack(head)
            data = stream.read(caplen)
            if len(data) < caplen:
                if tail:
                    stream.seek(pos)
                    return
                raise PcapFormatError("truncated pcap record body")
            timestamp = seconds + fraction * self._tick
            yield CapturedPacket.from_bytes(timestamp, data)


def write_pcap(path: Union[str, Path], packets: Iterable[CapturedPacket]) -> int:
    """Write ``packets`` to ``path``; returns the record count."""
    count = 0
    with open(path, "wb") as stream:
        writer = PcapWriter(stream)
        for packet in packets:
            writer.write(packet)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> Iterator[CapturedPacket]:
    """Yield packets from a pcap file (file stays open while iterating)."""
    with open(path, "rb") as stream:
        yield from PcapReader(stream)


def read_pcap_batches(
    path: Union[str, Path], batch_size: int = 512
) -> Iterator[list]:
    """Yield packets from a pcap file in time-ordered batches.

    Shard-aware feed for the parallel pipeline: the parent reads, the
    workers analyze (see :mod:`repro.core.parallel`).
    """
    return batched(read_pcap(path), batch_size)
