"""Classic libpcap file format reader/writer.

The format (the pre-pcapng ``.pcap``) is a 24-byte global header and a
16-byte per-record header; we write linktype 101 (``LINKTYPE_RAW``,
packets start at the IPv4 header) so records map one-to-one onto
:class:`~repro.net.packet.CapturedPacket`.  Both byte orders and both
microsecond/nanosecond magics are accepted on read.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional, Union

from repro.net.packet import CapturedPacket, wire_record
from repro.util.batching import batched

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D
LINKTYPE_RAW = 101
SNAPLEN = 65535

_GLOBAL = struct.Struct("<IHHiIII")
_GLOBAL_BE = struct.Struct(">IHHiIII")
_RECORD = struct.Struct("<IIII")
_RECORD_BE = struct.Struct(">IIII")
_U32_LE = struct.Struct("<I")
_U32_BE = struct.Struct(">I")
#: the little-endian magics as read by a big-endian unpack (and vice
#: versa): a pcap written on the other byte order.
_SWAPPED_MAGICS = {
    _U32_BE.unpack(_U32_LE.pack(MAGIC_MICROS))[0]: MAGIC_MICROS,
    _U32_BE.unpack(_U32_LE.pack(MAGIC_NANOS))[0]: MAGIC_NANOS,
}


class PcapFormatError(ValueError):
    """Raised for malformed pcap files."""


class PcapWriter:
    """Streams :class:`CapturedPacket` records into a pcap file."""

    def __init__(self, stream: BinaryIO, linktype: int = LINKTYPE_RAW) -> None:
        self._stream = stream
        self._stream.write(
            _GLOBAL.pack(MAGIC_MICROS, 2, 4, 0, 0, SNAPLEN, linktype)
        )

    def write(self, packet: CapturedPacket) -> None:
        data = packet.to_bytes()
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(_RECORD.pack(seconds, micros, len(data), len(data)))
        self._stream.write(data)


class PcapReader:
    """Iterates :class:`CapturedPacket` records from a pcap file.

    With ``tail=True`` (requires a seekable stream) a truncated
    trailing record — or a not-yet-complete global header — is treated
    as *not yet written* instead of malformed: the stream position is
    rewound to the start of the incomplete item and iteration stops
    cleanly.  Iterating again after the file has grown resumes exactly
    where the reader left off, so a writer-in-progress capture can be
    tail-followed (see :func:`repro.stream.feeds.follow_pcap`).
    A genuinely bad magic number still raises in both modes.

    With ``lenient=True`` (also requires a seekable stream) *interior*
    corruption is survived instead of fatal: a record header with an
    implausible caplen/origlen/fraction triggers a forward resync scan
    for the next verifiable record boundary, a record body that is not
    a parseable packet is skipped, and a truncated final record ends
    iteration — each bumps the public ``corrupt_records`` counter.
    Combined with ``tail=True``, truncation still means "not yet
    written" (rewind and wait) while implausible headers resync; a
    capture being corrupted *and* appended to stays followable.
    """

    def __init__(
        self, stream: BinaryIO, tail: bool = False, lenient: bool = False
    ) -> None:
        self._stream = stream
        self._tail = tail
        self._lenient = lenient
        self._record: Optional[struct.Struct] = None
        self._tick = 1e-6
        self._frac_limit = 1_000_000
        self.linktype: Optional[int] = None
        #: records skipped by lenient mode (bad header, unparseable
        #: body, or truncated tail record)
        self.corrupt_records = 0
        if not tail:
            self._try_read_header()

    @property
    def header_read(self) -> bool:
        return self._record is not None

    def _try_read_header(self) -> bool:
        pos = self._stream.tell() if self._tail else None
        header = self._stream.read(_GLOBAL.size)
        if len(header) < _GLOBAL.size:
            if self._tail:
                self._stream.seek(pos)
                return False
            raise PcapFormatError("truncated pcap global header")
        magic = _U32_LE.unpack_from(header)[0]
        if magic in (MAGIC_MICROS, MAGIC_NANOS):
            global_header, record = _GLOBAL, _RECORD
        elif magic in _SWAPPED_MAGICS:
            magic = _SWAPPED_MAGICS[magic]
            global_header, record = _GLOBAL_BE, _RECORD_BE
        else:
            raise PcapFormatError(f"bad pcap magic {magic:#x}")
        self._tick = 1e-9 if magic == MAGIC_NANOS else 1e-6
        self._frac_limit = 1_000_000_000 if magic == MAGIC_NANOS else 1_000_000
        fields = global_header.unpack(header)
        self.linktype = fields[6]
        self._record = record
        return True

    def __iter__(self) -> Iterator[CapturedPacket]:
        return self._iterate(CapturedPacket.from_bytes)

    def records(self) -> Iterator[tuple]:
        """Iterate flat scalar records instead of packet objects.

        Batch-lane entry point: yields the
        :func:`~repro.net.packet.wire_record` tuples consumed by
        :meth:`repro.core.pipeline.PartialState.consume_lane_records`,
        skipping all header-dataclass construction.  Tail/lenient
        semantics are identical to ``__iter__`` — both parsers accept
        and reject exactly the same wire bytes.
        """
        return self._iterate(wire_record)

    def _iterate(self, parse) -> Iterator:
        if self._record is None and not self._try_read_header():
            return
        record = self._record
        stream = self._stream
        tail = self._tail
        lenient = self._lenient
        while True:
            pos = stream.tell() if (tail or lenient) else None
            head = stream.read(record.size)
            if not head:
                return
            if len(head) < record.size:
                if tail:
                    stream.seek(pos)
                    return
                if lenient:
                    self.corrupt_records += 1
                    return
                raise PcapFormatError("truncated pcap record header")
            seconds, fraction, caplen, origlen = record.unpack(head)
            if lenient and not self._plausible(fraction, caplen, origlen):
                self.corrupt_records += 1
                if not self._resync(pos + 1):
                    return
                continue
            data = stream.read(caplen)
            if len(data) < caplen:
                if tail:
                    stream.seek(pos)
                    return
                if lenient:
                    self.corrupt_records += 1
                    return
                raise PcapFormatError("truncated pcap record body")
            timestamp = seconds + fraction * self._tick
            if lenient:
                try:
                    packet = parse(timestamp, data)
                except ValueError:
                    self.corrupt_records += 1
                    continue
                yield packet
            else:
                yield parse(timestamp, data)

    def _plausible(self, fraction: int, caplen: int, origlen: int) -> bool:
        """A record header is plausible when its lengths fit the
        snaplen contract and its sub-second fraction is in range."""
        if not 0 < caplen <= SNAPLEN:
            return False
        if not caplen <= origlen <= SNAPLEN:
            return False
        return fraction < self._frac_limit

    def _resync(self, search_from: int) -> bool:
        """Scan forward for the next verifiable record boundary.

        Slides a window over the stream, testing every byte offset for
        a plausible record header whose body parses as a captured
        packet and whose *successor* record is also plausible (or lands
        exactly at EOF) — checks that make accidental matches in packet
        payloads vanishingly unlikely.
        Positions the stream at the recovered boundary and returns
        True, or returns False when the rest of the file holds no
        recoverable record.
        """
        stream = self._stream
        record = self._record
        rec_size = record.size
        window = 1 << 20
        base = search_from
        while True:
            stream.seek(base)
            chunk = stream.read(window + rec_size)
            if len(chunk) < rec_size:
                return False
            limit = min(len(chunk) - rec_size, window - 1)
            for i in range(limit + 1):
                _s, fraction, caplen, origlen = record.unpack_from(chunk, i)
                if not self._plausible(fraction, caplen, origlen):
                    continue
                candidate = base + i
                if self._verify_candidate(candidate, rec_size, caplen):
                    stream.seek(candidate)
                    return True
            if len(chunk) < window + rec_size:
                return False
            base += window

    def _verify_candidate(self, candidate: int, rec_size: int, caplen: int) -> bool:
        stream = self._stream
        stream.seek(0, 2)
        eof = stream.tell()
        end = candidate + rec_size + caplen
        if end > eof:
            # the candidate's own body would run past EOF — a payload
            # byte masquerading as a header, not a recoverable record
            return False
        stream.seek(candidate + rec_size)
        body = stream.read(caplen)
        try:
            CapturedPacket.from_bytes(0.0, body)
        except ValueError:
            # plausible framing but not a packet: keep scanning (a
            # corrupt-bodied record would be skipped anyway)
            return False
        if end == eof:
            return True  # record ends exactly at EOF
        head = stream.read(rec_size)
        if len(head) < rec_size:
            # truncated successor: accept; the main loop counts it
            return True
        _s, fraction, next_caplen, next_origlen = self._record.unpack(head)
        return self._plausible(fraction, next_caplen, next_origlen)


def write_pcap(path: Union[str, Path], packets: Iterable[CapturedPacket]) -> int:
    """Write ``packets`` to ``path``; returns the record count."""
    count = 0
    with open(path, "wb") as stream:
        writer = PcapWriter(stream)
        for packet in packets:
            writer.write(packet)
            count += 1
    return count


#: chunked-write threshold for :func:`write_records` — large enough to
#: amortize syscalls, small enough to keep the buffer cache-resident.
_WRITE_CHUNK = 1 << 20


def write_records(
    path: Union[str, Path], items: Iterable[tuple]
) -> int:
    """Bulk-write ``(timestamp, wire_bytes)`` pairs to ``path``.

    The generation fast lane's writer: one reused bytearray accumulates
    record headers and packet bytes and is flushed in ~1 MiB chunks, so
    the per-packet cost is two appends instead of two ``write`` calls.
    Timestamp rounding and header layout replicate :class:`PcapWriter`
    exactly — the output is byte-identical to writing the same packets
    one at a time (``tests/test_pcap_bulk.py``).  ``wire_bytes`` may be
    a borrowed/mutable buffer (e.g. ``genlane.wire_items``): it is
    copied into the chunk buffer before the next item is drawn.
    """
    count = 0
    pack = _RECORD.pack
    buffer = bytearray()
    with open(path, "wb") as stream:
        stream.write(_GLOBAL.pack(MAGIC_MICROS, 2, 4, 0, 0, SNAPLEN, LINKTYPE_RAW))
        for timestamp, data in items:
            seconds = int(timestamp)
            micros = int(round((timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            length = len(data)
            buffer += pack(seconds, micros, length, length)
            buffer += data
            count += 1
            if len(buffer) >= _WRITE_CHUNK:
                stream.write(buffer)
                buffer.clear()
        if buffer:
            stream.write(buffer)
    return count


def read_pcap(
    path: Union[str, Path], lenient: bool = False
) -> Iterator[CapturedPacket]:
    """Yield packets from a pcap file (file stays open while iterating)."""
    with open(path, "rb") as stream:
        yield from PcapReader(stream, lenient=lenient)


def read_pcap_batches(
    path: Union[str, Path], batch_size: int = 512
) -> Iterator[list]:
    """Yield packets from a pcap file in time-ordered batches.

    Shard-aware feed for the parallel pipeline: the parent reads, the
    workers analyze (see :mod:`repro.core.parallel`).
    """
    return batched(read_pcap(path), batch_size)


def read_pcap_records(
    path: Union[str, Path], batch_size: int = 512, lenient: bool = False
) -> Iterator[list]:
    """Yield scalar wire-record batches for the batch fast lane.

    Object-free feed: each batch is a list of
    :func:`~repro.net.packet.wire_record` tuples ready for
    :meth:`repro.core.pipeline.PartialState.consume_lane_records`.
    """

    def _records():
        with open(path, "rb") as stream:
            yield from PcapReader(stream, lenient=lenient).records()

    return batched(_records(), batch_size)
