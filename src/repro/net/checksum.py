"""The Internet checksum (RFC 1071).

Used by the IPv4, ICMP, TCP and UDP serializers.  TCP and UDP include
the usual pseudo-header over source/destination addresses.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    >>> hex(internet_checksum(bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")))
    '0x0'
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used in TCP/UDP checksums."""
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + bytes([0, proto])
        + length.to_bytes(2, "big")
    )
