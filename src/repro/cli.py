"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow of the paper's toolchain:

- ``simulate`` — generate a telescope capture and write it to pcap;
- ``analyze``  — run the QUICsand pipeline over a pcap and print the
  full report (correlation data — AS registry, census, honeypot tags —
  is regenerated from the scenario seed, so pass the same ``--seed``
  used for ``simulate``);
- ``report``   — simulate + analyze in one go, no pcap on disk;
- ``watch``    — online monitor: stream a live simulator feed or a
  tail-followed pcap through the incremental analyzer, printing flood
  alerts as they fire (see :mod:`repro.stream`);
- ``federate`` — multi-telescope federation: run K vantages over tiles
  of the telescope prefix (in-process over a file spool, or
  distributed via ``--listen``/``--connect`` sockets) and merge their
  states into one global report with cross-telescope flood dedup (see
  :mod:`repro.federate` and ``docs/FEDERATION.md``);
- ``table1``   — run the NGINX DoS-resiliency benchmark (Table 1);
- ``probe``    — actively probe census servers for RETRY (Section 6);
- ``profile``  — cProfile the generation and analysis hot paths and
  print the top functions (optionally dumping raw pstats data);
- ``stats``    — render the human summary of a metrics JSON file
  written by ``--metrics-out`` (see :mod:`repro.obs`).

Every scenario-driven command accepts ``--scenario NAME`` to start
from a preset in the named-scenario registry (the four isolated IBR
classes and the adversarial workloads — see ``docs/SCENARIOS.md``);
``--seed``/``--hours``/``--research-sample`` still override the preset
when given explicitly.

``analyze``, ``report`` and ``watch`` accept ``--metrics-out FILE``:
it enables the observability registry for the run and writes both the
Prometheus text exposition and the JSON export next to each other
(``FILE.prom`` + ``FILE.json``; see ``docs/METRICS.md`` for the metric
reference).

``main`` always *returns* an exit code (usage errors included — argparse
``SystemExit`` is caught), so embedders get ``0`` success, ``2`` usage.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional

from repro import obs
from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.export import export_results
from repro.core.report import build_report
from repro.core.retry_audit import ActiveProber
from repro.net.addresses import format_ipv4
from repro.net.pcap import PcapReader
from repro.server import run_table1, table1_rows
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.presets import scenario_names
from repro.telescope.presets import scenario_config as _named_scenario_config
from repro.util.render import format_table
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return repro.__version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QUICsand reproduction: telescope simulation and analysis",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a telescope capture pcap")
    _scenario_args(simulate)
    simulate.add_argument("--out", required=True, help="output pcap path")
    _gen_args(simulate)

    analyze = sub.add_parser("analyze", help="analyze a pcap capture")
    analyze.add_argument("pcap", help="input pcap path")
    _scenario_args(analyze)
    analyze.add_argument(
        "--no-correlation",
        action="store_true",
        help="run without AS registry / census / honeypot correlation",
    )
    analyze.add_argument("--report-out", help="also write the report to a file")
    analyze.add_argument("--export", help="write per-figure CSV/JSON data here")
    analyze.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-count corrupt pcap records instead of failing "
        "(count is printed and exported as "
        "repro_pcap_corrupt_records_total)",
    )
    _workers_arg(analyze)
    _lane_arg(analyze)
    _metrics_arg(analyze)
    _faults_args(analyze)

    report = sub.add_parser("report", help="simulate and analyze in one step")
    _scenario_args(report)
    report.add_argument("--report-out", help="also write the report to a file")
    report.add_argument("--export", help="write per-figure CSV/JSON data here")
    _workers_arg(report)
    _lane_arg(report)
    _gen_args(report)
    _metrics_arg(report)
    _faults_args(report)

    watch = sub.add_parser(
        "watch", help="online monitor: live flood alerts over a packet feed"
    )
    _scenario_args(watch)
    watch.add_argument(
        "--pcap",
        help="tail-follow this pcap instead of the live simulator feed",
    )
    watch.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="stop once the pcap stops growing for this many seconds "
        "(0 = read a complete capture once and stop)",
    )
    watch.add_argument(
        "--speed",
        type=float,
        default=0.0,
        help="simulator pacing in event-seconds per wall-second "
        "(0 = unpaced)",
    )
    watch.add_argument(
        "--batch-size", type=int, default=512, help="packets per analysis batch"
    )
    watch_mode = watch.add_mutually_exclusive_group()
    watch_mode.add_argument(
        "--exact",
        action="store_true",
        help="retain full state and print the batch-identical report at "
        "EOF (memory grows with the capture; default is the bounded, "
        "active-source-proportional mode)",
    )
    watch_mode.add_argument(
        "--sketch",
        action="store_true",
        help="constant-memory sketch tier: count-min source tallies, "
        "space-saving heavy-hitter flood detection and HyperLogLog "
        "cardinalities instead of exact per-source state (memory is "
        "independent of source count; see docs/ARCHITECTURE.md)",
    )
    watch.add_argument(
        "--status-every",
        type=float,
        default=1800.0,
        help="status-line interval in event-time seconds (0 = off)",
    )
    watch.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-count corrupt pcap records while tail-following "
        "(surfaced in the stream report and StreamTelemetry)",
    )
    _lane_arg(watch)
    _metrics_arg(watch)
    _faults_args(watch)

    federate = sub.add_parser(
        "federate",
        help="run K telescope vantages and merge them into a global report",
        description="Multi-telescope federation: split the telescope "
        "prefix into tiles, run one vantage per tile under the shared "
        "scenario seed, and merge the vantage states into a global "
        "result that is bit-identical to a single telescope over the "
        "whole prefix. Default runs everything in-process over a file "
        "spool; --listen/--connect distribute the roles over TCP. See "
        "docs/FEDERATION.md.",
    )
    _scenario_args(federate)
    federate.add_argument(
        "--vantages",
        type=int,
        default=2,
        help="number of vantage tiles (in-process and --listen modes)",
    )
    federate_role = federate.add_mutually_exclusive_group()
    federate_role.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="aggregator role: accept --vantages socket streams here "
        "(port 0 picks a free port) instead of running in-process",
    )
    federate_role.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="vantage role: run one vantage and stream its frames to "
        "the aggregator at this endpoint (retries with backoff)",
    )
    federate.add_argument(
        "--spool",
        metavar="DIR",
        help="spool frames into this directory for the in-process run "
        "(default: a temporary directory; kept for inspection when "
        "given explicitly)",
    )
    federate.add_argument(
        "--vantage-name",
        default="vantage-0",
        help="stream name for the --connect vantage role",
    )
    federate.add_argument(
        "--prefix",
        help="CIDR tile for the --connect vantage role (default: the "
        "scenario's full telescope prefix)",
    )
    federate.add_argument(
        "--sketch",
        action="store_true",
        help="vantages additionally run the constant-memory sketch "
        "tier and ship it with their flood alert history (the global "
        "result still merges from the exact states; see "
        "docs/FEDERATION.md)",
    )
    federate.add_argument(
        "--snapshot-every",
        type=float,
        default=3600.0,
        help="event-seconds between interim cumulative state frames "
        "(0 ships only the final state)",
    )
    federate.add_argument(
        "--report-out", help="also write the federation report to a file"
    )
    _metrics_arg(federate)

    stats = sub.add_parser(
        "stats",
        help="render a human summary of a --metrics-out JSON file",
        description="Renders the JSON metric export written by "
        "--metrics-out. Unrelated to the benchmark trajectory files: "
        "benchmarks/out/BENCH_stream.json rows are trajectory schema 2 "
        "(schema 1 plus tracemalloc peak columns) and "
        "BENCH_pipeline.json rows are trajectory schema 3 — see "
        "docs/METRICS.md for both schemas.",
    )
    stats.add_argument(
        "metrics",
        help="metrics JSON file written by analyze/report/watch --metrics-out",
    )

    sub.add_parser("table1", help="run the NGINX Table 1 benchmark")

    profile = sub.add_parser(
        "profile", help="cProfile the generate/analyze hot paths"
    )
    _scenario_args(profile)
    profile.add_argument(
        "--stage",
        choices=["generate", "analyze", "batch", "both"],
        default="both",
        help="which pipeline stage to profile ('batch' profiles only "
        "the columnar fast lane's per-packet phase; default: both)",
    )
    profile.add_argument(
        "--top", type=int, default=25, help="print this many functions"
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "calls"],
        default="cumulative",
        help="pstats sort order",
    )
    profile.add_argument(
        "--dump", help="also write the raw pstats data to this file"
    )

    probe = sub.add_parser("probe", help="actively probe servers for RETRY")
    _scenario_args(probe)
    probe.add_argument("--count", type=int, default=10, help="servers to probe")

    return parser


#: the _scenario_args defaults — a named --scenario keeps its preset
#: knobs unless the flag was moved off its default explicitly.
_SCENARIO_ARG_DEFAULTS = dict(seed=20210401, hours=6.0, research_sample=1 / 256)


def _scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=scenario_names(),
        metavar="NAME",
        help="start from a named scenario preset (IBR classes and "
        f"adversarial workloads, see docs/SCENARIOS.md): "
        f"{', '.join(scenario_names())}",
    )
    parser.add_argument(
        "--seed", type=int, default=_SCENARIO_ARG_DEFAULTS["seed"]
    )
    parser.add_argument(
        "--hours", type=float, default=_SCENARIO_ARG_DEFAULTS["hours"]
    )
    parser.add_argument(
        "--research-sample",
        type=float,
        default=_SCENARIO_ARG_DEFAULTS["research_sample"],
        help="fraction of each research sweep materialized (see DESIGN.md)",
    )


def _workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the per-packet phase (sharded by "
        "source IP; results are identical to --workers 1)",
    )


def _lane_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast-lane",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the per-packet phase on the columnar batch fast lane "
        "(results are identical either way; --no-fast-lane forces the "
        "rich per-packet classifier/dissector)",
    )


def _gen_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gen-lane",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="generate through the columnar generation fast lane (wire "
        "bytes stamped from mutable templates; output is byte-identical "
        "either way; --no-gen-lane forces the rich per-packet object "
        "path)",
    )
    parser.add_argument(
        "--gen-workers",
        type=int,
        default=1,
        help="worker processes for scenario generation (sharded by "
        "traffic source; the merged stream is bit-identical to "
        "--gen-workers 1; requires --gen-lane)",
    )


def _faults_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default="none",
        metavar="SPEC",
        help="inject deterministic faults into the packet stream, e.g. "
        "'bitflip=0.01,drop=0.005' ('none' disables; see "
        "docs/ROBUSTNESS.md for the grammar)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault injector (default: a fixed "
        "injector-specific seed, independent of --seed)",
    )


def _fault_injector(args, stream):
    """Build the injector from --faults/--fault-seed, or None.

    Returns the sentinel ``2`` (the usage exit code) on a bad spec.
    """
    from repro.faults import FaultInjector, FaultSpec, FaultSpecError
    from repro.faults.inject import DEFAULT_FAULT_SEED

    try:
        spec = FaultSpec.parse(getattr(args, "faults", "none") or "none")
    except FaultSpecError as exc:
        print(f"bad --faults spec: {exc}", file=stream)
        return 2
    if not spec.enabled():
        return None
    seed = args.fault_seed if args.fault_seed is not None else DEFAULT_FAULT_SEED
    return FaultInjector(spec, seed)


def _metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        help="enable the observability registry and write Prometheus "
        "text + JSON metric exports to this path (.prom/.json pair; "
        "render with `repro stats FILE.json`)",
    )


def _maybe_enable_metrics(args) -> None:
    if getattr(args, "metrics_out", None):
        obs.enable()


def _maybe_write_metrics(args, stream) -> None:
    if getattr(args, "metrics_out", None):
        files = obs.write_metrics(args.metrics_out)
        print(f"\nmetrics written to {' and '.join(files)}", file=stream)


def _scenario_config(args: argparse.Namespace) -> ScenarioConfig:
    if getattr(args, "scenario", None):
        config = _named_scenario_config(args.scenario)
        if args.seed != _SCENARIO_ARG_DEFAULTS["seed"]:
            config = replace(config, seed=args.seed)
        if args.hours != _SCENARIO_ARG_DEFAULTS["hours"]:
            config = replace(config, duration=args.hours * HOUR)
        if args.research_sample != _SCENARIO_ARG_DEFAULTS["research_sample"]:
            config = replace(config, research_sample=args.research_sample)
        return config
    return ScenarioConfig(
        seed=args.seed,
        duration=args.hours * HOUR,
        research_sample=args.research_sample,
    )


def _scenario(args: argparse.Namespace) -> Scenario:
    return Scenario(_scenario_config(args))


def _pipeline(
    scenario: Optional[Scenario], workers: int = 1, fast_lane: bool = True
) -> QuicsandPipeline:
    if scenario is None:
        return QuicsandPipeline(
            config=AnalysisConfig(
                retry_probe_count=0, workers=workers, fast_lane=fast_lane
            )
        )
    return QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(workers=workers, fast_lane=fast_lane),
    )


def _emit_report(result, scenario, out_path: Optional[str], stream) -> None:
    weight = scenario.truth.research_weight if scenario else 1.0
    text = build_report(result, research_weight=weight)
    print(text, file=stream)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {out_path}", file=stream)


def cmd_simulate(args, stream) -> int:
    scenario = _scenario(args)
    hours = scenario.config.duration / HOUR
    print(f"simulating {hours:.1f} h at telescope {scenario.telescope.prefix} ...", file=stream)
    if args.gen_lane:
        from repro.net.pcap import write_records
        from repro.telescope.genlane import wire_items

        count = write_records(
            args.out, wire_items(scenario.records(workers=args.gen_workers))
        )
    else:
        count = scenario.telescope.capture_to_pcap(scenario.packets(), args.out)
    print(
        f"wrote {count:,} packets to {args.out} "
        f"(planned QUIC floods: {len(scenario.plan.quic_floods)})",
        file=stream,
    )
    return 0


def cmd_analyze(args, stream) -> int:
    _maybe_enable_metrics(args)
    injector = _fault_injector(args, stream)
    if injector == 2:
        return 2
    scenario = None if args.no_correlation else _scenario(args)
    pipeline = _pipeline(scenario, workers=args.workers, fast_lane=args.fast_lane)
    with open(args.pcap, "rb") as pcap_stream:
        reader = PcapReader(pcap_stream, lenient=args.lenient)
        packets = iter(reader)
        if injector is not None:
            packets = injector.wrap(packets)
        result = pipeline.process(packets)
    if args.lenient and reader.corrupt_records:
        from repro.stream.feeds import note_corrupt_records

        note_corrupt_records(reader.corrupt_records)
        print(
            f"skipped {reader.corrupt_records} corrupt pcap record(s)",
            file=stream,
        )
    if injector is not None:
        print(injector.summary(), file=stream)
    _emit_report(result, scenario, args.report_out, stream)
    _maybe_export(result, args, stream)
    _maybe_write_metrics(args, stream)
    return 0


def cmd_report(args, stream) -> int:
    _maybe_enable_metrics(args)
    injector = _fault_injector(args, stream)
    if injector == 2:
        return 2
    scenario = _scenario(args)
    pipeline = _pipeline(scenario, workers=args.workers, fast_lane=args.fast_lane)
    if (
        args.gen_lane
        and args.fast_lane
        and args.workers == 1
        and injector is None
    ):
        # fused fast path: gen records feed the batch lane directly —
        # no CapturedPacket objects, no wire bytes, no dissection
        result = pipeline.process_record_batches(
            scenario.lane_batches(
                pipeline.config.batch_size, workers=args.gen_workers
            )
        )
    else:
        packets = scenario.packets()
        if injector is not None:
            packets = injector.wrap(packets)
        result = pipeline.process(packets)
    if injector is not None:
        print(injector.summary(), file=stream)
    _emit_report(result, scenario, args.report_out, stream)
    _maybe_export(result, args, stream)
    _maybe_write_metrics(args, stream)
    return 0


def cmd_stats(args, stream) -> int:
    try:
        print(obs.render_summary(args.metrics), file=stream)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot render {args.metrics}: {exc}", file=stream)
        return 2
    return 0


def _maybe_export(result, args, stream) -> None:
    if getattr(args, "export", None):
        files = export_results(result, args.export)
        print(f"\nexported {len(files)} data files to {args.export}", file=stream)


def cmd_watch(args, stream) -> int:
    from repro.stream import StreamAnalyzer, StreamConfig, follow_pcap

    _maybe_enable_metrics(args)
    scenario = _scenario(args)
    if args.exact:
        mode = "exact"
    elif args.sketch:
        mode = "sketch"
    else:
        mode = "bounded"
    analyzer = StreamAnalyzer(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(fast_lane=args.fast_lane),
        stream_config=StreamConfig(mode=mode),
    )
    injector = _fault_injector(args, stream)
    if injector == 2:
        return 2
    if args.pcap:
        feed = follow_pcap(
            args.pcap,
            batch_size=args.batch_size,
            idle_timeout=args.idle_timeout,
            lenient=args.lenient,
            on_corrupt=analyzer.record_corrupt_records,
        )
        source = f"tail-following {args.pcap}"
    else:
        feed = scenario.live_batches(
            batch_size=args.batch_size, speed=args.speed or None
        )
        source = (
            f"live simulator feed "
            f"({scenario.config.duration / HOUR:.1f} h planned)"
        )
    if injector is not None:
        feed = injector.wrap_batches(feed, batch_size=args.batch_size)
    print(f"watching {source} [{mode} mode]", file=stream)
    next_status: Optional[float] = None
    try:
        for batch in feed:
            for event in analyzer.process_batch(batch):
                print(event.render(), file=stream)
            if args.status_every > 0:
                watermark = analyzer.telemetry.watermark
                if next_status is None:
                    next_status = watermark + args.status_every
                elif watermark >= next_status:
                    print(analyzer.status_line(), file=stream)
                    next_status = watermark + args.status_every
    except KeyboardInterrupt:
        print("interrupted — finalizing", file=stream)
    for event in analyzer.finish():
        print(event.render(), file=stream)
    print(analyzer.status_line(), file=stream)
    if injector is not None:
        print(injector.summary(), file=stream)
    if args.exact:
        _emit_report(analyzer.result(), scenario, None, stream)
    else:
        print(analyzer.stream_report(), file=stream)
    _maybe_write_metrics(args, stream)
    return 0


def cmd_profile(args, stream) -> int:
    """cProfile the generator and/or the analysis pipeline."""
    import cProfile
    import pstats
    import time

    scenario = _scenario(args)
    profiler = cProfile.Profile()
    profile_generate = args.stage in ("generate", "both")
    profile_analyze = args.stage in ("analyze", "both")

    start = time.perf_counter()
    if profile_generate:
        profiler.enable()
        packets = list(scenario.packets())
        profiler.disable()
    else:
        packets = list(scenario.packets())
    generate_elapsed = time.perf_counter() - start

    if args.stage == "batch":
        return _profile_batch(args, stream, scenario, packets, profiler, generate_elapsed)

    pipeline = _pipeline(scenario)
    start = time.perf_counter()
    if profile_analyze:
        profiler.enable()
        result = pipeline.process(iter(packets))
        profiler.disable()
    else:
        result = pipeline.process(iter(packets))
    analyze_elapsed = time.perf_counter() - start

    count = len(packets)
    print(
        f"profiled stage(s): {args.stage}  ({count:,} packets, "
        f"{len(scenario.plan.quic_floods)} planned QUIC floods)",
        file=stream,
    )
    print(
        f"generate: {generate_elapsed:.2f} s "
        f"({count / generate_elapsed:,.0f} pps)   "
        f"analyze: {analyze_elapsed:.2f} s "
        f"({count / analyze_elapsed:,.0f} pps)",
        file=stream,
    )
    print(f"analyzed packets: {result.total_packets:,}\n", file=stream)
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"pstats dump written to {args.dump}", file=stream)
    return 0


def _profile_batch(args, stream, scenario, packets, profiler, generate_elapsed) -> int:
    """``profile --stage batch``: profile only the columnar fast lane's
    per-packet phase (generation and finalization run unprofiled), then
    print the lane's own hot-path telemetry."""
    import pstats
    import time

    from repro.core.batchlane import BatchLane
    from repro.core.pipeline import PartialState
    from repro.util.batching import batched

    pipeline = _pipeline(scenario)
    cfg = pipeline.config
    lane = BatchLane(dissect_payloads=cfg.dissect_payloads)
    state = PartialState.initial(cfg)
    start = time.perf_counter()
    profiler.enable()
    for batch in batched(iter(packets), cfg.batch_size):
        state.consume_lane(batch, lane)
    profiler.disable()
    batch_elapsed = time.perf_counter() - start
    state.record_classifier(lane)
    state.close()
    result = pipeline.finalize_state(state)

    count = len(packets)
    print(
        f"profiled stage(s): batch  ({count:,} packets, "
        f"{len(scenario.plan.quic_floods)} planned QUIC floods)",
        file=stream,
    )
    print(
        f"generate: {generate_elapsed:.2f} s "
        f"({count / generate_elapsed:,.0f} pps)   "
        f"batch lane: {batch_elapsed:.2f} s "
        f"({count / batch_elapsed:,.0f} pps)",
        file=stream,
    )
    memo_total = lane.cache_hits + lane.cache_misses
    hit_rate = lane.cache_hits / memo_total if memo_total else 0.0
    fallbacks = sum(lane.fallbacks.values())
    print(
        f"lane: {lane.fast_parses:,} fast parses, {fallbacks:,} rich "
        f"fallbacks, memo hit rate {hit_rate:.1%}",
        file=stream,
    )
    print(f"analyzed packets: {result.total_packets:,}\n", file=stream)
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"pstats dump written to {args.dump}", file=stream)
    return 0


def _parse_endpoint(text: str):
    """``HOST:PORT`` → ``(host, port)``, or ``None`` on a bad value."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        return None
    return host, int(port)


def cmd_federate(args, stream) -> int:
    from repro.federate import (
        Aggregator,
        FederationListener,
        SocketSender,
        SpoolWriter,
        TransportError,
        Vantage,
        VantageConfig,
        connect_with_retry,
        tile_prefixes,
    )
    from repro.federate.vantage import EXACT, SKETCH_MODE

    _maybe_enable_metrics(args)
    if args.vantages < 1:
        print("--vantages must be at least 1", file=stream)
        return 2
    scenario_config = _scenario_config(args)
    analysis = AnalysisConfig()
    mode = SKETCH_MODE if args.sketch else EXACT

    if args.connect:
        endpoint = _parse_endpoint(args.connect)
        if endpoint is None:
            print(f"bad --connect endpoint {args.connect!r}", file=stream)
            return 2
        vantage = Vantage(
            VantageConfig(
                name=args.vantage_name,
                prefix=args.prefix,
                mode=mode,
                snapshot_every=args.snapshot_every,
                scenario=scenario_config,
                analysis=analysis,
            )
        )
        try:
            sock = connect_with_retry(*endpoint)
        except TransportError as exc:
            print(str(exc), file=stream)
            return 2
        with SocketSender(sock) as sender:
            state = vantage.run(sender)
        print(
            f"vantage {args.vantage_name} "
            f"[{vantage.scenario.telescope.prefix}]: shipped "
            f"{vantage.frames_sent} frames ({state.total_packets:,} packets)",
            file=stream,
        )
        _maybe_write_metrics(args, stream)
        return 0

    scenario = _scenario(args)
    aggregator = Aggregator(
        _pipeline(scenario), research_weight=scenario.truth.research_weight
    )
    if args.listen:
        endpoint = _parse_endpoint(args.listen)
        if endpoint is None:
            print(f"bad --listen endpoint {args.listen!r}", file=stream)
            return 2
        try:
            with FederationListener(*endpoint) as listener:
                print(
                    f"aggregator listening on {listener.host}:{listener.port} "
                    f"for {args.vantages} vantage stream(s)",
                    file=stream,
                )
                aggregator.consume_listener(listener, args.vantages)
        except TransportError as exc:
            print(str(exc), file=stream)
            return 2
    else:
        cleanup = None
        spool = args.spool
        if spool is None:
            import tempfile

            cleanup = tempfile.TemporaryDirectory(prefix="repro-federate-")
            spool = cleanup.name
        tiles = tile_prefixes(str(scenario.telescope.prefix), args.vantages)
        for index, tile in enumerate(tiles):
            name = f"vantage-{index}"
            vantage = Vantage(
                VantageConfig(
                    name=name,
                    prefix=str(tile),
                    mode=mode,
                    snapshot_every=args.snapshot_every,
                    scenario=scenario_config,
                    analysis=analysis,
                )
            )
            with SpoolWriter(spool, name) as writer:
                vantage.run(writer)
            print(
                f"{name} [{tile}]: {vantage.frames_sent} frames spooled",
                file=stream,
            )
        aggregator.consume_spool(spool)
        if cleanup is None:
            print(f"spool kept at {spool}", file=stream)
        else:
            cleanup.cleanup()
    fed = aggregator.federate()
    if fed.corrupt_frames:
        print(
            f"skipped {fed.corrupt_frames} corrupt federation frame(s)",
            file=stream,
        )
    text = aggregator.report(fed)
    print(text, file=stream)
    if args.report_out:
        with open(args.report_out, "w") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {args.report_out}", file=stream)
    _maybe_write_metrics(args, stream)
    return 0


def cmd_table1(_args, stream) -> int:
    headers, rows = table1_rows(run_table1())
    print(format_table(headers, rows, title="Table 1 — NGINX DoS resiliency"), file=stream)
    return 0


def cmd_probe(args, stream) -> int:
    scenario = _scenario(args)
    prober = ActiveProber(scenario.internet.census, SeededRng(args.seed, "probe"))
    records = scenario.internet.census.all_records()[: args.count]
    rows = []
    for record in records:
        outcome = prober.probe(record.address)
        rows.append(
            [
                format_ipv4(record.address),
                record.provider,
                "yes" if outcome.handshake_completed else "no",
                "yes" if outcome.retry_received else "no",
                str(outcome.http_status) if outcome.http_status else "-",
            ]
        )
    print(
        format_table(
            ["server", "provider", "handshake", "retry", "HTTP"],
            rows,
            title="Active RETRY probes",
        ),
        file=stream,
    )
    return 0


_COMMANDS = {
    "simulate": cmd_simulate,
    "analyze": cmd_analyze,
    "report": cmd_report,
    "watch": cmd_watch,
    "federate": cmd_federate,
    "table1": cmd_table1,
    "probe": cmd_probe,
    "profile": cmd_profile,
    "stats": cmd_stats,
}


def main(argv: Optional[list] = None, stream=None) -> int:
    stream = stream or sys.stdout
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors (missing/unknown subcommand,
        # bad flags) and 0 on --help/--version; surface that as a
        # return value so every path out of main is a plain int.
        code = exit_.code
        return code if isinstance(code, int) else 2
    return _COMMANDS[args.command](args, stream)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
