"""``repro.obs`` — the unified observability layer.

One dependency-free surface replaces the ad-hoc telemetry that used to
be scattered across ``class_counts`` keys, ``StreamTelemetry`` fields,
and bench scripts: every pipeline stage publishes what it counted,
dropped, and cached into the process-wide :data:`REGISTRY`, and the
CLI exports it (``repro analyze/report/watch --metrics-out FILE``,
``repro stats FILE.json``).

Layout:

- :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` with
  labels, the ``Registry`` (snapshot/merge for multiprocessing), the
  enabled/disabled fast path;
- :mod:`repro.obs.timers`  — ``span()`` blocks and the ``@timed``
  decorator for stage timings;
- :mod:`repro.obs.export`  — Prometheus text exposition, JSON, and the
  human summary behind ``repro stats``.

``docs/METRICS.md`` is the reference for every metric name, type, and
label — kept in lockstep with the live registry by
``tests/test_docs_metrics_sync.py``.  Instrumentation conventions
(boundary publication, collector callbacks, exactly-once worker
merges) are documented in :mod:`repro.obs.metrics`.
"""

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    LATENCY_BUCKETS,
    METRICS_ENV,
    REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    disable,
    enable,
    enabled,
    set_enabled,
)
from repro.obs.timers import span, timed
from repro.obs.export import (
    metrics_dict,
    render_json,
    render_prometheus,
    render_summary,
    write_metrics,
)


def counter(name, help_text="", labels=()):
    """Get-or-create a counter in the process-wide registry."""
    return REGISTRY.counter(name, help_text, labels)


def gauge(name, help_text="", labels=()):
    """Get-or-create a gauge in the process-wide registry."""
    return REGISTRY.gauge(name, help_text, labels)


def histogram(name, help_text="", labels=(), buckets=TIME_BUCKETS):
    """Get-or-create a histogram in the process-wide registry."""
    return REGISTRY.histogram(name, help_text, labels, buckets)


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "LATENCY_BUCKETS",
    "METRICS_ENV",
    "REGISTRY",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "metrics_dict",
    "render_json",
    "render_prometheus",
    "render_summary",
    "set_enabled",
    "span",
    "timed",
    "write_metrics",
]
