"""Metric export: Prometheus text exposition, JSON, human summary.

Three renderings of the same registry:

- :func:`render_prometheus` — the text exposition format scrapers and
  ``promtool`` understand (``# HELP``/``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram samples);
- :func:`render_json` — a stable JSON document for programmatic
  consumers and for the ``repro stats`` renderer;
- :func:`render_summary` — the per-subsystem table ``repro stats``
  prints for humans.

:func:`write_metrics` is the CLI back end for ``--metrics-out``: it
always emits *both* machine formats (Prometheus text plus JSON side by
side) so a run's accounting can feed a scraper and a notebook alike.

>>> from repro.obs import Registry
>>> registry = Registry()
>>> registry.counter("demo_total", "things demoed").inc(2)
>>> print(render_prometheus(registry))
# HELP demo_total things demoed
# TYPE demo_total counter
demo_total 2
<BLANKLINE>
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import HISTOGRAM, REGISTRY, Registry
from repro.util.render import format_table

JSON_VERSION = 1


def _format_value(value) -> str:
    """Prometheus number formatting: integral floats lose the ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _labelstr(labels: dict, extra: Optional[tuple] = None) -> str:
    pairs = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: Registry = REGISTRY) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels, value in family.samples():
            if family.type == HISTOGRAM:
                cumulative = 0
                for bound, count in zip(family.buckets, value.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labelstr(labels, ('le', _format_value(bound)))}"
                        f" {cumulative}"
                    )
                cumulative += value.bucket_counts[-1]
                lines.append(
                    f"{family.name}_bucket{_labelstr(labels, ('le', '+Inf'))}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{family.name}_sum{_labelstr(labels)}"
                    f" {_format_value(value.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labelstr(labels)} {value.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labelstr(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def metrics_dict(registry: Registry = REGISTRY) -> dict:
    """The registry as a JSON-ready dict (see :func:`render_json`)."""
    metrics = []
    for family in registry.collect():
        samples = []
        for labels, value in family.samples():
            if family.type == HISTOGRAM:
                buckets = {
                    _format_value(bound): count
                    for bound, count in zip(family.buckets, value.bucket_counts)
                }
                buckets["+Inf"] = value.bucket_counts[-1]
                samples.append(
                    {
                        "labels": labels,
                        "buckets": buckets,
                        "sum": value.sum,
                        "count": value.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": value})
        metrics.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
        )
    return {"version": JSON_VERSION, "metrics": metrics}


def render_json(registry: Registry = REGISTRY) -> str:
    """The registry as pretty-printed, key-sorted JSON (trailing newline)."""
    return json.dumps(metrics_dict(registry), indent=2, sort_keys=True) + "\n"


def write_metrics(path: str, registry: Registry = REGISTRY) -> list:
    """Write Prometheus text and JSON exports side by side.

    ``path`` names the Prometheus file; the JSON lands next to it with
    a ``.json`` extension (``metrics.prom`` → ``metrics.json``).  If
    ``path`` itself ends in ``.json`` the roles flip.  Returns the
    paths written, Prometheus first.
    """
    if path.endswith(".json"):
        json_path = path
        prom_path = path[: -len(".json")] + ".prom"
    elif path.endswith(".prom") or path.endswith(".txt"):
        prom_path = path
        json_path = path.rsplit(".", 1)[0] + ".json"
    else:
        prom_path = path + ".prom"
        json_path = path + ".json"
    with open(prom_path, "w") as handle:
        handle.write(render_prometheus(registry))
    with open(json_path, "w") as handle:
        handle.write(render_json(registry))
    return [prom_path, json_path]


# -- human summary ---------------------------------------------------------


def _subsystem(name: str) -> str:
    parts = name.split("_")
    return parts[1] if len(parts) > 2 and parts[0] == "repro" else "other"


def _summary_rows(document: dict) -> list:
    rows = []
    for metric in document["metrics"]:
        for sample in metric["samples"]:
            labels = sample.get("labels") or {}
            labelstr = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if metric["type"] == HISTOGRAM:
                count = sample["count"]
                total = sample["sum"]
                mean = total / count if count else 0.0
                value = f"n={count}  sum={total:.3f}s  mean={mean:.4f}s"
            else:
                value = _format_value(sample["value"])
            rows.append(
                [
                    _subsystem(metric["name"]),
                    metric["name"],
                    labelstr or "-",
                    value,
                ]
            )
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows


def render_summary(source) -> str:
    """Human-readable metric summary for ``repro stats``.

    ``source`` is a registry, a :func:`metrics_dict` document, or a
    path to a JSON export written by ``--metrics-out``.
    """
    if isinstance(source, Registry):
        document = metrics_dict(source)
    elif isinstance(source, dict):
        document = source
    else:
        with open(source) as handle:
            document = json.load(handle)
    rows = _summary_rows(document)
    if not rows:
        return "no metrics recorded (is REPRO_METRICS/--metrics-out set?)"
    return format_table(
        ["subsystem", "metric", "labels", "value"],
        rows,
        title="repro metrics summary",
    )
