"""Cheap stage timers: ``span()`` blocks and the ``@timed`` decorator.

Both observe elapsed wall seconds into a :class:`~repro.obs.metrics.Histogram`
and both short-circuit to a shared no-op when the histogram's registry
is disabled, so an instrumented stage costs one attribute check when
metrics are off.

>>> from repro.obs import Registry
>>> registry = Registry()
>>> seconds = registry.histogram("demo_stage_seconds", "stage timings",
...                              labels=("stage",))
>>> with span(seconds, stage="finalize"):
...     pass
>>> seconds.count(stage="finalize")
1
>>> @timed(seconds, stage="merge")
... def merge():
...     return 42
>>> merge()
42
>>> seconds.count(stage="merge")
1
"""

from __future__ import annotations

import functools
import time
from typing import Callable

from repro.obs.metrics import Histogram


class _NullSpan:
    """Shared do-nothing context for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("histogram", "labels", "start")

    def __init__(self, histogram: Histogram, labels: dict) -> None:
        self.histogram = histogram
        self.labels = labels

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.histogram.observe(
            time.perf_counter() - self.start, **self.labels
        )
        return False


def span(histogram: Histogram, **labels):
    """Context manager timing its block into ``histogram``."""
    if not histogram.registry.enabled:
        return _NULL_SPAN
    return _Span(histogram, labels)


def timed(histogram: Histogram, **labels) -> Callable:
    """Decorator form of :func:`span` (same disabled fast path)."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not histogram.registry.enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                histogram.observe(time.perf_counter() - start, **labels)

        return wrapper

    return decorate
