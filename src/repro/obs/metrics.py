"""Dependency-free metrics core: counters, gauges, histograms, registry.

Every pipeline stage of the reproduction exposes what it counted,
dropped, and cached through one process-wide :class:`Registry` — the
accounting surface that passive-measurement work (the paper, *Waiting
for QUIC*, *A First Look at QUIC in the Wild*) relies on to validate
classification.  Three metric families cover everything instrumented:

- :class:`Counter`   — monotone totals (packets classified, cache hits);
- :class:`Gauge`     — point-in-time values (open sessions, cache size);
- :class:`Histogram` — distributions (stage seconds, alert latency).

All three support Prometheus-style labels.  The design keeps the hot
paths honest about overhead:

- **Disabled by default.** A registry starts enabled, but the
  process-wide :data:`REGISTRY` follows the ``REPRO_METRICS``
  environment variable (the CLI's ``--metrics-out`` enables it
  explicitly).  Every mutating call checks one attribute and returns —
  instrumented code stays within noise of uninstrumented code (the
  throughput bench asserts < 5% end-to-end regression even with
  metrics *on*).
- **Boundary publication.** Per-packet loops never call into this
  module; they keep plain ints and publish at batch/stage boundaries
  (see :mod:`repro.core.pipeline`).  Collector callbacks pull
  externally maintained totals (the wire-template caches) at export
  time only.
- **Mergeable snapshots.** :meth:`Registry.snapshot` produces a
  picklable value and :meth:`Registry.merge_snapshot` folds it in:
  counters and histograms add, gauges overwrite.  The source-sharded
  parallel runner resets the child registry after fork and ships one
  snapshot back, so per-worker metrics merge into the parent exactly
  once (``tests/test_obs_parallel.py``).

Example (a standalone registry is enabled by default):

>>> registry = Registry()
>>> packets = registry.counter("demo_packets_total", "packets seen",
...                            labels=("klass",))
>>> packets.inc(3, klass="quic-request")
>>> packets.inc(1, klass="quic-response")
>>> packets.value(klass="quic-request")
3
>>> lag = registry.histogram("demo_lag_seconds", "watermark lag",
...                          buckets=(0.1, 1.0, 10.0))
>>> lag.observe(0.05); lag.observe(2.5)
>>> lag.count(), lag.sum()
(2, 2.55)
"""

from __future__ import annotations

import os
import re
from typing import Callable, Iterable, Optional

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: environment variable that pre-enables the process-wide registry.
METRICS_ENV = "REPRO_METRICS"

#: default histogram buckets for stage/operation timings, in seconds.
TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0,
)
#: default buckets for event-time latencies (alert latency, watermark
#: lag), in seconds — coarser, since these track capture time.
LATENCY_BUCKETS = (
    0.5, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _labelkey(label_names: tuple, labels: dict) -> tuple:
    """Order the call-site labels by the family's declared names."""
    if len(labels) != len(label_names) or any(
        name not in labels for name in label_names
    ):
        mismatch = set(label_names) ^ set(labels)
        raise ValueError(f"labels {mismatch!r} do not match {label_names!r}")
    return tuple(str(labels[name]) for name in label_names)


class Metric:
    """One metric family: a name, type, help text, and label names.

    Unlabelled families hold a single value under the empty label key;
    labelled families hold one value per observed label combination.
    """

    __slots__ = ("name", "help", "type", "label_names", "registry", "_values")

    def __init__(self, name, help_text, metric_type, label_names, registry):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = tuple(label_names)
        self.registry = registry
        self._values: dict = {}

    # -- introspection -----------------------------------------------------

    def samples(self) -> list:
        """``(labels_dict, value)`` pairs, label-key sorted."""
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in sorted(self._values.items())
        ]

    def reset(self) -> None:
        """Drop every recorded value; the family itself stays registered."""
        self._values.clear()

    def _enabled(self) -> bool:
        return self.registry.enabled


class Counter(Metric):
    """Monotonically increasing total."""

    __slots__ = ()

    def __init__(self, name, help_text, label_names, registry):
        super().__init__(name, help_text, COUNTER, label_names, registry)

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (default 1) to the labelled total. No-op when
        the registry is disabled; negative amounts raise."""
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _labelkey(self.label_names, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the running total (collector callbacks publishing
        an externally maintained count — e.g. a cache's own hit tally)."""
        if not self.registry.enabled:
            return
        self._values[_labelkey(self.label_names, labels)] = value

    def value(self, **labels) -> float:
        """The current total for this label combination (0 if unseen)."""
        return self._values.get(_labelkey(self.label_names, labels), 0)


class Gauge(Metric):
    """Point-in-time value that can go up and down."""

    __slots__ = ()

    def __init__(self, name, help_text, label_names, registry):
        super().__init__(name, help_text, GAUGE, label_names, registry)

    def set(self, value: float, **labels) -> None:
        """Overwrite the labelled value. No-op when disabled."""
        if not self.registry.enabled:
            return
        self._values[_labelkey(self.label_names, labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (may be negative) to the labelled value."""
        if not self.registry.enabled:
            return
        key = _labelkey(self.label_names, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        """Subtract ``amount`` (default 1) from the labelled value."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """The current value for this label combination (0 if unseen)."""
        return self._values.get(_labelkey(self.label_names, labels), 0)


class _HistogramState:
    """Per-labelset histogram accumulator (bucket counts + sum/count)."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Distribution over fixed upper-bound buckets (Prometheus style)."""

    __slots__ = ("buckets",)

    def __init__(self, name, help_text, label_names, registry, buckets):
        super().__init__(name, help_text, HISTOGRAM, label_names, registry)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation into its bucket and the sum/count."""
        if not self.registry.enabled:
            return
        key = _labelkey(self.label_names, labels)
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = _HistogramState(len(self.buckets))
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state.bucket_counts[index] += 1
        state.sum += value
        state.count += 1

    # -- unlabelled conveniences (tests, doctests) -------------------------

    def count(self, **labels) -> int:
        """Observations recorded for this label combination."""
        state = self._values.get(_labelkey(self.label_names, labels))
        return state.count if state else 0

    def sum(self, **labels) -> float:
        """Sum of observed values for this label combination."""
        state = self._values.get(_labelkey(self.label_names, labels))
        return state.sum if state else 0.0


class Registry:
    """A named collection of metric families.

    ``enabled`` gates every mutating call on every metric it owns;
    :func:`collect` runs registered collector callbacks (which pull
    externally maintained totals) and returns the families.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict = {}
        self._collectors: list = []

    # -- family construction (get-or-create) -------------------------------

    def counter(self, name, help_text="", labels: Iterable[str] = ()) -> Counter:
        """Get or create the :class:`Counter` family called ``name``."""
        return self._get_or_create(Counter, name, help_text, tuple(labels))

    def gauge(self, name, help_text="", labels: Iterable[str] = ()) -> Gauge:
        """Get or create the :class:`Gauge` family called ``name``."""
        return self._get_or_create(Gauge, name, help_text, tuple(labels))

    def histogram(
        self, name, help_text="", labels: Iterable[str] = (),
        buckets=TIME_BUCKETS,
    ) -> Histogram:
        """Get or create the :class:`Histogram` family called ``name``.
        ``buckets`` only applies on first creation."""
        existing = self._families.get(name)
        if existing is not None:
            self._check(existing, HISTOGRAM, tuple(labels))
            return existing
        family = Histogram(name, help_text, tuple(labels), self, buckets)
        self._families[name] = family
        return family

    def _get_or_create(self, cls, name, help_text, label_names):
        existing = self._families.get(name)
        if existing is not None:
            self._check(existing, cls(name, help_text, (), self).type, label_names)
            return existing
        family = cls(name, help_text, label_names, self)
        self._families[name] = family
        return family

    @staticmethod
    def _check(existing, metric_type, label_names) -> None:
        if existing.type != metric_type or existing.label_names != label_names:
            raise ValueError(
                f"metric {existing.name!r} already registered as "
                f"{existing.type} with labels {existing.label_names!r}"
            )

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        """The family called ``name``, or ``None`` if never registered."""
        return self._families.get(name)

    def families(self) -> list:
        """All registered families, name-sorted."""
        return [self._families[name] for name in sorted(self._families)]

    def add_collector(self, callback: Callable[[], None]) -> None:
        """Register a callback that refreshes pull-style metrics; run by
        :meth:`collect` (deduplicated, so module reloads are safe)."""
        if callback not in self._collectors:
            self._collectors.append(callback)

    def collect(self) -> list:
        """Run collectors, then return all families (export entry point)."""
        if self.enabled:
            for callback in self._collectors:
                callback()
        return self.families()

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every value, keeping the families registered (a forked
        worker calls this so its snapshot carries only its own deltas)."""
        for family in self._families.values():
            family.reset()

    def snapshot(self, run_collectors: bool = True) -> dict:
        """Picklable value state, for cross-process merging.

        Shard workers pass ``run_collectors=False``: collector-sourced
        totals are pull-style views of process-local caches, and a
        forked worker's caches start as copies of the parent's — adding
        them back on merge would double-count the parent's own work.
        """
        if run_collectors:
            self.collect()
        out: dict = {}
        for family in self._families.values():
            if family.type == HISTOGRAM:
                values = {
                    key: (list(state.bucket_counts), state.sum, state.count)
                    for key, state in family._values.items()
                }
                out[family.name] = (
                    family.type, family.help, family.label_names,
                    family.buckets, values,
                )
            else:
                out[family.name] = (
                    family.type, family.help, family.label_names, None,
                    dict(family._values),
                )
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counters and histograms add,
        gauges overwrite.  Families absent here are created."""
        for name, (mtype, help_text, label_names, buckets, values) in sorted(
            snapshot.items()
        ):
            if mtype == COUNTER:
                family = self.counter(name, help_text, label_names)
                for key, value in values.items():
                    family._values[key] = family._values.get(key, 0) + value
            elif mtype == GAUGE:
                family = self.gauge(name, help_text, label_names)
                family._values.update(values)
            else:
                family = self.histogram(name, help_text, label_names, buckets)
                if family.buckets != tuple(buckets):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                for key, (bucket_counts, total, count) in values.items():
                    state = family._values.get(key)
                    if state is None:
                        state = family._values[key] = _HistogramState(
                            len(family.buckets)
                        )
                    for i, n in enumerate(bucket_counts):
                        state.bucket_counts[i] += n
                    state.sum += total
                    state.count += count


#: The process-wide registry every instrumented module publishes to.
#: Disabled unless ``REPRO_METRICS`` is set (the CLI's ``--metrics-out``
#: and the bench enable it explicitly) so uninstrumented runs pay one
#: attribute check per publication point.
REGISTRY = Registry(enabled=bool(os.environ.get(METRICS_ENV)))


def enabled() -> bool:
    """Whether the process-wide registry is recording."""
    return REGISTRY.enabled


def set_enabled(value: bool) -> None:
    """Turn the process-wide registry on or off (restores a saved state)."""
    REGISTRY.enabled = bool(value)


def enable() -> None:
    """Start recording on the process-wide registry."""
    REGISTRY.enabled = True


def disable() -> None:
    """Stop recording on the process-wide registry (values are kept)."""
    REGISTRY.enabled = False
