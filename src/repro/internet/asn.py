"""Autonomous systems and PeeringDB-style network types.

The paper maps each telescope session's source address to an AS and to
the AS's *network type* from PeeringDB, concluding that scan requests
come from eyeball networks while backscatter comes from content
networks (Figure 5).  :class:`AsRegistry` provides that mapping over a
longest-prefix-match trie.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.net.addresses import IPv4Network
from repro.internet.prefix_trie import PrefixTrie


class NetworkType(enum.Enum):
    """PeeringDB ``info_type`` categories used in Figure 5."""

    EYEBALL = "Cable/DSL/ISP"
    CONTENT = "Content"
    NSP = "NSP"
    EDUCATION = "Educational/Research"
    ENTERPRISE = "Enterprise"
    NON_PROFIT = "Non-Profit"
    UNKNOWN = "Not Disclosed"


@dataclass
class AutonomousSystem:
    """One AS with its registered prefixes and PeeringDB metadata."""

    asn: int
    name: str
    network_type: NetworkType
    country: str = "ZZ"
    prefixes: list = field(default_factory=list)

    def covers(self, address: int) -> bool:
        return any(address in prefix for prefix in self.prefixes)

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name}, {self.network_type.value})"


class AsRegistry:
    """Registry of ASes with IP → AS longest-prefix-match resolution."""

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}
        self._trie: PrefixTrie = PrefixTrie()

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def register(
        self,
        asn: int,
        name: str,
        network_type: NetworkType,
        country: str = "ZZ",
        prefixes: Iterable[IPv4Network] = (),
    ) -> AutonomousSystem:
        """Create (or extend) an AS and announce its prefixes."""
        if asn in self._by_asn:
            system = self._by_asn[asn]
        else:
            system = AutonomousSystem(asn, name, network_type, country)
            self._by_asn[asn] = system
        for prefix in prefixes:
            self.announce(asn, prefix)
        return system

    def announce(self, asn: int, prefix: IPv4Network) -> None:
        """Announce an additional prefix for a registered AS."""
        system = self._by_asn.get(asn)
        if system is None:
            raise KeyError(f"AS{asn} is not registered")
        existing = self._trie.lookup_exact(prefix)
        if existing is not None and existing.asn != asn:
            raise ValueError(f"{prefix} already announced by AS{existing.asn}")
        system.prefixes.append(prefix)
        self._trie.insert(prefix, system)

    def get(self, asn: int) -> Optional[AutonomousSystem]:
        return self._by_asn.get(asn)

    def lookup(self, address: int) -> Optional[AutonomousSystem]:
        """The AS originating ``address``, or ``None`` for unrouted space."""
        return self._trie.lookup(address)

    def network_type_of(self, address: int) -> NetworkType:
        """Network type for an address; UNKNOWN when unrouted."""
        system = self.lookup(address)
        return system.network_type if system else NetworkType.UNKNOWN

    def systems_of_type(self, network_type: NetworkType) -> list:
        return [s for s in self._by_asn.values() if s.network_type is network_type]
