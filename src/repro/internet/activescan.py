"""Active QUIC server census, modeled after Rüth et al. (PAM 2018).

The paper correlates flood victims against active scans of the IPv4
space ("2 million QUIC servers in 2021") and finds that 98% of attacks
hit *known* QUIC servers.  Here the census is produced by actively
scanning the simulated Internet: every content server registered in the
topology answers a QUIC handshake probe, so the census is exactly what
a scanner à la ZMap+quiche would have recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.addresses import format_ipv4


@dataclass(frozen=True)
class QuicServerRecord:
    """One QUIC-speaking endpoint discovered by the census."""

    address: int
    asn: int
    provider: str
    versions: tuple[str, ...]
    server_name: str = ""
    supports_retry: bool = False
    sends_retry: bool = False

    def __str__(self) -> str:
        return f"{format_ipv4(self.address)} ({self.provider}, {','.join(self.versions)})"


class ActiveScanCensus:
    """The set of known QUIC servers at measurement time."""

    def __init__(self, records: Iterable[QuicServerRecord] = ()) -> None:
        self._by_address: dict[int, QuicServerRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: QuicServerRecord) -> None:
        self._by_address[record.address] = record

    def __len__(self) -> int:
        return len(self._by_address)

    def __contains__(self, address: int) -> bool:
        return address in self._by_address

    def get(self, address: int) -> Optional[QuicServerRecord]:
        return self._by_address.get(address)

    def is_known_quic_server(self, address: int) -> bool:
        return address in self._by_address

    def by_provider(self, provider: str) -> list:
        return [r for r in self._by_address.values() if r.provider == provider]

    def providers(self) -> dict:
        """Provider → server count."""
        counts: dict[str, int] = {}
        for record in self._by_address.values():
            counts[record.provider] = counts.get(record.provider, 0) + 1
        return counts

    def all_records(self) -> list:
        return list(self._by_address.values())
