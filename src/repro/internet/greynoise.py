"""GreyNoise-style honeypot threat-intelligence platform.

The paper correlates request-session sources with GreyNoise and finds
*no* benign scanners among them, with 2.3% tagged as known bruteforcers
or botnet members (Mirai, EternalBlue).  This module reproduces the
reactive vantage point: the traffic simulation registers its actors
here, and the analysis later queries classifications exactly like the
GreyNoise API — by source IP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional


class GreyNoiseTag(enum.Enum):
    BENIGN_SCANNER = "benign scanner"
    BRUTEFORCER = "known bruteforcer"
    MIRAI = "Mirai botnet"
    ETERNALBLUE = "EternalBlue"
    SPOOFABLE = "spoofable"
    UNKNOWN = "unknown"


#: Tags GreyNoise would classify as malicious.
MALICIOUS_TAGS = frozenset(
    {GreyNoiseTag.BRUTEFORCER, GreyNoiseTag.MIRAI, GreyNoiseTag.ETERNALBLUE}
)


@dataclass
class GreyNoiseRecord:
    """Classification of one source IP."""

    address: int
    tags: frozenset
    actor: str = "unknown"
    first_seen: float = 0.0
    last_seen: float = 0.0

    @property
    def is_benign(self) -> bool:
        return GreyNoiseTag.BENIGN_SCANNER in self.tags

    @property
    def is_malicious(self) -> bool:
        return bool(self.tags & MALICIOUS_TAGS)


class GreyNoisePlatform:
    """Lookup service over honeypot observations."""

    def __init__(self) -> None:
        self._records: dict[int, GreyNoiseRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def observe(
        self,
        address: int,
        tags: Iterable[GreyNoiseTag],
        actor: str = "unknown",
        timestamp: float = 0.0,
    ) -> GreyNoiseRecord:
        """Record honeypot contact from ``address`` (idempotent merge)."""
        existing = self._records.get(address)
        if existing is None:
            record = GreyNoiseRecord(
                address=address,
                tags=frozenset(tags),
                actor=actor,
                first_seen=timestamp,
                last_seen=timestamp,
            )
            self._records[address] = record
            return record
        merged = GreyNoiseRecord(
            address=address,
            tags=existing.tags | frozenset(tags),
            actor=existing.actor if existing.actor != "unknown" else actor,
            first_seen=min(existing.first_seen, timestamp),
            last_seen=max(existing.last_seen, timestamp),
        )
        self._records[address] = merged
        return merged

    def query(self, address: int) -> Optional[GreyNoiseRecord]:
        """The record for an address, or ``None`` if never seen."""
        return self._records.get(address)

    def classify_sources(self, addresses: Iterable[int]) -> dict:
        """Summary used in Section 5.2: counts per disposition."""
        summary = {"benign": 0, "malicious": 0, "unknown": 0, "unseen": 0}
        for address in addresses:
            record = self.query(address)
            if record is None:
                summary["unseen"] += 1
            elif record.is_benign:
                summary["benign"] += 1
            elif record.is_malicious:
                summary["malicious"] += 1
            else:
                summary["unknown"] += 1
        return summary
