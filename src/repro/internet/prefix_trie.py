"""A binary trie for longest-prefix matching of IPv4 addresses.

This is the routing-table analogue behind every IP → AS lookup the
analysis performs (Figure 5 attributes sessions to network types via
exactly this mapping).  Insertion is per-prefix; lookup walks at most
32 levels and returns the most specific covering entry.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.net.addresses import IPv4Network

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps CIDR prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, network: IPv4Network, value: V) -> None:
        """Insert or replace the value for ``network``."""
        node = self._root
        for depth in range(network.prefix_len):
            bit = (network.network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Longest-prefix match; ``None`` when no prefix covers the address."""
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def lookup_exact(self, network: IPv4Network) -> Optional[V]:
        """Value stored for exactly this prefix, or ``None``."""
        node = self._root
        for depth in range(network.prefix_len):
            bit = (network.network >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return None
        return node.value if node.has_value else None

    def items(self) -> Iterator[tuple[IPv4Network, V]]:
        """Yield (prefix, value) pairs in trie order."""
        stack: list[tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, prefix_bits, depth = stack.pop()
            if node.has_value:
                yield IPv4Network(prefix_bits << (32 - depth) if depth else 0, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (prefix_bits << 1) | bit, depth + 1))
