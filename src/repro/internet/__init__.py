"""Synthetic Internet model: ASes, prefixes, census and threat-intel data.

The paper contextualizes telescope traffic with three external data
sources, all rebuilt here from scratch:

- PeeringDB-style AS metadata → :mod:`repro.internet.asn` (registry,
  network types) over a longest-prefix-match trie
  (:mod:`repro.internet.prefix_trie`),
- the active QUIC-server census of Rüth et al. →
  :mod:`repro.internet.activescan`,
- the GreyNoise honeypot platform → :mod:`repro.internet.greynoise`.

:mod:`repro.internet.topology` assembles a full synthetic Internet
(content providers, eyeball networks with bots, research universities,
transit) that the telescope scenarios draw from.
"""

from repro.internet.asn import AsRegistry, AutonomousSystem, NetworkType
from repro.internet.prefix_trie import PrefixTrie
from repro.internet.activescan import ActiveScanCensus, QuicServerRecord
from repro.internet.greynoise import GreyNoisePlatform, GreyNoiseRecord, GreyNoiseTag
from repro.internet.topology import InternetModel, TopologyConfig

__all__ = [
    "AsRegistry",
    "AutonomousSystem",
    "NetworkType",
    "PrefixTrie",
    "ActiveScanCensus",
    "QuicServerRecord",
    "GreyNoisePlatform",
    "GreyNoiseRecord",
    "GreyNoiseTag",
    "InternetModel",
    "TopologyConfig",
]
