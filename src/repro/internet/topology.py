"""Builds the synthetic Internet the telescope scenarios observe.

The topology reproduces the *population structure* behind the paper's
findings:

- two research-university ASes (the stand-ins for TUM and RWTH) whose
  scanners sweep the whole IPv4 space (98.5% of QUIC IBR, Figure 2);
- large content-provider ASes ("Google", "Facebook", plus smaller CDNs)
  operating the QUIC servers that become flood victims (Figure 9:
  >83% of attacks hit the top two providers) — with the version mix the
  paper observed (draft-29 for Google, mvfst-draft-27 for Facebook) and
  RETRY supported-but-disabled (Section 6);
- eyeball ASes across countries hosting the bots that scan UDP/443
  (Figure 5; Bangladesh/USA/Algeria dominate request sources);
- transit and enterprise ASes as background population.

Everything is seeded; building twice with the same seed yields the same
Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import IPv4Network, parse_ipv4
from repro.util.rng import SeededRng
from repro.internet.activescan import ActiveScanCensus, QuicServerRecord
from repro.internet.asn import AsRegistry, NetworkType
from repro.internet.greynoise import GreyNoisePlatform, GreyNoiseTag


@dataclass
class TopologyConfig:
    """Knobs for the synthetic Internet; defaults give a laptop-scale
    population whose *shares* match the paper."""

    telescope_cidr: str = "44.0.0.0/9"
    #: QUIC servers per major content provider.
    google_servers: int = 120
    facebook_servers: int = 60
    other_content_ases: int = 8
    servers_per_other_content: int = 8
    #: Eyeball population (bot hosting).
    eyeball_ases: int = 30
    bots_per_eyeball: int = 12
    #: Background ASes.
    transit_ases: int = 6
    enterprise_ases: int = 8
    #: Fraction of bots with malicious GreyNoise tags (paper: 2.3%).
    tagged_bot_fraction: float = 0.023
    #: Version mixes observed in backscatter (Figure 9).
    google_version_mix: tuple = (("draft-29", 0.78), ("v1", 0.22))
    facebook_version_mix: tuple = (("mvfst-draft-27", 0.95), ("mvfst-exp", 0.05))
    #: Request-source country shares (Section 5.2).
    eyeball_countries: tuple = (
        ("BD", 0.34),
        ("US", 0.27),
        ("DZ", 0.08),
        ("BR", 0.08),
        ("VN", 0.07),
        ("IN", 0.06),
        ("RU", 0.05),
        ("CN", 0.05),
    )


@dataclass
class ContentProvider:
    """A content network operating many QUIC servers."""

    name: str
    asn: int
    servers: list = field(default_factory=list)
    version_mix: tuple = ()
    keepalive_pings: int = 0


@dataclass
class BotHost:
    """A compromised eyeball host that scans UDP/443."""

    address: int
    asn: int
    country: str
    tags: frozenset = frozenset()


@dataclass
class ResearchScanner:
    """A university research scanner performing full-IPv4 sweeps."""

    name: str
    address: int
    asn: int


class InternetModel:
    """The assembled synthetic Internet."""

    def __init__(self, rng: SeededRng, config: TopologyConfig | None = None) -> None:
        self.config = config or TopologyConfig()
        self.rng = rng.child("topology")
        self.registry = AsRegistry()
        self.census = ActiveScanCensus()
        self.greynoise = GreyNoisePlatform()
        self.telescope_net = IPv4Network.from_cidr(self.config.telescope_cidr)
        self.content_providers: list[ContentProvider] = []
        self.research_scanners: list[ResearchScanner] = []
        self.bot_hosts: list[BotHost] = []
        self._next_asn = 64512
        self._alloc_base = parse_ipv4("96.0.0.0")
        self._build()

    # -- prefix allocation ----------------------------------------------------

    def _allocate_prefix(self, prefix_len: int) -> IPv4Network:
        """Hand out the next non-telescope prefix of the requested size.

        The base is aligned up to the prefix size first — otherwise the
        network address would normalize *downwards* and overlap earlier
        allocations.
        """
        size = 1 << (32 - prefix_len)
        while True:
            aligned = (self._alloc_base + size - 1) // size * size
            candidate = IPv4Network(aligned, prefix_len)
            self._alloc_base = candidate.last + 1
            if self._alloc_base >= 2**32:
                raise RuntimeError("address space exhausted")
            overlap = (
                candidate.first <= self.telescope_net.last
                and self.telescope_net.first <= candidate.last
            )
            if not overlap:
                return candidate

    def _new_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    # -- build steps ------------------------------------------------------

    def _build(self) -> None:
        self._build_research()
        self._build_content()
        self._build_eyeballs()
        self._build_background()

    def _build_research(self) -> None:
        for name in ("TUM-Research-Scan", "RWTH-Research-Scan"):
            asn = self._new_asn()
            prefix = self._allocate_prefix(20)
            self.registry.register(
                asn, name, NetworkType.EDUCATION, country="DE", prefixes=[prefix]
            )
            scanner_ip = prefix.address_at(self.rng.randint(1, prefix.size - 2))
            self.research_scanners.append(ResearchScanner(name, scanner_ip, asn))
            # Research scanners announce themselves; GreyNoise tags them
            # benign (the paper identifies them and removes their bias).
            self.greynoise.observe(
                scanner_ip, [GreyNoiseTag.BENIGN_SCANNER], actor=name
            )

    def _build_content(self) -> None:
        plan = [
            ("Google", self.config.google_servers, self.config.google_version_mix, 1),
            (
                "Facebook",
                self.config.facebook_servers,
                self.config.facebook_version_mix,
                0,
            ),
        ]
        for i in range(self.config.other_content_ases):
            plan.append(
                (
                    f"CDN-{i:02d}",
                    self.config.servers_per_other_content,
                    (("v1", 0.7), ("draft-29", 0.3)),
                    0,
                )
            )
        for name, server_count, version_mix, keepalives in plan:
            asn = self._new_asn()
            prefix = self._allocate_prefix(16)
            self.registry.register(
                asn, name, NetworkType.CONTENT, country="US", prefixes=[prefix]
            )
            provider = ContentProvider(
                name=name, asn=asn, version_mix=version_mix, keepalive_pings=keepalives
            )
            used = set()
            for _ in range(server_count):
                while True:
                    address = prefix.address_at(self.rng.randint(1, prefix.size - 2))
                    if address not in used:
                        used.add(address)
                        break
                versions = self._pick_versions(version_mix)
                record = QuicServerRecord(
                    address=address,
                    asn=asn,
                    provider=name,
                    versions=versions,
                    server_name=f"srv-{address & 0xFFFF:04x}.{name.lower()}.example",
                    supports_retry=True,  # Section 6: supported...
                    sends_retry=False,  # ...but deliberately not used
                )
                provider.servers.append(record)
                self.census.add(record)
            self.content_providers.append(provider)

    def _pick_versions(self, mix: tuple) -> tuple:
        names = [name for name, _w in mix]
        weights = [w for _n, w in mix]
        primary = names[self.rng.weighted_index(weights)]
        return (primary,)

    def _build_eyeballs(self) -> None:
        countries = [c for c, _w in self.config.eyeball_countries]
        weights = [w for _c, w in self.config.eyeball_countries]
        for i in range(self.config.eyeball_ases):
            country = countries[self.rng.weighted_index(weights)]
            asn = self._new_asn()
            prefix = self._allocate_prefix(16)
            self.registry.register(
                asn,
                f"Eyeball-{country}-{i:02d}",
                NetworkType.EYEBALL,
                country=country,
                prefixes=[prefix],
            )
            for _ in range(self.config.bots_per_eyeball):
                address = prefix.address_at(self.rng.randint(1, prefix.size - 2))
                tags: frozenset = frozenset()
                if self.rng.random() < self.config.tagged_bot_fraction:
                    tag = self.rng.choice(
                        [
                            GreyNoiseTag.BRUTEFORCER,
                            GreyNoiseTag.MIRAI,
                            GreyNoiseTag.ETERNALBLUE,
                        ]
                    )
                    tags = frozenset({tag})
                    self.greynoise.observe(address, tags, actor="botnet")
                self.bot_hosts.append(BotHost(address, asn, country, tags))

    def _build_background(self) -> None:
        for i in range(self.config.transit_ases):
            asn = self._new_asn()
            self.registry.register(
                asn,
                f"Transit-{i:02d}",
                NetworkType.NSP,
                country="US",
                prefixes=[self._allocate_prefix(15)],
            )
        for i in range(self.config.enterprise_ases):
            asn = self._new_asn()
            self.registry.register(
                asn,
                f"Enterprise-{i:02d}",
                NetworkType.ENTERPRISE,
                country="US",
                prefixes=[self._allocate_prefix(19)],
            )

    # -- queries ----------------------------------------------------------

    @property
    def all_quic_servers(self) -> list:
        return self.census.all_records()

    def provider(self, name: str) -> ContentProvider:
        for provider in self.content_providers:
            if provider.name == name:
                return provider
        raise KeyError(f"unknown content provider {name!r}")

    def random_unrouted_address(self) -> int:
        """An address outside every announced prefix and the telescope."""
        while True:
            address = self.rng.randint(0, 2**32 - 1)
            if address in self.telescope_net:
                continue
            if self.registry.lookup(address) is None:
                return address

    def random_telescope_address(self, rng: SeededRng | None = None) -> int:
        """A uniformly random address inside the telescope prefix."""
        chooser = rng or self.rng
        return self.telescope_net.address_at(
            chooser.randint(0, self.telescope_net.size - 1)
        )
