"""DoS flood detection with the Moore et al. thresholds (Section 5.2).

A backscatter session is an *attack* when it has (i) more than 25
packets, (ii) a duration above 60 seconds, and (iii) a maximum packet
rate above 0.5 pps computed over 1-minute slots.  Appendix B scales all
three thresholds by a weight ``w`` (w < 1 relaxed, w > 1 stricter) and
shows that detected attacks remain dominated by content providers even
at w = 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.sessions import Session


@dataclass(frozen=True)
class DosThresholds:
    """The Moore et al. thresholds; ``weighted(w)`` scales all three."""

    min_packets: int = 25
    min_duration: float = 60.0
    min_max_pps: float = 0.5

    def weighted(self, weight: float) -> "DosThresholds":
        if weight <= 0:
            raise ValueError("threshold weight must be positive")
        return DosThresholds(
            min_packets=self.min_packets * weight,
            min_duration=self.min_duration * weight,
            min_max_pps=self.min_max_pps * weight,
        )

    def matches(self, session: Session) -> bool:
        return (
            session.packet_count > self.min_packets
            and session.duration > self.min_duration
            and session.max_pps > self.min_max_pps
        )


@dataclass
class FloodAttack:
    """A detected flood: the victim is the backscatter *source*."""

    victim_ip: int
    vector: str  # "quic" | "tcp" | "icmp"
    start: float
    end: float
    packet_count: int
    max_pps: float
    session: Session

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlap_seconds(self, other: "FloodAttack") -> float:
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))

    def overlaps(self, other: "FloodAttack", min_overlap: float = 1.0) -> bool:
        """The paper's concurrency test: ≥ 1 mutual second."""
        return self.overlap_seconds(other) >= min_overlap

    def gap_to(self, other: "FloodAttack") -> float:
        if self.overlap_seconds(other) > 0:
            return 0.0
        if self.end <= other.start:
            return other.start - self.end
        return self.start - other.end


_CLASS_TO_VECTOR = {
    "quic-response": "quic",
    "tcp-backscatter": "tcp",
    "icmp-backscatter": "icmp",
}


class DosDetector:
    """Applies thresholds to closed backscatter sessions."""

    def __init__(self, thresholds: Optional[DosThresholds] = None) -> None:
        self.thresholds = thresholds or DosThresholds()
        self.attacks: list = []
        self.rejected_sessions: list = []
        self._live: set = set()

    def consider(self, session: Session) -> Optional[FloodAttack]:
        """Classify one closed session; returns the attack if detected."""
        vector = _CLASS_TO_VECTOR.get(session.traffic_class)
        if vector is None:
            raise ValueError(
                f"session class {session.traffic_class!r} is not backscatter"
            )
        if not self.thresholds.matches(session):
            self.rejected_sessions.append(session)
            return None
        attack = FloodAttack(
            victim_ip=session.source,
            vector=vector,
            start=session.first_ts,
            end=session.last_ts,
            packet_count=session.packet_count,
            max_pps=session.max_pps,
            session=session,
        )
        self.attacks.append(attack)
        return attack

    def observe_update(self, session: Session) -> Optional[FloodAttack]:
        """Streaming entry point: threshold-check a still-open session.

        All three Moore conditions are monotone over a session's life,
        so the first packet that makes ``thresholds.matches`` true is
        the exact event-time threshold crossing.  Returns an attack
        snapshot (end/packet stats as of the crossing packet) the first
        time this session crosses; ``None`` on every other call.  The
        closed session remains the authoritative record — hand it to
        :meth:`consider` (or :meth:`release`) when it ends.
        """
        key = (session.traffic_class, session.source, session.first_ts)
        if key in self._live:
            return None
        if not self.thresholds.matches(session):
            return None
        vector = _CLASS_TO_VECTOR.get(session.traffic_class)
        if vector is None:
            raise ValueError(
                f"session class {session.traffic_class!r} is not backscatter"
            )
        self._live.add(key)
        return FloodAttack(
            victim_ip=session.source,
            vector=vector,
            start=session.first_ts,
            end=session.last_ts,
            packet_count=session.packet_count,
            max_pps=session.max_pps,
            session=session,
        )

    def release(self, session: Session) -> bool:
        """Forget a closed session's live-crossing record.

        Returns whether the session had crossed the thresholds while
        open (i.e. whether :meth:`observe_update` alerted for it).
        """
        key = (session.traffic_class, session.source, session.first_ts)
        if key in self._live:
            self._live.discard(key)
            return True
        return False

    def detect_all(self, sessions: Iterable[Session]) -> list:
        for session in sessions:
            self.consider(session)
        return self.attacks

    @property
    def detection_rate(self) -> float:
        """Fraction of considered sessions classified as attacks
        (the paper: 11% of response sessions)."""
        total = len(self.attacks) + len(self.rejected_sessions)
        return len(self.attacks) / total if total else 0.0


def weight_sweep(
    sessions: list,
    weights: Iterable[float],
    base: Optional[DosThresholds] = None,
) -> list:
    """Appendix B / Figure 10: re-detect attacks under scaled thresholds.

    Returns ``[(weight, detector)]`` so callers can extract both counts
    and per-weight victim compositions.
    """
    base = base or DosThresholds()
    out = []
    for weight in weights:
        detector = DosDetector(base.weighted(weight))
        detector.detect_all(sessions)
        out.append((weight, detector))
    return out
