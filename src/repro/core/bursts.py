"""Burst pre-screening of telescope time series.

Section 5.1 observes that the sanitized QUIC *response* series "is very
erratic, exhibiting high peaks and drops per event — this behavior
might hint at DoS events", which the paper then inspects with the
session/threshold machinery.  This module implements that first,
cheap look: an EWMA-based burst detector over bucketed packet counts
that flags the intervals worth sessionizing.  Operators use exactly
this kind of screen to decide where to spend the expensive analysis.

The detector keeps exponentially weighted estimates of the mean and
variance (Welford-style, discounted) and flags a bucket whose count
exceeds ``mean + threshold * std`` *as predicted before the bucket is
absorbed* — so a sustained shift eventually becomes the new baseline,
while short spikes keep firing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class Burst:
    """One flagged bucket."""

    bucket: int
    count: float
    expected: float
    sigma: float

    @property
    def excess_sigmas(self) -> float:
        return (self.count - self.expected) / self.sigma if self.sigma else math.inf


class BurstDetector:
    """EWMA burst detection over an ordered count series."""

    def __init__(
        self,
        alpha: float = 0.3,
        threshold_sigmas: float = 3.0,
        min_count: float = 5.0,
        warmup: int = 3,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha {alpha} outside (0, 1]")
        if threshold_sigmas <= 0:
            raise ValueError("threshold must be positive")
        self.alpha = alpha
        self.threshold_sigmas = threshold_sigmas
        self.min_count = min_count
        self.warmup = warmup
        self._mean = 0.0
        self._var = 0.0
        self._seen = 0

    def update(self, bucket: int, count: float) -> Burst | None:
        """Feed one bucket; returns a :class:`Burst` if it is anomalous."""
        burst = None
        if self._seen >= self.warmup:
            sigma = math.sqrt(max(self._var, 1.0))
            if (
                count >= self.min_count
                and count > self._mean + self.threshold_sigmas * sigma
            ):
                burst = Burst(bucket=bucket, count=count, expected=self._mean, sigma=sigma)
        delta = count - self._mean
        self._mean += self.alpha * delta
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)
        self._seen += 1
        return burst


def detect_bursts(
    series: dict,
    alpha: float = 0.3,
    threshold_sigmas: float = 3.0,
    min_count: float = 5.0,
) -> list:
    """Run the detector over a ``{bucket: count}`` series (gaps count 0)."""
    if not series:
        return []
    detector = BurstDetector(
        alpha=alpha, threshold_sigmas=threshold_sigmas, min_count=min_count
    )
    bursts = []
    for bucket in range(min(series), max(series) + 1):
        burst = detector.update(bucket, float(series.get(bucket, 0)))
        if burst is not None:
            bursts.append(burst)
    return bursts


def burstiness(series: dict) -> float:
    """Coefficient of variation of a bucket series — the paper's
    "stable vs erratic" contrast in one number (Figure 3)."""
    if not series:
        return 0.0
    buckets = range(min(series), max(series) + 1)
    values = [float(series.get(b, 0)) for b in buckets]
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean
