"""RETRY deployment audit (Section 6).

Two complementary checks:

- **Passive**: count Retry packets in the telescope's QUIC backscatter.
  The paper captured none — a server deploying RETRY against a spoofed
  flood would emit Retry backscatter instead of full flights.
- **Active**: connect to the most-attacked victims with a real QUIC
  client and record whether a Retry precedes the handshake.  The paper
  probed the top-10 Google/Facebook victims and saw no Retry.

The active prober runs real :mod:`repro.quic` handshakes against
servers instantiated from their census records, so a provider that
*did* enable RETRY would be caught by the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.internet.activescan import ActiveScanCensus, QuicServerRecord
from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.versions import KNOWN_VERSIONS, QUIC_V1


@dataclass
class ProbeResult:
    """Outcome of one active handshake probe."""

    address: int
    provider: str
    handshake_completed: bool
    retry_received: bool
    round_trips: int
    http_status: Optional[int] = None


@dataclass
class RetryAudit:
    """Combined passive + active audit result."""

    passive_retry_packets: int = 0
    passive_quic_packets: int = 0
    probes: list = field(default_factory=list)

    @property
    def retry_observed_passively(self) -> bool:
        return self.passive_retry_packets > 0

    @property
    def retry_observed_actively(self) -> bool:
        return any(p.retry_received for p in self.probes)

    @property
    def retry_deployed(self) -> bool:
        return self.retry_observed_passively or self.retry_observed_actively


class ActiveProber:
    """Performs live QUIC handshakes against census servers.

    The census record determines the simulated server's behaviour
    (version, retry on/off), standing in for the real endpoint the
    paper's client contacted.
    """

    def __init__(self, census: ActiveScanCensus, rng: SeededRng) -> None:
        self.census = census
        self.rng = rng.child("active-prober")

    def probe(self, address: int) -> Optional[ProbeResult]:
        """One handshake attempt; ``None`` when the address is unknown."""
        record = self.census.get(address)
        if record is None:
            return None
        server = self._server_for(record)
        client = ClientConnection(
            self.rng.child(f"probe:{address}"),
            version=QUIC_V1,
            supported_versions=tuple(KNOWN_VERSIONS[:5]),
            server_name=record.server_name,
        )
        pending = [client.initial_datagram()]
        for _ in range(8):
            if not pending:
                break
            next_pending = []
            for datagram in pending:
                responses = server.handle_datagram(
                    datagram, client_ip=0x7F000001, client_port=55555, now=0.0
                )
                for response in responses:
                    for reply in client.handle_datagram(response.data):
                        next_pending.append(reply.data)
            pending = next_pending
        retry_seen = client.retries_seen > 0
        result = client.result()
        http_status = None
        if result.completed:
            # fetch a page like quiche does — the probe is a real client
            request = client.request_datagram("/")
            for response in server.handle_datagram(
                request, client_ip=0x7F000001, client_port=55555, now=0.1
            ):
                client.handle_datagram(response.data)
            if client.http_responses:
                http_status = client.http_responses[0].status
        return ProbeResult(
            address=address,
            provider=record.provider,
            handshake_completed=result.completed,
            retry_received=retry_seen,
            round_trips=result.round_trips,
            http_status=http_status,
        )

    def _server_for(self, record: QuicServerRecord) -> ServerConnection:
        from repro.telescope.backscatter import version_named

        versions = tuple(version_named(name) for name in record.versions)
        # A real client negotiates: advertise v1 support alongside the
        # deployed variant so the handshake converges.
        supported = tuple(dict.fromkeys(versions + (QUIC_V1,)))
        return ServerConnection(
            self.rng.child(f"server:{record.address}"),
            supported_versions=supported,
            retry_enabled=record.sends_retry,
        )


def audit_retry(
    census: ActiveScanCensus,
    rng: SeededRng,
    passive_retry_packets: int,
    passive_quic_packets: int,
    top_victims: list,
) -> RetryAudit:
    """Run the full Section 6 audit over the top attacked victims."""
    audit = RetryAudit(
        passive_retry_packets=passive_retry_packets,
        passive_quic_packets=passive_quic_packets,
    )
    prober = ActiveProber(census, rng)
    for victim_ip, _attack_count in top_victims:
        result = prober.probe(victim_ip)
        if result is not None:
            audit.probes.append(result)
    return audit
