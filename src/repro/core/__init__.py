"""QUICsand analysis core — the paper's contribution.

Pipeline stages, mirroring Section 4 of the paper:

1. :mod:`repro.core.classify` — select UDP/443 traffic, validate it
   with the from-scratch QUIC dissector (:mod:`repro.core.dissect`),
   split requests (dst 443) from responses/backscatter (src 443), and
   classify TCP/ICMP backscatter alongside.
2. :mod:`repro.core.sessions` — aggregate packets into per-source
   sessions under an inactivity timeout (Figure 4's knee at 5 min).
3. :mod:`repro.core.dos` — apply the Moore et al. thresholds
   (>25 packets, >60 s, >0.5 max-pps over 1-minute slots) to find
   flood events, with the threshold-weight sweep of Appendix B.
4. :mod:`repro.core.multivector` — correlate QUIC floods with TCP/ICMP
   floods per victim: concurrent / sequential / isolated, overlap
   shares and gaps (Figure 8, Appendix C).
5. :mod:`repro.core.victims` — victim attribution: census correlation,
   provider shares, attacks-per-victim distribution (Figures 6, 9).
6. :mod:`repro.core.scid` — connection-ID and spoofing analysis per
   attack (Figure 9).
7. :mod:`repro.core.retry_audit` — passive RETRY census plus active
   probing of top victims (Section 6).
8. :mod:`repro.core.pipeline` — single-pass streaming orchestration
   over a packet stream, producing a :class:`~repro.core.pipeline.
   PipelineResult` that every bench renders from.
9. :mod:`repro.core.parallel` — source-sharded execution of the
   streaming phase across worker processes; shard partials merge
   deterministically before finalization, so serial and parallel runs
   produce identical results.
"""

from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dissect import DissectedPacket, QuicDissector
from repro.core.dos import DosDetector, DosThresholds, FloodAttack
from repro.core.multivector import MultiVectorAnalysis, correlate_attacks
from repro.core.parallel import run_sharded, shard_of
from repro.core.pipeline import (
    AnalysisConfig,
    PartialState,
    PipelineResult,
    QuicsandPipeline,
)
from repro.core.sessions import Session, Sessionizer, TimeoutSweep
from repro.core.export import export_results
from repro.core.extrapolate import TelescopeExtrapolator
from repro.core.report import build_report
from repro.core.scanprofile import ScanProfiler
from repro.core.victims import VictimAnalysis, analyze_victims

__all__ = [
    "PacketClass",
    "TrafficClassifier",
    "DissectedPacket",
    "QuicDissector",
    "DosDetector",
    "DosThresholds",
    "FloodAttack",
    "MultiVectorAnalysis",
    "correlate_attacks",
    "AnalysisConfig",
    "PartialState",
    "PipelineResult",
    "QuicsandPipeline",
    "run_sharded",
    "shard_of",
    "Session",
    "Sessionizer",
    "TimeoutSweep",
    "export_results",
    "TelescopeExtrapolator",
    "build_report",
    "ScanProfiler",
    "VictimAnalysis",
    "analyze_victims",
]
