"""Traffic classification: the Section 4.1 method.

QUIC traffic is selected by transport-layer properties — UDP with
source or destination port 443 — then validated by payload dissection
to exclude false positives.  Packets with destination port 443 are
*requests* (scans); packets with source port 443 are *responses*
(backscatter).  The two sets are disjoint by construction and, as the
paper observes, no packet carries 443 on both sides in practice.

TCP and ICMP are classified the classical backscatter way: SYNs are
scan requests; SYN-ACK/RST and echo-reply/unreachable/time-exceeded
are responses of victims to spoofed traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.icmp import IcmpHeader
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.core.dissect import Dissection, QuicDissector

QUIC_PORT = 443


class PacketClass(enum.Enum):
    QUIC_REQUEST = "quic-request"
    QUIC_RESPONSE = "quic-response"
    NON_QUIC_UDP443 = "non-quic-udp443"  # failed dissection
    OTHER_UDP = "other-udp"
    TCP_REQUEST = "tcp-request"
    TCP_BACKSCATTER = "tcp-backscatter"
    TCP_OTHER = "tcp-other"
    ICMP_BACKSCATTER = "icmp-backscatter"
    ICMP_OTHER = "icmp-other"
    OTHER = "other"

    @property
    def is_quic(self) -> bool:
        return self in (PacketClass.QUIC_REQUEST, PacketClass.QUIC_RESPONSE)

    @property
    def is_backscatter(self) -> bool:
        return self in (
            PacketClass.QUIC_RESPONSE,
            PacketClass.TCP_BACKSCATTER,
            PacketClass.ICMP_BACKSCATTER,
        )


@dataclass
class ClassifiedPacket:
    """A packet with its class and (for QUIC) its dissection."""

    packet: CapturedPacket
    packet_class: PacketClass
    dissection: Optional[Dissection] = None


class TrafficClassifier:
    """Port + dissector classification with false-positive counters."""

    def __init__(self, dissect_payloads: bool = True) -> None:
        self.dissector = QuicDissector()
        self.dissect_payloads = dissect_payloads
        self.counters = {cls: 0 for cls in PacketClass}

    def classify(self, packet: CapturedPacket) -> ClassifiedPacket:
        result = self._classify(packet)
        self.counters[result.packet_class] += 1
        return result

    def classify_batch(self, packets) -> list:
        """Classify a batch of packets in one call.

        Semantically identical to calling :meth:`classify` per packet;
        the batch form keeps the dispatch machinery in local variables,
        which matters on the pipeline's per-packet hot path.
        """
        classify = self._classify
        counters = self.counters
        out = []
        append = out.append
        for packet in packets:
            result = classify(packet)
            counters[result.packet_class] += 1
            append(result)
        return out

    def merge_counters(self, other: "TrafficClassifier") -> None:
        """Fold another classifier's counters into this one (sharded
        runs classify disjoint substreams, so counters just add)."""
        for cls, count in other.counters.items():
            self.counters[cls] += count
        self.dissector.cache_hits += other.dissector.cache_hits
        self.dissector.cache_misses += other.dissector.cache_misses

    @property
    def cache_hits(self) -> int:
        return self.dissector.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.dissector.cache_misses

    def _classify(self, packet: CapturedPacket) -> ClassifiedPacket:
        if packet.is_udp:
            return self._classify_udp(packet)
        if packet.is_tcp:
            return ClassifiedPacket(packet, self._classify_tcp(packet.transport))
        if packet.is_icmp:
            return ClassifiedPacket(packet, self._classify_icmp(packet.transport))
        return ClassifiedPacket(packet, PacketClass.OTHER)

    def _classify_udp(self, packet: CapturedPacket) -> ClassifiedPacket:
        src443 = packet.src_port == QUIC_PORT
        dst443 = packet.dst_port == QUIC_PORT
        if not src443 and not dst443:
            return ClassifiedPacket(packet, PacketClass.OTHER_UDP)
        if src443 and dst443:
            # never observed in the paper's data; treat as non-QUIC to
            # keep requests and responses disjoint
            return ClassifiedPacket(packet, PacketClass.NON_QUIC_UDP443)
        if self.dissect_payloads:
            dissection = self.dissector.dissect(packet.payload)
            if not dissection.valid:
                return ClassifiedPacket(
                    packet, PacketClass.NON_QUIC_UDP443, dissection
                )
        else:
            dissection = None
        packet_class = (
            PacketClass.QUIC_RESPONSE if src443 else PacketClass.QUIC_REQUEST
        )
        return ClassifiedPacket(packet, packet_class, dissection)

    @staticmethod
    def _classify_tcp(tcp: Optional[TcpHeader]) -> PacketClass:
        if tcp is None:
            return PacketClass.TCP_OTHER
        if tcp.is_syn_ack or tcp.is_rst:
            return PacketClass.TCP_BACKSCATTER
        if tcp.flags & TcpFlags.SYN:
            return PacketClass.TCP_REQUEST
        return PacketClass.TCP_OTHER

    @staticmethod
    def _classify_icmp(icmp: Optional[IcmpHeader]) -> PacketClass:
        if icmp is None:
            return PacketClass.ICMP_OTHER
        if icmp.is_backscatter:
            return PacketClass.ICMP_BACKSCATTER
        return PacketClass.ICMP_OTHER

    @property
    def false_positive_count(self) -> int:
        """UDP/443 packets the dissector rejected (Section 4.1's point)."""
        return self.counters[PacketClass.NON_QUIC_UDP443]
