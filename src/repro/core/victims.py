"""Victim attribution (Figures 6 and 9, Section 5.2).

Maps detected flood victims onto the active-scan census and PeeringDB
metadata: which fraction of attacks hit known QUIC servers (paper:
98%), how attacks distribute over victims (more than half the victims
are hit exactly once), and how they split across content providers
(Google 58%, Facebook 25%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.internet.activescan import ActiveScanCensus
from repro.internet.asn import AsRegistry, NetworkType


@dataclass
class VictimAnalysis:
    """Aggregate victim statistics for a set of attacks."""

    attack_count: int = 0
    attacks_per_victim: dict = field(default_factory=dict)
    known_quic_server_attacks: int = 0
    provider_attacks: dict = field(default_factory=dict)
    network_type_attacks: dict = field(default_factory=dict)

    @property
    def victim_count(self) -> int:
        return len(self.attacks_per_victim)

    @property
    def known_server_share(self) -> float:
        """Fraction of attacks hitting census-known QUIC servers."""
        if not self.attack_count:
            return 0.0
        return self.known_quic_server_attacks / self.attack_count

    @property
    def single_attack_victim_share(self) -> float:
        """Fraction of victims attacked exactly once (Figure 6)."""
        if not self.attacks_per_victim:
            return 0.0
        singles = sum(1 for count in self.attacks_per_victim.values() if count == 1)
        return singles / len(self.attacks_per_victim)

    def provider_share(self, provider: str) -> float:
        if not self.attack_count:
            return 0.0
        return self.provider_attacks.get(provider, 0) / self.attack_count

    def attacks_per_victim_sorted(self) -> list:
        """Victim attack counts, descending — the Figure 6 sample."""
        return sorted(self.attacks_per_victim.values(), reverse=True)

    def top_victims(self, n: int = 10) -> list:
        """(victim_ip, attack_count) for the most-attacked victims."""
        ranked = sorted(
            self.attacks_per_victim.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]


def analyze_victims(
    attacks: list,
    census: Optional[ActiveScanCensus] = None,
    registry: Optional[AsRegistry] = None,
) -> VictimAnalysis:
    """Attribute a list of :class:`~repro.core.dos.FloodAttack`."""
    analysis = VictimAnalysis()
    for attack in attacks:
        analysis.attack_count += 1
        victim = attack.victim_ip
        analysis.attacks_per_victim[victim] = (
            analysis.attacks_per_victim.get(victim, 0) + 1
        )
        if census is not None:
            record = census.get(victim)
            if record is not None:
                analysis.known_quic_server_attacks += 1
                analysis.provider_attacks[record.provider] = (
                    analysis.provider_attacks.get(record.provider, 0) + 1
                )
        if registry is not None:
            network_type = registry.network_type_of(victim)
            analysis.network_type_attacks[network_type] = (
                analysis.network_type_attacks.get(network_type, 0) + 1
            )
    return analysis


def session_network_types(sessions: list, registry: AsRegistry) -> dict:
    """Figure 5: session counts per source network type."""
    counts: dict[NetworkType, int] = {}
    for session in sessions:
        network_type = registry.network_type_of(session.source)
        counts[network_type] = counts.get(network_type, 0) + 1
    return counts
