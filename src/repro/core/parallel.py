"""Source-sharded parallel execution of the per-packet phase.

The streaming phase of :class:`~repro.core.pipeline.QuicsandPipeline`
(classify → dissect → sessionize → hourly counters → timeout-sweep
observation) keeps all of its state either per source IP or as a plain
sum.  Hash-partitioning the packet stream by source therefore loses
nothing: every sessionizer decision, sweep gap and research-candidate
count depends only on one source's time-ordered substream, which a
shard sees in full and in order.  Merging the shard partials
(:meth:`~repro.core.pipeline.PartialState.merge`) then reproduces the
serial state exactly, and the once-per-capture finalization runs on the
merged result — a serial and a parallel run yield identical
:class:`~repro.core.pipeline.PipelineResult`\\ s for the same input.

Mechanically, the parent reads the stream, routes each packet to its
shard buffer (:func:`shard_of`), and ships filled buffers to worker
processes.  Two transports exist:

* **shared-memory rings** (default, fast lane): each worker owns a
  ring of fixed-size slots in one ``multiprocessing.shared_memory``
  segment.  The parent packs batches as flat scalar records
  (:data:`_SHM_RECORD`) plus raw payload bytes straight into a free
  slot and sends only a tiny ``(slot, count)`` descriptor over the
  queue; the worker parses records in place and returns the slot
  number on an ack queue.  Nothing per-packet is pickled.  Workers
  feed :meth:`PartialState.consume_lane_records` on a
  :class:`~repro.core.batchlane.BatchLane`.
* **compact tuples** (rich path, ``fast_lane=False``, or when shared
  memory is unavailable): packets cross the boundary as flat tuples
  (:func:`encode_packet`); workers rebuild
  :class:`~repro.net.packet.CapturedPacket` records and run the rich
  classifier.

Time order holds within each source's substream because a source maps
to exactly one shard and slots/buffers preserve arrival order.
"""

from __future__ import annotations

import collections
import multiprocessing
import queue as queue_module
import struct
import traceback
from typing import Iterable, Optional

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

from repro import obs
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader
from repro.core.batchlane import BatchLane
from repro.core.classify import TrafficClassifier
from repro.core.pipeline import AnalysisConfig, PartialState

# Worker processes publish into their own (reset-after-fork) registry
# and ship one snapshot back with their partial state; the parent
# merges each snapshot exactly once, in shard-index order, so parallel
# metric totals equal serial totals (tests/test_obs_parallel.py).
_M_SHARD_PACKETS = obs.counter(
    "repro_parallel_shard_packets_total",
    "packets consumed per shard worker",
    labels=("worker",),
)
_M_SHARD_BATCHES = obs.counter(
    "repro_parallel_shard_batches_total",
    "IPC batches consumed per shard worker",
    labels=("worker",),
)
_M_WORKERS = obs.gauge(
    "repro_parallel_workers",
    "worker processes of the most recent sharded run",
)
_M_MERGE = obs.histogram(
    "repro_parallel_merge_seconds",
    "wall seconds merging all shard partial states",
)

DEFAULT_BATCH = 512
#: per-worker input queue depth, in batches — bounds parent-side memory
#: and applies backpressure when a shard falls behind.
QUEUE_DEPTH = 16

_GOLDEN = 0x9E3779B1  # Fibonacci-hash multiplier: mixes clustered IPs


def shard_of(source: int, workers: int) -> int:
    """Map a source IP to its shard (stable hash partition)."""
    return ((source * _GOLDEN) & 0xFFFFFFFF) % workers


# -- compact packet IPC ----------------------------------------------------
#
# Pickling CapturedPacket's nested header dataclasses per packet would
# dominate the parent's feed loop, so packets cross the process
# boundary as flat tuples of primitives carrying exactly the fields the
# per-packet phase reads (timestamps, addresses, ports/flags, payload,
# wire length).  Unread header fields (checksums, TTL, seq/ack) are not
# shipped; no analysis output depends on them.

_UDP, _TCP, _ICMP = 1, 2, 3


def encode_packet(packet: CapturedPacket) -> tuple:
    """Flatten a packet into a cheap-to-pickle tuple."""
    transport = packet.transport
    kind = type(transport)
    if kind is UdpHeader:
        wire = (_UDP, transport.src_port, transport.dst_port)
    elif kind is TcpHeader:
        wire = (_TCP, transport.src_port, transport.dst_port, int(transport.flags))
    elif kind is IcmpHeader:
        wire = (_ICMP, transport.icmp_type, transport.code)
    else:
        wire = None
    ip = packet.ip
    return (
        packet.timestamp,
        ip.src,
        ip.dst,
        ip.proto,
        ip.total_length,
        wire,
        packet.payload,
    )


def decode_packet(record: tuple) -> CapturedPacket:
    """Rebuild a :class:`CapturedPacket` from :func:`encode_packet` output."""
    timestamp, src, dst, proto, total_length, wire, payload = record
    if wire is None:
        transport = None
    elif wire[0] == _UDP:
        transport = UdpHeader(wire[1], wire[2])
    elif wire[0] == _TCP:
        transport = TcpHeader(wire[1], wire[2], 0, 0, wire[3])
    else:
        transport = IcmpHeader(wire[1], wire[2])
    return CapturedPacket(
        timestamp, IPv4Header(src, dst, proto, total_length), transport, payload
    )


# -- shared-memory ring transport ------------------------------------------
#
# One scalar record per packet, packed little-endian with no padding:
# timestamp f64, src u32, dst u32, total_length u16, proto u8, kind u8,
# f1 u16, f2 u16, f3 u16, payload_length u32.  ``kind`` names the
# parsed transport (0 none, 1 UDP, 2 TCP, 3 ICMP); f1/f2 carry the
# ports (UDP/TCP) or ICMP type/code, f3 the TCP flags.  Payload bytes
# follow the record only when the high bit of ``kind`` is set — the
# parent ships them solely for dissectable UDP packets with exactly one
# port == 443, the only payloads the per-packet phase ever reads.
# ``payload_length`` is always the true length so workers recover exact
# wire lengths even for unshipped payloads.

_SHM_RECORD = struct.Struct("<dIIHBBHHHI")
_KIND_UDP, _KIND_TCP, _KIND_ICMP = 1, 2, 3
_PAYLOAD_FLAG = 0x80

#: slots per worker ring — bounds in-flight batches (and parent-side
#: backpressure) exactly like QUEUE_DEPTH bounds the tuple transport.
RING_SLOTS = 8
#: slot byte size; one batch must fit.  Flush early once a slot cannot
#: take another worst-case record (30 B header + 64 KiB payload).
SLOT_SIZE = 1 << 20
_FLUSH_WATERMARK = SLOT_SIZE - (_SHM_RECORD.size + 0x10000)


def shm_transport_available() -> bool:
    """Can this host back the ring transport with shared memory?"""
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    probe.close()
    try:
        probe.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - cleanup race
        pass
    return True


def _attach_segment(name: str):
    """Attach to an existing segment without resource-tracker claims.

    Workers must not register the parent-owned segment with their own
    resource tracker, or the tracker unlinks it when the first worker
    exits.  Python 3.13+ has ``track=False``; older versions need the
    attach-then-unregister dance.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # pre-3.13: attaching registers the segment with the resource
        # tracker (shared with the parent under fork, private under
        # spawn) and either way a second claim on a parent-owned name
        # ends in spurious unlinks or KeyError noise at shutdown.
        # Suppress registration for the duration of the attach.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _no_track(name_, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original_register(name_, rtype)

        resource_tracker.register = _no_track
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class _ShardRing:
    """Parent-side view of one worker's slot ring."""

    def __init__(self, slots: int = RING_SLOTS, slot_size: int = SLOT_SIZE):
        self.slot_size = slot_size
        self.shm = _shared_memory.SharedMemory(
            create=True, size=slots * slot_size
        )
        self.free = collections.deque(range(slots))

    def close_and_unlink(self) -> None:
        try:
            self.shm.close()
        except OSError:  # pragma: no cover - double close
            pass
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def _acquire_slot(ring, ack_queue, process) -> int:
    """Next free slot, recycling acked ones; notices a dead worker."""
    while True:
        try:
            ring.free.append(ack_queue.get_nowait())
        except queue_module.Empty:
            break
    if ring.free:
        return ring.free.popleft()
    while True:
        try:
            return ack_queue.get(timeout=5.0)
        except queue_module.Empty:
            if not process.is_alive():
                raise RuntimeError(
                    f"shard worker {process.name} died "
                    f"(exit {process.exitcode})"
                ) from None


# -- worker process --------------------------------------------------------


def _shard_worker(index, config, in_queue, out_queue, metrics_enabled=False) -> None:
    """Consume encoded batches until the ``None`` sentinel, then ship
    the flushed partial state (plus a metrics snapshot) to the parent.

    The fork start method copies the parent's registry values into the
    child, so the first thing a worker does is reset its registry —
    the snapshot it ships then carries only this worker's deltas and
    the parent's merge is exactly-once by construction.
    """
    try:
        obs.REGISTRY.reset()
        obs.set_enabled(metrics_enabled)
        classifier = TrafficClassifier(dissect_payloads=config.dissect_payloads)
        state = PartialState.initial(config)
        decode = decode_packet
        batches = 0
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            batches += 1
            state.consume([decode(record) for record in batch], classifier)
        state.record_classifier(classifier)
        state.close()
        if obs.enabled():
            _M_SHARD_PACKETS.inc(state.total_packets, worker=str(index))
            _M_SHARD_BATCHES.inc(batches, worker=str(index))
            snapshot = obs.REGISTRY.snapshot(run_collectors=False)
        else:
            snapshot = None
        out_queue.put((index, state, snapshot, None))
    except BaseException:
        out_queue.put((index, None, None, traceback.format_exc()))


def _shm_shard_worker(
    index,
    config,
    shm_name,
    slot_size,
    in_queue,
    ack_queue,
    out_queue,
    metrics_enabled=False,
) -> None:
    """Ring-transport twin of :func:`_shard_worker`.

    Consumes ``(slot, count)`` descriptors until the ``None`` sentinel,
    parsing scalar records straight out of the shared segment and
    feeding the batch fast lane; each drained slot is acked back to the
    parent for reuse.
    """
    segment = None
    try:
        obs.REGISTRY.reset()
        obs.set_enabled(metrics_enabled)
        segment = _attach_segment(shm_name)
        buf = segment.buf
        lane = BatchLane(dissect_payloads=config.dissect_payloads)
        state = PartialState.initial(config)
        unpack_from = _SHM_RECORD.unpack_from
        record_size = _SHM_RECORD.size
        batches = 0
        while True:
            descriptor = in_queue.get()
            if descriptor is None:
                break
            batches += 1
            slot, count = descriptor
            offset = slot * slot_size
            records = []
            append = records.append
            for _ in range(count):
                fields = unpack_from(buf, offset)
                offset += record_size
                kind = fields[5]
                if kind & _PAYLOAD_FLAG:
                    payload_length = fields[9]
                    payload = bytes(buf[offset : offset + payload_length])
                    offset += payload_length
                    append(
                        fields[:5] + (kind & 0x7F,) + fields[6:] + (payload,)
                    )
                else:
                    append(fields + (b"",))
            ack_queue.put(slot)
            state.consume_lane_records(records, lane)
        state.record_classifier(lane)
        state.close()
        if obs.enabled():
            _M_SHARD_PACKETS.inc(state.total_packets, worker=str(index))
            _M_SHARD_BATCHES.inc(batches, worker=str(index))
            snapshot = obs.REGISTRY.snapshot(run_collectors=False)
        else:
            snapshot = None
        out_queue.put((index, state, snapshot, None))
    except BaseException:
        out_queue.put((index, None, None, traceback.format_exc()))
    finally:
        if segment is not None:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _put_with_liveness(q, item, process) -> None:
    """Blocking put that notices a dead worker instead of hanging."""
    while True:
        try:
            q.put(item, timeout=5.0)
            return
        except queue_module.Full:
            if not process.is_alive():
                raise RuntimeError(
                    f"shard worker {process.name} died (exit {process.exitcode})"
                ) from None


def _collect_results(processes, out_queue, workers):
    """Drain one ``(index, state, snapshot, error)`` result per worker,
    noticing workers that die without reporting."""
    states: list = [None] * workers
    snapshots: list = [None] * workers
    pending = set(range(workers))
    while pending:
        try:
            index, state, snapshot, error = out_queue.get(timeout=1.0)
        except queue_module.Empty:
            for index in list(pending):
                process = processes[index]
                if not process.is_alive() and process.exitcode != 0:
                    raise RuntimeError(
                        f"shard worker {index} died "
                        f"(exit {process.exitcode}) without a result"
                    )
            continue
        if error is not None:
            raise RuntimeError(f"shard worker {index} failed:\n{error}")
        states[index] = state
        snapshots[index] = snapshot
        pending.discard(index)
    return states, snapshots


def _merge_results(states, snapshots, workers) -> PartialState:
    # merge in shard-index order: deterministic regardless of which
    # worker finished first
    _M_WORKERS.set(workers)
    with obs.span(_M_MERGE):
        merged = states[0]
        for state in states[1:]:
            merged.merge(state)
    for snapshot in snapshots:
        if snapshot is not None:
            obs.REGISTRY.merge_snapshot(snapshot)
    return merged


def run_sharded(
    stream: Iterable,
    config: AnalysisConfig,
    workers: int,
    batch_size: Optional[int] = None,
    start_method: Optional[str] = None,
) -> PartialState:
    """Run the per-packet phase sharded by source across ``workers``
    processes and return the merged :class:`PartialState`.

    With ``config.fast_lane`` (the default) packets travel over the
    shared-memory ring transport and workers run the batch fast lane;
    the rich path — and any host without usable shared memory — uses
    the original compact-tuple queues.  Both produce identical merged
    states (tests/test_lane_equivalence.py).
    """
    workers = max(1, int(workers))
    if getattr(config, "fast_lane", True) and _shared_memory is not None:
        rings = None
        try:
            rings = [_ShardRing() for _ in range(workers)]
        except (OSError, ValueError):
            rings = None
        if rings is not None:
            return _run_sharded_shm(
                stream, config, workers, batch_size, start_method, rings
            )
    return _run_sharded_queues(stream, config, workers, batch_size, start_method)


def _run_sharded_queues(
    stream: Iterable,
    config: AnalysisConfig,
    workers: int,
    batch_size: Optional[int] = None,
    start_method: Optional[str] = None,
) -> PartialState:
    """Compact-tuple transport (rich classifier in the workers)."""
    batch = int(batch_size or DEFAULT_BATCH)
    ctx = multiprocessing.get_context(start_method or _default_start_method())
    in_queues = [ctx.Queue(maxsize=QUEUE_DEPTH) for _ in range(workers)]
    out_queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_shard_worker,
            args=(index, config, in_queues[index], out_queue, obs.enabled()),
            name=f"quicsand-shard-{index}",
            daemon=True,
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    try:
        buffers: list = [[] for _ in range(workers)]
        encode = encode_packet
        for packet in stream:
            shard = ((packet.ip.src * _GOLDEN) & 0xFFFFFFFF) % workers
            buffer = buffers[shard]
            buffer.append(encode(packet))
            if len(buffer) >= batch:
                _put_with_liveness(in_queues[shard], buffer, processes[shard])
                buffers[shard] = []
        for shard, buffer in enumerate(buffers):
            if buffer:
                _put_with_liveness(in_queues[shard], buffer, processes[shard])
            _put_with_liveness(in_queues[shard], None, processes[shard])
        states, snapshots = _collect_results(processes, out_queue, workers)
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
    return _merge_results(states, snapshots, workers)


def _run_sharded_shm(
    stream: Iterable,
    config: AnalysisConfig,
    workers: int,
    batch_size: Optional[int],
    start_method: Optional[str],
    rings: list,
) -> PartialState:
    """Shared-memory ring transport (batch fast lane in the workers)."""
    batch = int(batch_size or DEFAULT_BATCH)
    ctx = multiprocessing.get_context(start_method or _default_start_method())
    in_queues = [ctx.Queue(maxsize=RING_SLOTS + 1) for _ in range(workers)]
    ack_queues = [ctx.Queue() for _ in range(workers)]
    out_queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_shm_shard_worker,
            args=(
                index,
                config,
                rings[index].shm.name,
                rings[index].slot_size,
                in_queues[index],
                ack_queues[index],
                out_queue,
                obs.enabled(),
            ),
            name=f"quicsand-shard-{index}",
            daemon=True,
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    try:
        buffers = [bytearray() for _ in range(workers)]
        counts = [0] * workers
        dissect = config.dissect_payloads
        pack = _SHM_RECORD.pack

        def flush(shard: int) -> None:
            ring = rings[shard]
            slot = _acquire_slot(ring, ack_queues[shard], processes[shard])
            data = buffers[shard]
            base = slot * ring.slot_size
            ring.shm.buf[base : base + len(data)] = data
            _put_with_liveness(
                in_queues[shard], (slot, counts[shard]), processes[shard]
            )
            buffers[shard] = bytearray()
            counts[shard] = 0

        for packet in stream:
            shard = ((packet.ip.src * _GOLDEN) & 0xFFFFFFFF) % workers
            transport = packet.transport
            transport_type = type(transport)
            ship = False
            f3 = 0
            if transport_type is UdpHeader:
                kind = _KIND_UDP
                f1 = transport.src_port
                f2 = transport.dst_port
                ship = dissect and (f1 == 443) != (f2 == 443)
            elif transport_type is TcpHeader:
                kind = _KIND_TCP
                f1 = transport.src_port
                f2 = transport.dst_port
                f3 = int(transport.flags) & 0xFFFF
            elif transport_type is IcmpHeader:
                kind = _KIND_ICMP
                f1 = int(transport.icmp_type) & 0xFFFF
                f2 = int(transport.code) & 0xFFFF
            else:
                kind = 0
                f1 = f2 = 0
            payload = packet.payload
            ip = packet.ip
            buffer = buffers[shard]
            buffer += pack(
                packet.timestamp,
                ip.src,
                ip.dst,
                ip.total_length & 0xFFFF,
                ip.proto & 0xFF,
                kind | _PAYLOAD_FLAG if ship else kind,
                f1,
                f2,
                f3,
                len(payload),
            )
            if ship:
                buffer += payload
            counts[shard] += 1
            if counts[shard] >= batch or len(buffer) >= _FLUSH_WATERMARK:
                flush(shard)
        for shard in range(workers):
            if counts[shard]:
                flush(shard)
            _put_with_liveness(in_queues[shard], None, processes[shard])
        states, snapshots = _collect_results(processes, out_queue, workers)
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        for ring in rings:
            ring.close_and_unlink()
    return _merge_results(states, snapshots, workers)
