"""Source-sharded parallel execution of the per-packet phase.

The streaming phase of :class:`~repro.core.pipeline.QuicsandPipeline`
(classify → dissect → sessionize → hourly counters → timeout-sweep
observation) keeps all of its state either per source IP or as a plain
sum.  Hash-partitioning the packet stream by source therefore loses
nothing: every sessionizer decision, sweep gap and research-candidate
count depends only on one source's time-ordered substream, which a
shard sees in full and in order.  Merging the shard partials
(:meth:`~repro.core.pipeline.PartialState.merge`) then reproduces the
serial state exactly, and the once-per-capture finalization runs on the
merged result — a serial and a parallel run yield identical
:class:`~repro.core.pipeline.PipelineResult`\\ s for the same input.

Mechanically, the parent reads the stream, routes each packet to its
shard buffer (:func:`shard_of`), and ships filled buffers to worker
processes as compact tuples (:func:`encode_packet`) over bounded
queues; each worker rebuilds :class:`~repro.net.packet.CapturedPacket`
records and feeds its own :class:`PartialState`.  Time order holds
within each source's substream because a source maps to exactly one
shard and buffers preserve arrival order.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Iterable, Optional

from repro import obs
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader
from repro.core.classify import TrafficClassifier
from repro.core.pipeline import AnalysisConfig, PartialState

# Worker processes publish into their own (reset-after-fork) registry
# and ship one snapshot back with their partial state; the parent
# merges each snapshot exactly once, in shard-index order, so parallel
# metric totals equal serial totals (tests/test_obs_parallel.py).
_M_SHARD_PACKETS = obs.counter(
    "repro_parallel_shard_packets_total",
    "packets consumed per shard worker",
    labels=("worker",),
)
_M_SHARD_BATCHES = obs.counter(
    "repro_parallel_shard_batches_total",
    "IPC batches consumed per shard worker",
    labels=("worker",),
)
_M_WORKERS = obs.gauge(
    "repro_parallel_workers",
    "worker processes of the most recent sharded run",
)
_M_MERGE = obs.histogram(
    "repro_parallel_merge_seconds",
    "wall seconds merging all shard partial states",
)

DEFAULT_BATCH = 512
#: per-worker input queue depth, in batches — bounds parent-side memory
#: and applies backpressure when a shard falls behind.
QUEUE_DEPTH = 16

_GOLDEN = 0x9E3779B1  # Fibonacci-hash multiplier: mixes clustered IPs


def shard_of(source: int, workers: int) -> int:
    """Map a source IP to its shard (stable hash partition)."""
    return ((source * _GOLDEN) & 0xFFFFFFFF) % workers


# -- compact packet IPC ----------------------------------------------------
#
# Pickling CapturedPacket's nested header dataclasses per packet would
# dominate the parent's feed loop, so packets cross the process
# boundary as flat tuples of primitives carrying exactly the fields the
# per-packet phase reads (timestamps, addresses, ports/flags, payload,
# wire length).  Unread header fields (checksums, TTL, seq/ack) are not
# shipped; no analysis output depends on them.

_UDP, _TCP, _ICMP = 1, 2, 3


def encode_packet(packet: CapturedPacket) -> tuple:
    """Flatten a packet into a cheap-to-pickle tuple."""
    transport = packet.transport
    kind = type(transport)
    if kind is UdpHeader:
        wire = (_UDP, transport.src_port, transport.dst_port)
    elif kind is TcpHeader:
        wire = (_TCP, transport.src_port, transport.dst_port, int(transport.flags))
    elif kind is IcmpHeader:
        wire = (_ICMP, transport.icmp_type, transport.code)
    else:
        wire = None
    ip = packet.ip
    return (
        packet.timestamp,
        ip.src,
        ip.dst,
        ip.proto,
        ip.total_length,
        wire,
        packet.payload,
    )


def decode_packet(record: tuple) -> CapturedPacket:
    """Rebuild a :class:`CapturedPacket` from :func:`encode_packet` output."""
    timestamp, src, dst, proto, total_length, wire, payload = record
    if wire is None:
        transport = None
    elif wire[0] == _UDP:
        transport = UdpHeader(wire[1], wire[2])
    elif wire[0] == _TCP:
        transport = TcpHeader(wire[1], wire[2], 0, 0, wire[3])
    else:
        transport = IcmpHeader(wire[1], wire[2])
    return CapturedPacket(
        timestamp, IPv4Header(src, dst, proto, total_length), transport, payload
    )


# -- worker process --------------------------------------------------------


def _shard_worker(index, config, in_queue, out_queue, metrics_enabled=False) -> None:
    """Consume encoded batches until the ``None`` sentinel, then ship
    the flushed partial state (plus a metrics snapshot) to the parent.

    The fork start method copies the parent's registry values into the
    child, so the first thing a worker does is reset its registry —
    the snapshot it ships then carries only this worker's deltas and
    the parent's merge is exactly-once by construction.
    """
    try:
        obs.REGISTRY.reset()
        obs.set_enabled(metrics_enabled)
        classifier = TrafficClassifier(dissect_payloads=config.dissect_payloads)
        state = PartialState.initial(config)
        decode = decode_packet
        batches = 0
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            batches += 1
            state.consume([decode(record) for record in batch], classifier)
        state.record_classifier(classifier)
        state.close()
        if obs.enabled():
            _M_SHARD_PACKETS.inc(state.total_packets, worker=str(index))
            _M_SHARD_BATCHES.inc(batches, worker=str(index))
            snapshot = obs.REGISTRY.snapshot(run_collectors=False)
        else:
            snapshot = None
        out_queue.put((index, state, snapshot, None))
    except BaseException:
        out_queue.put((index, None, None, traceback.format_exc()))


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _put_with_liveness(q, item, process) -> None:
    """Blocking put that notices a dead worker instead of hanging."""
    while True:
        try:
            q.put(item, timeout=5.0)
            return
        except queue_module.Full:
            if not process.is_alive():
                raise RuntimeError(
                    f"shard worker {process.name} died (exit {process.exitcode})"
                ) from None


def run_sharded(
    stream: Iterable,
    config: AnalysisConfig,
    workers: int,
    batch_size: Optional[int] = None,
    start_method: Optional[str] = None,
) -> PartialState:
    """Run the per-packet phase sharded by source across ``workers``
    processes and return the merged :class:`PartialState`."""
    workers = max(1, int(workers))
    batch = int(batch_size or DEFAULT_BATCH)
    ctx = multiprocessing.get_context(start_method or _default_start_method())
    in_queues = [ctx.Queue(maxsize=QUEUE_DEPTH) for _ in range(workers)]
    out_queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_shard_worker,
            args=(index, config, in_queues[index], out_queue, obs.enabled()),
            name=f"quicsand-shard-{index}",
            daemon=True,
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    try:
        buffers: list = [[] for _ in range(workers)]
        encode = encode_packet
        for packet in stream:
            shard = ((packet.ip.src * _GOLDEN) & 0xFFFFFFFF) % workers
            buffer = buffers[shard]
            buffer.append(encode(packet))
            if len(buffer) >= batch:
                _put_with_liveness(in_queues[shard], buffer, processes[shard])
                buffers[shard] = []
        for shard, buffer in enumerate(buffers):
            if buffer:
                _put_with_liveness(in_queues[shard], buffer, processes[shard])
            _put_with_liveness(in_queues[shard], None, processes[shard])
        states: list = [None] * workers
        snapshots: list = [None] * workers
        pending = set(range(workers))
        while pending:
            try:
                index, state, snapshot, error = out_queue.get(timeout=1.0)
            except queue_module.Empty:
                for index in list(pending):
                    process = processes[index]
                    if not process.is_alive() and process.exitcode != 0:
                        raise RuntimeError(
                            f"shard worker {index} died "
                            f"(exit {process.exitcode}) without a result"
                        )
                continue
            if error is not None:
                raise RuntimeError(f"shard worker {index} failed:\n{error}")
            states[index] = state
            snapshots[index] = snapshot
            pending.discard(index)
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
    # merge in shard-index order: deterministic regardless of which
    # worker finished first
    _M_WORKERS.set(workers)
    with obs.span(_M_MERGE):
        merged = states[0]
        for state in states[1:]:
            merged.merge(state)
    for snapshot in snapshots:
        if snapshot is not None:
            obs.REGISTRY.merge_snapshot(snapshot)
    return merged
