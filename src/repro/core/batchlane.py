"""Columnar batch fast lane for the per-packet analyze phase.

The rich path (:class:`~repro.core.classify.TrafficClassifier` +
:class:`~repro.core.dissect.QuicDissector`) builds a
:class:`~repro.core.classify.ClassifiedPacket` and a full
:class:`~repro.core.dissect.Dissection` object graph per packet.  At
telescope scale (the paper analyzes 92M packets/month) that object
traffic is the throughput ceiling, so this module takes the DPDK
burst-processing idea: parse whole batches with plain integer/bytes
operations and touch the rich dissector only for the minority of
payloads it cannot settle.

The unit of work is a :data:`LaneEntry` — a flat tuple holding exactly
the dissection facts the per-packet phase consumes downstream
(validity, malformed-reason slug, the per-session delta, the response
backscatter flags, and the first packet's version/DCID).  Entries are
pure in the payload bytes, so :class:`BatchLane` memoizes them in the
same two-generation payload-keyed cache the rich dissector uses; scan
templates repeat thousands of times, and a memo hit costs one dict
lookup instead of any parsing at all.

On a memo miss :func:`fast_entry` walks the datagram with the exact
validation order of :func:`repro.quic.header.parse_header` /
:func:`repro.quic.packet.split_datagram` /
``QuicDissector._dissect_gquic`` — form/fixed bits, CID bounds, the
version-negotiation and retry shapes, token/length varints, the
RFC 9001 minima — but never materializes header views and never
decrypts Initials (the decrypt-derived fields ``has_plain_client_hello``
/ ``client_hello_sni`` / ``decrypted`` are not consumed outside the
dissector, so skipping the key schedule cannot change any result).
Anything the walk cannot prove valid falls back to
:meth:`QuicDissector.dissect_once`, whose :class:`Dissection` is folded
into the same entry shape — the never-raise contract and all 13
``MalformedReason`` slugs are therefore preserved with identical
tallies by construction.  ``tests/test_batchlane.py`` pins the
fast-vs-rich entry equality per payload and
``tests/test_lane_equivalence.py`` pins bit-identical
``PipelineResult``\\ s end to end.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.classify import PacketClass
from repro.core.dissect import (
    MIN_GQUIC_LEN,
    MIN_SHORT_HEADER_LEN,
    Dissection,
    QuicDissector,
    _LONG_HEADER_TYPES,
)
from repro.quic.header import PacketType
from repro.quic.versions import version_by_value

# Lane-owned metric families (docs/METRICS.md).  Registered on import —
# repro.core.pipeline imports this module, which keeps the registry and
# docs in sync via tests/test_docs_metrics_sync.py.
_M_FAST = obs.counter(
    "repro_batchlane_fast_total",
    "payload memo misses settled entirely by the columnar fast parser "
    "(trivial rejects included; no rich dissector involved)",
)
_M_FALLBACK = obs.counter(
    "repro_batchlane_fallback_total",
    "payload memo misses handed to the rich dissector, per reason",
    labels=("reason",),
)

#: why a memo miss left the fast parser:
#: ``parse`` — the walk could not prove the payload valid (the rich
#: dissector assigns the authoritative malformed slug or accepts it);
#: ``error`` — the fast parser raised (defensive mirror of the rich
#: path's never-raise boundary).
FALLBACK_REASONS = ("parse", "error")

# LaneEntry tuple indexes (kept a plain tuple: entries are created and
# cached millions of times, and tuples pickle/compare cheapest).
E_VALID = 0  # bool: dissector would accept the payload as QUIC
E_REASON = 1  # malformed slug (str) when invalid, else None
E_DELTA = 2  # session delta (below) when valid+dissected, else None
E_RETRY = 3  # bool: Dissection.has_retry
E_LONG = 4  # bool: Dissection.has_long_header
E_EMPTY_DCID = 5  # bool: Dissection.all_dcids_empty
E_VERSION = 6  # first packet's wire version (int) or None
E_DCID = 7  # first packet's DCID bytes, or None when invalid

#: the session delta at E_DELTA mirrors what
#: :meth:`repro.core.sessions.Session.add` extracts from a valid
#: dissection, with dict insertion order preserved:
#: ``(message_type_counts, scids, version_name_counts, retry_packets)``
#: where the two counts are ``((name, count), ...)`` in first-occurrence
#: order and ``scids`` holds the non-empty SCIDs in packet order.

_EMPTY_ENTRY = (False, "empty", None, False, False, False, None, None)
_NO_FIXED_BIT_ENTRY = (
    False, "no-fixed-bit", None, False, False, False, None, None,
)

_LONG_TYPE_NAMES = {0: "initial", 1: "zero-rtt", 2: "handshake"}
#: varint value mask per encoded length (the 2 prefix bits cleared).
_VMASK = {1: 0x3F, 2: 0x3FFF, 4: 0x3FFFFFFF, 8: 0x3FFFFFFFFFFFFFFF}

_TYPE_NAME = {
    packet_type: packet_type.name.lower().replace("_", "-")
    for packet_type in PacketType
}


def fast_entry(payload: bytes) -> Optional[tuple]:
    """Parse one UDP payload into a :data:`LaneEntry` without objects.

    Returns ``None`` when the payload needs the rich dissector — every
    reject beyond the two trivial first-byte cases, so the malformed
    taxonomy is always assigned by the authoritative parser.  Mirrors
    the validation order of ``parse_header``/``split_datagram`` and the
    gQUIC public-header check exactly; Initial decryption is skipped
    (header-only facts feed every downstream consumer).
    """
    n = len(payload)
    if not n:
        return _EMPTY_ENTRY
    first = payload[0]
    if not first & 0xC0:
        # neither form bit nor fixed bit: legacy gQUIC or trivial reject
        # (the dissector's cheap pre-check, same order).
        if n >= MIN_GQUIC_LEN and first & 0x01 and first & 0x08:
            tag = payload[9:13]
            if tag[0:1] == b"Q" and tag[1:].isdigit():
                version_value = int.from_bytes(tag, "big")
                known = version_by_value(version_value)
                name = known.name if known else f"gQUIC-{tag.decode()}"
                delta = ((("gquic", 1),), (), ((name, 1),), 0)
                return (
                    True, None, delta, False, False, False,
                    version_value, payload[1:9],
                )
        return _NO_FIXED_BIT_ENTRY

    # IETF coalesced walk (split_datagram order, headers inlined).
    names: list = []
    scids: list = []
    vnames: list = []
    retries = 0
    longs = 0
    dcids_empty = True
    first_set = False
    first_version: Optional[int] = None
    first_dcid = b""
    offset = 0
    while offset < n:
        first = payload[offset]
        if not first & 0x80:
            if not first & 0x40:
                return None  # no-fixed-bit (coalesced position)
            if n - offset < MIN_SHORT_HEADER_LEN:
                return None  # short-too-short
            names.append("one-rtt")
            if not first_set:
                first_set = True  # version None, dcid b"" (defaults)
            offset = n  # short header consumes the rest
            continue
        if n - offset < 7:
            return None  # truncated-header
        version = int.from_bytes(payload[offset + 1 : offset + 5], "big")
        pos = offset + 5
        cid_len = payload[pos]  # n-offset >= 7 guarantees this byte
        pos += 1
        if cid_len > 20 or pos + cid_len > n:
            return None  # bad-connection-id
        dcid = payload[pos : pos + cid_len]
        pos += cid_len
        if pos >= n:
            return None  # bad-connection-id (SCID length byte missing)
        cid_len = payload[pos]
        pos += 1
        if cid_len > 20 or pos + cid_len > n:
            return None  # bad-connection-id
        scid = payload[pos : pos + cid_len]
        pos += cid_len
        if version == 0:
            rest = n - pos
            if not rest or rest % 4:
                return None  # bad-version-negotiation
            names.append("version-negotiation")
            if scid:
                scids.append(scid)
            if not first_set:
                first_set = True
                first_dcid = dcid  # version stays None
            offset = n  # VN consumes the rest
            continue
        if not first & 0x40:
            return None  # no-fixed-bit (long header)
        ptype = (first >> 4) & 0x03
        if ptype == 3:  # RETRY: token + 16-byte integrity tag
            if n - pos < 16:
                return None  # truncated-payload
            known = version_by_value(version)
            names.append("retry")
            retries += 1
            if scid:
                scids.append(scid)
            if known is not None:
                vnames.append(known.name)
            if not first_set:
                first_set = True
                first_version = version
                first_dcid = dcid
            offset = n  # retry consumes the rest
            continue
        if ptype == 0:  # INITIAL: token varint precedes the length
            if pos >= n:
                return None  # bad-varint
            byte = payload[pos]
            vlen = 1 << (byte >> 6)
            vend = pos + vlen
            if vend > n:
                return None  # bad-varint
            token_len = int.from_bytes(payload[pos:vend], "big") & _VMASK[vlen]
            pos = vend
            if pos + token_len > n:
                return None  # truncated-payload
            pos += token_len
        if pos >= n:
            return None  # bad-varint
        byte = payload[pos]
        vlen = 1 << (byte >> 6)
        vend = pos + vlen
        if vend > n:
            return None  # bad-varint
        length = int.from_bytes(payload[pos:vend], "big") & _VMASK[vlen]
        pos = vend
        end = pos + length
        if end > n:
            return None  # truncated-payload
        if length < 4:
            return None  # payload-too-short (RFC 9001 §5.4.2)
        known = version_by_value(version)
        names.append(_LONG_TYPE_NAMES[ptype])
        if scid:
            scids.append(scid)
        if known is not None:
            vnames.append(known.name)
        longs += 1
        if dcid:
            dcids_empty = False
        if not first_set:
            first_set = True
            first_version = version
            first_dcid = dcid
        offset = end

    type_counts: dict = {}
    for name in names:
        type_counts[name] = type_counts.get(name, 0) + 1
    version_counts: dict = {}
    for name in vnames:
        version_counts[name] = version_counts.get(name, 0) + 1
    delta = (
        tuple(type_counts.items()),
        tuple(scids),
        tuple(version_counts.items()),
        retries,
    )
    return (
        True,
        None,
        delta,
        retries > 0,
        longs > 0,
        longs > 0 and dcids_empty,
        first_version,
        first_dcid,
    )


def entry_from_dissection(dissection: Dissection) -> tuple:
    """Fold a rich :class:`Dissection` into the :data:`LaneEntry` shape.

    The fallback path: whatever the fast parser could not settle goes
    through the authoritative dissector and lands in the same columnar
    representation, so downstream consumers never see which path ran.
    """
    if not dissection.valid:
        reason = (
            dissection.reason.value
            if dissection.reason is not None
            else "malformed"
        )
        return (False, reason, None, False, False, False, None, None)
    names: list = []
    scids: list = []
    vnames: list = []
    retries = 0
    longs = 0
    dcids_empty = True
    for packet in dissection.packets:
        packet_type = packet.packet_type
        names.append(_TYPE_NAME[packet_type])
        if packet_type is PacketType.RETRY:
            retries += 1
        if packet.scid:
            scids.append(packet.scid)
        if packet.version_name:
            vnames.append(packet.version_name)
        if packet_type in _LONG_HEADER_TYPES:
            longs += 1
            if packet.dcid:
                dcids_empty = False
    type_counts: dict = {}
    for name in names:
        type_counts[name] = type_counts.get(name, 0) + 1
    version_counts: dict = {}
    for name in vnames:
        version_counts[name] = version_counts.get(name, 0) + 1
    delta = (
        tuple(type_counts.items()),
        tuple(scids),
        tuple(version_counts.items()),
        retries,
    )
    head = dissection.packets[0] if dissection.packets else None
    return (
        True,
        None,
        delta,
        retries > 0,
        longs > 0,
        longs > 0 and dcids_empty,
        head.version if head is not None else None,
        head.dcid if head is not None else b"",
    )


class BatchLane:
    """The analyze phase's columnar classifier/dissector.

    Duck-types the surface :meth:`PartialState.record_classifier`
    consumes from :class:`TrafficClassifier` — ``counters`` keyed by
    :class:`PacketClass`, ``cache_hits``/``cache_misses`` — so the lane
    slots into the serial, parallel-worker and streaming paths without
    any pipeline-side special cases.  One instance per stream/shard,
    folded exactly once at stream end.
    """

    def __init__(
        self, dissect_payloads: bool = True, cache_size: int = 4096
    ) -> None:
        self.dissect_payloads = dissect_payloads
        self._dissector = QuicDissector()
        self._cache: dict[bytes, tuple] = {}
        self._old_cache: dict[bytes, tuple] = {}
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        #: memo misses the fast parser settled without the dissector.
        self.fast_parses = 0
        #: memo misses per fallback reason (see :data:`FALLBACK_REASONS`).
        self.fallbacks: dict[str, int] = {}
        self.counters = {packet_class: 0 for packet_class in PacketClass}

    def entry_for(self, payload: bytes) -> tuple:
        """The :data:`LaneEntry` for one payload (memoized)."""
        entry = self._cache.get(payload)
        if entry is None:
            entry = self._old_cache.get(payload)
            if entry is None:
                self.cache_misses += 1
                entry = self._entry_uncached(payload)
            else:
                self.cache_hits += 1
            # two-generation insert/promote, same policy as the rich
            # dissector's memo: demote the young generation when full.
            if len(self._cache) >= self._cache_size:
                self._old_cache = self._cache
                self._cache = {}
            self._cache[payload] = entry
        else:
            self.cache_hits += 1
        return entry

    def _entry_uncached(self, payload: bytes) -> tuple:
        try:
            entry = fast_entry(payload)
        except Exception:  # noqa: BLE001 - mirror the never-raise contract
            entry = None
            reason = "error"
        else:
            reason = "parse"
        if entry is not None:
            self.fast_parses += 1
            return entry
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        return entry_from_dissection(self._dissector.dissect_once(payload))

    def publish_lane_metrics(self) -> None:
        """Publish the fast/fallback split to the registry.

        Invoked (via duck-typed hook) from
        :meth:`PartialState.record_classifier` — the exactly-once fold
        point every path already funnels through, so parallel snapshots
        merge without double counting.
        """
        if self.fast_parses:
            _M_FAST.inc(self.fast_parses)
        for reason, count in self.fallbacks.items():
            if count:
                _M_FALLBACK.inc(count, reason=reason)
