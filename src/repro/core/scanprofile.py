"""Scanner behaviour profiling (the reconnaissance half of the paper).

Section 5.1 separates the QUIC scanning ecosystem into periodic
full-IPv4 research sweeps (TUM, RWTH — "each Internet-wide,
single-packet scan sends 2^23 packets to the telescope") and
non-benign bot scans.  This module quantifies what distinguishes them,
in the style of Richter & Berger's "Scanning the Scanners":

- **coverage** — fraction of distinct telescope addresses a source hit;
  a full sweep approaches 1.0 (per sweep), a bot probing random
  addresses stays near zero;
- **sweep detection** — inter-probe silence splits a source's activity
  into sweeps; their count, size and spacing expose periodicity;
- **port discipline** — research tooling reuses narrow source-port
  ranges; bots use ephemeral ports per session.

The profiler is given the set of sources to track (the pipeline's
heavy hitters), so memory stays bounded no matter the capture size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.net.addresses import IPv4Network
from repro.net.packet import CapturedPacket
from repro.util.stats import median


@dataclass
class ScanProfile:
    """Aggregated behaviour of one scanning source."""

    source: int
    packet_count: int = 0
    first_ts: float = 0.0
    last_ts: float = 0.0
    unique_dsts: set = field(default_factory=set)
    src_ports: set = field(default_factory=set)
    sweep_boundaries: list = field(default_factory=list)
    #: seconds of *active* scanning (inter-sweep silences excluded).
    active_seconds: float = 0.0
    _last_packet_ts: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.last_ts - self.first_ts

    def coverage(self, telescope: IPv4Network) -> float:
        """Distinct telescope addresses hit / telescope size."""
        return len(self.unique_dsts) / telescope.size

    @property
    def sweep_count(self) -> int:
        return len(self.sweep_boundaries) + 1 if self.packet_count else 0

    def sweep_interval(self) -> Optional[float]:
        """Median spacing between sweep starts (None below 2 sweeps)."""
        if len(self.sweep_boundaries) < 1:
            return None
        starts = [self.first_ts] + [start for _end, start in self.sweep_boundaries]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        return median(gaps) if gaps else None

    @property
    def mean_rate(self) -> float:
        if self.duration <= 0:
            return float(self.packet_count)
        return self.packet_count / self.duration

    @property
    def active_rate(self) -> float:
        """Probe rate while actually scanning — the per-sweep rate for
        periodic scanners, regardless of how long they sleep between
        sweeps."""
        if self.active_seconds <= 0:
            return float(self.packet_count)
        return self.packet_count / self.active_seconds


@dataclass
class ScanClassification:
    """Verdict for one source."""

    source: int
    profile: ScanProfile
    is_research_sweep: bool
    reasons: list


class ScanProfiler:
    """Builds :class:`ScanProfile` objects for selected sources."""

    def __init__(
        self,
        sources: Iterable[int],
        telescope: IPv4Network,
        sweep_gap: float = 3600.0,
    ) -> None:
        self.telescope = telescope
        self.sweep_gap = sweep_gap
        self._profiles = {source: ScanProfile(source=source) for source in sources}

    def observe(self, packet: CapturedPacket) -> None:
        profile = self._profiles.get(packet.src)
        if profile is None:
            return
        if profile.packet_count == 0:
            profile.first_ts = packet.timestamp
        elif profile._last_packet_ts is not None:
            gap = packet.timestamp - profile._last_packet_ts
            if gap > self.sweep_gap:
                profile.sweep_boundaries.append(
                    (profile._last_packet_ts, packet.timestamp)
                )
            else:
                profile.active_seconds += gap
        profile.last_ts = packet.timestamp
        profile._last_packet_ts = packet.timestamp
        profile.packet_count += 1
        profile.unique_dsts.add(packet.dst)
        if packet.src_port is not None:
            profile.src_ports.add(packet.src_port)

    def profile(self, source: int) -> Optional[ScanProfile]:
        return self._profiles.get(source)

    def profiles(self) -> list:
        return [p for p in self._profiles.values() if p.packet_count]

    def classify(
        self,
        source: int,
        min_coverage_per_sweep: float = 0.5,
        min_rate: float = 0.5,
    ) -> Optional[ScanClassification]:
        """Heuristic research-sweep verdict with human-readable reasons.

        A research sweep covers a large share of the telescope per
        sweep at a sustained rate; bots hit a few random addresses in
        short bursts.  ``min_coverage_per_sweep`` applies to the
        *sampled* address set when sweeps are subsampled — callers
        rescale by the known sampling weight.
        """
        profile = self._profiles.get(source)
        if profile is None or not profile.packet_count:
            return None
        reasons = []
        per_sweep_targets = len(profile.unique_dsts) / max(1, profile.sweep_count)
        coverage = per_sweep_targets / self.telescope.size
        wide = coverage >= min_coverage_per_sweep
        reasons.append(
            f"per-sweep coverage {coverage:.2%} "
            f"({'≥' if wide else '<'} {min_coverage_per_sweep:.0%})"
        )
        sustained = profile.active_rate >= min_rate
        reasons.append(
            f"active rate {profile.active_rate:.2f} pps "
            f"({'≥' if sustained else '<'} {min_rate})"
        )
        interval = profile.sweep_interval()
        if interval is not None:
            reasons.append(f"periodic: {profile.sweep_count} sweeps every {interval / 3600:.1f} h")
        return ScanClassification(
            source=source,
            profile=profile,
            is_research_sweep=wide and sustained,
            reasons=reasons,
        )
