"""Session aggregation: from packets to events (Section 5.1).

Packets from one source belong to the same session while the gap
between consecutive packets stays below an inactivity *timeout*.
Figure 4 sweeps the timeout from 1 to 60 minutes and picks the 5-minute
knee; :class:`TimeoutSweep` reproduces that analysis from recorded
inter-packet gaps without re-running the sessionizer per timeout.

Sessions accumulate exactly the summary statistics the downstream
stages need (Moore-threshold fields, SCID/port/address sets for
Figure 9, message-type tallies for Section 6) so the pipeline never
stores raw packets.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.quic.header import PacketType
from repro.util.timeutil import MINUTE
from repro.core.classify import ClassifiedPacket

#: The paper's chosen inactivity timeout (the Figure 4 knee).
DEFAULT_TIMEOUT = 5 * MINUTE


@dataclass
class Session:
    """One per-source traffic session."""

    source: int
    traffic_class: str
    first_ts: float
    last_ts: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    dst_ips: set = field(default_factory=set)
    dst_ports: set = field(default_factory=set)
    scids: set = field(default_factory=set)
    message_types: dict = field(default_factory=dict)
    minute_slots: dict = field(default_factory=dict)
    retry_packets: int = 0
    version_names: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.last_ts - self.first_ts

    @property
    def max_pps(self) -> float:
        """Maximum packet rate over the session's 1-minute slots."""
        if not self.minute_slots:
            return 0.0
        return max(self.minute_slots.values()) / MINUTE

    def add(self, classified: ClassifiedPacket) -> None:
        packet = classified.packet
        self.last_ts = packet.timestamp
        self.packet_count += 1
        self.byte_count += packet.wire_length
        self.dst_ips.add(packet.dst)
        if packet.dst_port is not None:
            self.dst_ports.add(packet.dst_port)
        slot = int(packet.timestamp // MINUTE)
        self.minute_slots[slot] = self.minute_slots.get(slot, 0) + 1
        dissection = classified.dissection
        if dissection is not None and dissection.valid:
            for summary in dissection.packets:
                name = _type_name(summary.packet_type)
                self.message_types[name] = self.message_types.get(name, 0) + 1
                if summary.packet_type is PacketType.RETRY:
                    self.retry_packets += 1
                if summary.scid:
                    self.scids.add(summary.scid)
                if summary.version_name:
                    self.version_names[summary.version_name] = (
                        self.version_names.get(summary.version_name, 0) + 1
                    )

    def apply_entry(
        self,
        timestamp: float,
        dst: int,
        dst_port: Optional[int],
        wire_length: int,
        delta: Optional[tuple],
    ) -> None:
        """Scalar-field twin of :meth:`add` for the batch fast lane.

        ``delta`` is a precomputed per-datagram dissection summary —
        ``(message_type_counts, scids, version_name_counts,
        retry_packets)`` with counts as ``((name, n), ...)`` in
        first-occurrence order — so the resulting dicts and sets are
        identical (insertion order included) to feeding the packets
        through :meth:`add` one by one.
        """
        self.last_ts = timestamp
        self.packet_count += 1
        self.byte_count += wire_length
        self.dst_ips.add(dst)
        if dst_port is not None:
            self.dst_ports.add(dst_port)
        slot = int(timestamp // MINUTE)
        self.minute_slots[slot] = self.minute_slots.get(slot, 0) + 1
        if delta is not None:
            type_counts, scids, version_counts, retries = delta
            message_types = self.message_types
            for name, count in type_counts:
                message_types[name] = message_types.get(name, 0) + count
            self.retry_packets += retries
            if scids:
                self.scids.update(scids)
            version_names = self.version_names
            for name, count in version_counts:
                version_names[name] = version_names.get(name, 0) + count


def _type_name(packet_type: PacketType) -> str:
    return packet_type.name.lower().replace("_", "-")


def _sorted_difference(values: list, removals: list) -> list:
    """Multiset difference of two sorted lists in one linear pass.

    Every element of ``removals`` must be present in ``values``.
    """
    out: list = []
    start = 0
    for item in removals:
        stop = bisect.bisect_left(values, item, start)
        out.extend(values[start:stop])
        start = stop + 1
    out.extend(values[start:])
    return out


class Sessionizer:
    """Streaming per-source sessionizer for one traffic class.

    Feed time-ordered packets with :meth:`add`; closed sessions are
    handed to ``on_close`` (or collected in :attr:`closed`).  Call
    :meth:`flush` at end of stream.
    """

    def __init__(
        self,
        traffic_class: str,
        timeout: float = DEFAULT_TIMEOUT,
        on_close: Optional[Callable[[Session], None]] = None,
        record_gaps: bool = False,
        on_update: Optional[Callable[[Session], None]] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("session timeout must be positive")
        self.traffic_class = traffic_class
        self.timeout = timeout
        self.on_close = on_close
        #: invoked after every packet lands in a (still-open) session;
        #: the streaming monitor hooks its incremental flood detector
        #: here.  Must not mutate the session.
        self.on_update = on_update
        self.closed: list = []
        self._open: dict[int, Session] = {}
        self.record_gaps = record_gaps
        self.gaps: list = []
        self.source_count = 0
        self._seen_sources: set = set()

    def add(self, classified: ClassifiedPacket) -> None:
        packet = classified.packet
        source = packet.src
        session = self._open.get(source)
        if session is not None:
            gap = packet.timestamp - session.last_ts
            if self.record_gaps:
                self.gaps.append(gap)
            if gap > self.timeout:
                self._close(session)
                session = None
        if session is None:
            if source not in self._seen_sources:
                self._seen_sources.add(source)
                self.source_count += 1
            session = Session(
                source=source,
                traffic_class=self.traffic_class,
                first_ts=packet.timestamp,
                last_ts=packet.timestamp,
            )
            self._open[source] = session
        session.add(classified)
        if self.on_update is not None:
            self.on_update(session)

    def add_entry(
        self,
        source: int,
        timestamp: float,
        dst: int,
        dst_port: Optional[int],
        wire_length: int,
        delta: Optional[tuple],
    ) -> None:
        """Scalar-field twin of :meth:`add` (batch fast lane).

        Same gap/timeout/new-session logic; the packet lands via
        :meth:`Session.apply_entry` instead of a ``ClassifiedPacket``.
        """
        session = self._open.get(source)
        if session is not None:
            gap = timestamp - session.last_ts
            if self.record_gaps:
                self.gaps.append(gap)
            if gap > self.timeout:
                self._close(session)
                session = None
        if session is None:
            if source not in self._seen_sources:
                self._seen_sources.add(source)
                self.source_count += 1
            session = Session(
                source=source,
                traffic_class=self.traffic_class,
                first_ts=timestamp,
                last_ts=timestamp,
            )
            self._open[source] = session
        session.apply_entry(timestamp, dst, dst_port, wire_length, delta)
        if self.on_update is not None:
            self.on_update(session)

    def _close(self, session: Session) -> None:
        del self._open[session.source]
        if self.on_close is not None:
            self.on_close(session)
        else:
            self.closed.append(session)

    def flush(self) -> None:
        """Close every open session (end of measurement window)."""
        for session in list(self._open.values()):
            self._close(session)

    def expire(self, watermark: float) -> list:
        """Close sessions idle past the timeout at an event-time watermark.

        Streaming entry point.  On a time-ordered stream this closes
        exactly the sessions :meth:`add` would later close by its gap
        rule (or :meth:`flush` at EOF) with identical contents: a
        session only expires once ``watermark - last_ts > timeout``,
        and any later packet from the same source necessarily has
        ``timestamp >= watermark``, hence a gap above the timeout too.
        Returns the sessions closed by this call.
        """
        expired = [
            session
            for session in self._open.values()
            if watermark - session.last_ts > self.timeout
        ]
        for session in expired:
            self._close(session)
        return expired

    def open_sessions(self) -> list:
        """Snapshot of the currently open sessions."""
        return list(self._open.values())

    @property
    def open_count(self) -> int:
        return len(self._open)

    def evict_closed(self) -> int:
        """Bounded-memory entry point: drop closed-session records.

        Counters survive; the seen-source dedup set shrinks to the
        currently open sources, so a source returning after going fully
        idle is counted again — the documented approximation of the
        streaming monitor's bounded mode.  Returns the number of
        dropped sessions.
        """
        dropped = len(self.closed)
        self.closed.clear()
        self._seen_sources.intersection_update(self._open)
        return dropped

    def merge(self, other: "Sessionizer") -> None:
        """Fold a shard's sessionizer into this one.

        Shards partition packets by source, so the two sessionizers
        never saw the same source: open sessions and per-source state
        are disjoint and the merge is a plain union.  Callers that need
        a canonical session order sort ``closed`` afterwards (see
        :meth:`sort_closed`).
        """
        if other.traffic_class != self.traffic_class:
            raise ValueError(
                f"cannot merge {other.traffic_class!r} into {self.traffic_class!r}"
            )
        if other.timeout != self.timeout:
            raise ValueError("cannot merge sessionizers with different timeouts")
        overlap = self._seen_sources & other._seen_sources
        if overlap:
            raise ValueError(f"shards overlap on {len(overlap)} sources")
        self.closed.extend(other.closed)
        self._open.update(other._open)
        self.gaps.extend(other.gaps)
        self._seen_sources |= other._seen_sources
        self.source_count = len(self._seen_sources)

    def sort_closed(self) -> None:
        """Put closed sessions into canonical (first_ts, source) order.

        Within one source session starts strictly increase, so the key
        is total and the order is independent of how the stream was
        sharded — serial and merged parallel runs agree bit for bit.
        """
        self.closed.sort(key=lambda s: (s.first_ts, s.source))

    @property
    def session_count(self) -> int:
        return len(self.closed) + len(self._open)


def _clone_session(session: Session) -> Session:
    """A deep-enough copy for federated joining (fresh sets/dicts)."""
    return Session(
        source=session.source,
        traffic_class=session.traffic_class,
        first_ts=session.first_ts,
        last_ts=session.last_ts,
        packet_count=session.packet_count,
        byte_count=session.byte_count,
        dst_ips=set(session.dst_ips),
        dst_ports=set(session.dst_ports),
        scids=set(session.scids),
        message_types=dict(session.message_types),
        minute_slots=dict(session.minute_slots),
        retry_packets=session.retry_packets,
        version_names=dict(session.version_names),
    )


def _absorb_session(target: Session, other: Session) -> None:
    """Fold a later (or overlapping) fragment into ``target`` in place."""
    target.first_ts = min(target.first_ts, other.first_ts)
    target.last_ts = max(target.last_ts, other.last_ts)
    target.packet_count += other.packet_count
    target.byte_count += other.byte_count
    target.retry_packets += other.retry_packets
    target.dst_ips |= other.dst_ips
    target.dst_ports |= other.dst_ports
    target.scids |= other.scids
    for name, count in other.message_types.items():
        target.message_types[name] = target.message_types.get(name, 0) + count
    for slot, count in other.minute_slots.items():
        target.minute_slots[slot] = target.minute_slots.get(slot, 0) + count
    for name, count in other.version_names.items():
        target.version_names[name] = target.version_names.get(name, 0) + count


def chain_merge_sessions(sessions: Iterable[Session], timeout: float) -> list:
    """Re-join session fragments from destination-partitioned captures.

    Telescope *federation* partitions the stream by destination prefix,
    so — unlike source-IP sharding — the same source appears in several
    partitions and each vantage sees only a sub-sequence of its
    packets.  Every fragment still has internal gaps <= ``timeout``,
    which means no union-stream session boundary can fall strictly
    inside a fragment's ``[first_ts, last_ts]`` span: a boundary is a
    gap > ``timeout`` in the union, and any such gap is at least as
    large in every sub-sequence that brackets it.  Sorting a source's
    fragments by ``first_ts`` and joining whenever
    ``next.first_ts - current.last_ts <= timeout`` therefore rebuilds
    exactly the sessions a serial run over the union stream produces;
    the per-session statistics are sums/unions, so the rebuilt
    :class:`Session` objects compare equal to the serial ones
    (``tests/test_federation_equivalence.py`` pins this bit for bit).

    Returns new sessions in canonical ``(first_ts, source)`` order;
    the inputs are not mutated.
    """
    groups: dict = {}
    for session in sessions:
        groups.setdefault((session.source, session.traffic_class), []).append(
            session
        )
    merged: list = []
    for fragments in groups.values():
        fragments.sort(key=lambda s: (s.first_ts, s.last_ts))
        current = _clone_session(fragments[0])
        for fragment in fragments[1:]:
            if fragment.first_ts - current.last_ts <= timeout:
                _absorb_session(current, fragment)
            else:
                merged.append(current)
                current = _clone_session(fragment)
        merged.append(current)
    merged.sort(key=lambda s: (s.first_ts, s.source))
    return merged


class TimeoutSweep:
    """Figure 4: number of sessions as a function of the timeout.

    Record every per-source inter-packet gap once; the session count for
    timeout T is ``sources + |{gaps > T}|``, and ``sources`` is the
    lower bound reached at timeout = infinity.  Gaps are kept per source
    so sources identified later (research scanners) can be excluded
    without a second pass over the packets.
    """

    def __init__(self) -> None:
        self._last_seen: dict[int, float] = {}
        self._gaps: dict[int, list] = {}
        self._excluded: set = set()
        self._sorted: Optional[list] = None
        self._gap_count = 0

    def observe(self, source: int, timestamp: float) -> None:
        last = self._last_seen.get(source)
        if last is not None:
            self._gaps.setdefault(source, []).append(timestamp - last)
            if source not in self._excluded:
                self._gap_count += 1
            self._sorted = None
        self._last_seen[source] = timestamp

    def exclude_sources(self, sources) -> None:
        """Drop sources (e.g. research scanners) from the sweep.

        Keeps the sorted gap list alive: the excluded sources' gaps are
        subtracted with one merge pass instead of re-sorting every
        remaining gap from scratch.
        """
        new = set(sources) - self._excluded
        if not new:
            return
        self._excluded |= new
        removed = [gap for source in new for gap in self._gaps.get(source, ())]
        self._gap_count -= len(removed)
        if self._sorted is not None and removed:
            removed.sort()
            self._sorted = _sorted_difference(self._sorted, removed)

    def merge(self, other: "TimeoutSweep") -> None:
        """Fold a shard's sweep into this one (disjoint source sets)."""
        overlap = set(self._last_seen) & set(other._last_seen)
        if overlap:
            raise ValueError(f"shards overlap on {len(overlap)} sources")
        if other._excluded:
            raise ValueError("merge partial sweeps before excluding sources")
        self._last_seen.update(other._last_seen)
        self._gaps.update(other._gaps)
        self._gap_count += other._gap_count
        self._sorted = None

    @property
    def source_count(self) -> int:
        return len(set(self._last_seen) - self._excluded)

    @property
    def packet_count(self) -> int:
        return self._gap_count + self.source_count

    def sessions_at(self, timeout: float) -> int:
        """Session count under the given timeout (seconds)."""
        if self._sorted is None:
            self._sorted = sorted(
                gap
                for source, gaps in self._gaps.items()
                if source not in self._excluded
                for gap in gaps
            )
        index = bisect.bisect_right(self._sorted, timeout)
        return self.source_count + len(self._sorted) - index

    def _sorted_gaps(self) -> list:
        """The currently-included gaps in sorted order (testing hook)."""
        self.sessions_at(0.0)
        return list(self._sorted or ())

    def sweep(self, timeouts_minutes: Iterable[float]) -> list:
        """(timeout_minutes, session_count) series for Figure 4."""
        return [
            (minutes, self.sessions_at(minutes * MINUTE))
            for minutes in timeouts_minutes
        ]

    def knee_minutes(
        self, candidates: Iterable[float] = tuple(range(1, 61)), threshold: float = 0.02
    ) -> float:
        """Smallest timeout where the marginal session reduction per
        extra minute drops below ``threshold`` of the remaining excess
        over the infinity floor — the paper's ~5 minute knee."""
        series = self.sweep(candidates)
        floor = self.source_count
        for (m1, s1), (_m2, s2) in zip(series, series[1:]):
            excess = s1 - floor
            if excess <= 0:
                return m1
            if (s1 - s2) / excess < threshold:
                return m1
        return series[-1][0]


class RecordingSweep(TimeoutSweep):
    """A :class:`TimeoutSweep` that also retains per-source timestamps.

    Gap *values* are enough to merge source-disjoint shards, but not
    destination-partitioned vantages: the union stream's gaps are
    differences of interleaved timestamps from several partitions, and
    floats don't let us reconstruct timestamps from gaps
    (``t1 + (t2 - t1) != t2`` in general).  Keeping the observed
    timestamps — the same asymptotic cost as the gap lists — lets
    :func:`merge_recorded_sweeps` rebuild the union sweep exactly.
    """

    def __init__(self) -> None:
        super().__init__()
        self._timestamps: dict[int, list] = {}

    def observe(self, source: int, timestamp: float) -> None:
        self._timestamps.setdefault(source, []).append(timestamp)
        super().observe(source, timestamp)


def merge_recorded_sweeps(sweeps: Iterable["RecordingSweep"]) -> TimeoutSweep:
    """Rebuild the single-stream sweep from per-vantage recorded sweeps.

    Per source, the union of the vantages' timestamp lists (a sorted
    multiset merge, duplicates kept) is exactly the timestamp sequence
    a serial sweep over the union stream observes, so replaying it
    through :meth:`TimeoutSweep.observe` reproduces the serial gap
    multiset bit for bit — the same float subtractions on the same
    values.  Returns a plain :class:`TimeoutSweep` ready for
    ``exclude_sources`` / ``sessions_at``.
    """
    per_source: dict[int, list] = {}
    for sweep in sweeps:
        if not isinstance(sweep, RecordingSweep):
            raise TypeError("federated sweep merge needs RecordingSweep inputs")
        if sweep._excluded:
            raise ValueError("merge recorded sweeps before excluding sources")
        for source, stamps in sweep._timestamps.items():
            per_source.setdefault(source, []).extend(stamps)
    merged = TimeoutSweep()
    for source, stamps in per_source.items():
        stamps.sort()
        observe = merged.observe
        for timestamp in stamps:
            observe(source, timestamp)
    return merged
