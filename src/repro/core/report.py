"""Full-text measurement report: every paper result in one document.

``build_report`` renders a :class:`~repro.core.pipeline.PipelineResult`
into the complete set of tables and ASCII figures the paper's
evaluation contains — the same computations the per-figure benches run,
assembled for humans.  Used by ``python -m repro analyze`` and the
``examples`` scripts.
"""

from __future__ import annotations


from repro.net.addresses import format_ipv4
from repro.util.render import cdf_points, format_table, sparkline
from repro.util.stats import EmpiricalCdf
from repro.util.timeutil import HOUR
from repro.core.pipeline import PipelineResult

_RULE = "=" * 72


def build_report(result: PipelineResult, research_weight: float = 1.0) -> str:
    """Render the full QUICsand report for one analyzed capture."""
    sections = [
        _overview(result, research_weight),
        _traffic_types(result),
        _sessions(result),
        _attacks(result),
        _multivector(result),
        _providers(result),
        _validity(result),
        _retry(result),
    ]
    return ("\n" + _RULE + "\n").join(s for s in sections if s)


def _overview(result: PipelineResult, research_weight: float) -> str:
    window_hours = (result.window_end - result.window_start) / HOUR
    research_full = result.research_packets * research_weight
    total_full = research_full + result.sanitized_quic_packets
    research_share = research_full / total_full if total_full else 0.0
    rows = [
        ["measurement window", f"{window_hours:.1f} hours"],
        ["packets captured", f"{result.total_packets:,}"],
        ["QUIC packets (port+dissector)", f"{result.research_packets + result.sanitized_quic_packets:,}"],
        ["dissector-rejected UDP/443", f"{result.dissection_failures:,}"],
        ["research scanner sources", str(len(result.research_sources))],
        ["research share (weight-adjusted)", f"{research_share * 100:.1f}%  (paper: 98.5%)"],
    ]
    return format_table(["metric", "value"], rows, title="Overview (Figure 2)")


def _traffic_types(result: PipelineResult) -> str:
    hours = sorted(set(result.hourly_requests) | set(result.hourly_responses))
    requests = [result.hourly_requests.get(h, 0) for h in hours]
    responses = [result.hourly_responses.get(h, 0) for h in hours]
    head = format_table(
        ["metric", "value"],
        [
            ["request share", f"{result.request_share * 100:.1f}%  (paper: 15%)"],
            ["response share", f"{(1 - result.request_share) * 100:.1f}%  (paper: 85%)"],
        ],
        title="Traffic types (Figure 3)",
    )
    series = (
        "requests/h : " + sparkline(requests) + "\n"
        "responses/h: " + sparkline(responses)
    )
    return head + "\n" + series


def _sessions(result: PipelineResult) -> str:
    sweep = result.timeout_sweep
    if sweep is None or sweep.source_count == 0:
        return ""
    rows = [
        [f"{minutes} min", sweep.sessions_at(minutes * 60)]
        for minutes in (1, 2, 5, 10, 30, 60)
    ]
    rows.append(["infinity", sweep.source_count])
    head = format_table(
        ["timeout", "sessions"],
        rows,
        title=f"Session timeout sweep (Figure 4) — knee at {sweep.knee_minutes():.0f} min (paper: ~5)",
    )
    request_types = {
        t.value: n for t, n in result.request_network_types.items() if n
    }
    response_types = {
        t.value: n for t, n in result.response_network_types.items() if n
    }
    types = format_table(
        ["network type", "request sessions", "response sessions"],
        [
            [name, request_types.get(name, 0), response_types.get(name, 0)]
            for name in sorted(set(request_types) | set(response_types))
        ],
        title="Source network types (Figure 5)",
    )
    greynoise = ""
    if result.greynoise_summary:
        greynoise = "\nGreyNoise on request sources: " + ", ".join(
            f"{k}={v}" for k, v in result.greynoise_summary.items()
        )
    countries = ""
    if result.request_country_counts:
        top = sorted(
            result.request_country_counts.items(), key=lambda kv: -kv[1]
        )[:5]
        total = sum(result.request_country_counts.values())
        countries = "\nrequest session origins: " + ", ".join(
            f"{c} {n / total * 100:.0f}%" for c, n in top
        )
    return head + "\n\n" + types + greynoise + countries


def _attacks(result: PipelineResult) -> str:
    if not result.quic_attacks:
        return "No QUIC flood attacks detected."
    analysis = result.victim_analysis
    window_hours = (result.window_end - result.window_start) / HOUR
    quic_durations = EmpiricalCdf([a.duration for a in result.quic_attacks])
    quic_pps = EmpiricalCdf([a.max_pps for a in result.quic_attacks])
    rows = [
        ["QUIC floods", f"{analysis.attack_count} ({analysis.attack_count / window_hours:.1f}/hour; paper ~4/hour)"],
        ["share of response sessions", f"{result.quic_detector.detection_rate * 100:.0f}%  (paper: 11%)"],
        ["unique victims", str(analysis.victim_count)],
        ["victims attacked once", f"{analysis.single_attack_victim_share * 100:.0f}%  (paper: >50%)"],
        ["attacks on known QUIC servers", f"{analysis.known_server_share * 100:.0f}%  (paper: 98%)"],
        ["median duration", f"{quic_durations.median_value:.0f} s  (paper: 255 s)"],
        ["median max pps", f"{quic_pps.median_value:.2f}  (paper: ~1)"],
    ]
    if result.common_attacks:
        common_durations = EmpiricalCdf([a.duration for a in result.common_attacks])
        rows.append(
            [
                "TCP/ICMP floods (median duration)",
                f"{len(result.common_attacks)} ({common_durations.median_value:.0f} s; paper: 1499 s)",
            ]
        )
    head = format_table(["metric", "value"], rows, title="DoS floods (Figures 6, 7)")
    cdf = "attacks-per-victim CDF:\n" + cdf_points(
        EmpiricalCdf(analysis.attacks_per_victim_sorted()).steps()
    )
    return head + "\n\n" + cdf


def _multivector(result: PipelineResult) -> str:
    if result.multivector is None or not result.multivector.correlated:
        return ""
    shares = result.multivector.category_shares()
    rows = [
        ["concurrent", f"{shares['concurrent'] * 100:.0f}%  (paper: 51%)"],
        ["sequential", f"{shares['sequential'] * 100:.0f}%  (paper: 40%)"],
        ["isolated", f"{shares['isolated'] * 100:.0f}%  (paper: 9%)"],
    ]
    overlap = result.multivector.overlap_shares
    if overlap:
        full = sum(1 for s in overlap if s >= 0.999) / len(overlap)
        mean = sum(overlap) / len(overlap)
        rows.append(["fully parallel (of concurrent)", f"{full * 100:.0f}%  (paper: 75%)"])
        rows.append(["mean overlap share", f"{mean * 100:.0f}%  (paper: 95%)"])
    gaps = result.multivector.sequential_gaps
    if gaps:
        over_hour = sum(1 for g in gaps if g > HOUR) / len(gaps)
        rows.append(["sequential gaps > 1 h", f"{over_hour * 100:.0f}%  (paper: 82%)"])
    return format_table(
        ["metric", "value"], rows, title="Multi-vector attacks (Figures 8, 12, 13)"
    )


def _providers(result: PipelineResult) -> str:
    interesting = [
        name for name in ("Google", "Facebook") if name in result.profiles
    ]
    if not interesting:
        return ""
    rows = []
    for name in interesting:
        profile = result.profiles[name]
        version, share = profile.dominant_version()
        rows.append(
            [
                name,
                profile.attack_count,
                f"{result.victim_analysis.provider_share(name) * 100:.0f}%",
                f"{profile.median('packet_count'):.0f}",
                f"{profile.median('unique_client_ips'):.0f}",
                f"{profile.median('unique_client_ports'):.0f}",
                f"{profile.median('unique_scids'):.0f}",
                f"{version} {share * 100:.0f}%",
            ]
        )
    return format_table(
        ["provider", "attacks", "share", "pkts", "IPs", "ports", "SCIDs", "version"],
        rows,
        title="Provider fingerprints (Figure 9) — medians per attack",
    )


def _validity(result: PipelineResult) -> str:
    shares = result.message_type_shares()
    if not shares:
        return ""
    rows = [
        [name, f"{share * 100:.1f}%"]
        for name, share in sorted(shares.items(), key=lambda kv: -kv[1])
    ]
    rows.append(
        ["backscatter with DCID len 0", f"{result.empty_dcid_share * 100:.1f}%"]
    )
    return format_table(
        ["message type (response sessions)", "share"],
        rows,
        title="Attack pattern validity (Section 6) — paper: 31% Initial / 57% Handshake",
    )


def _retry(result: PipelineResult) -> str:
    audit = result.retry_audit
    if audit is None:
        return ""
    rows = [
        ["RETRY packets in backscatter", str(audit.passive_retry_packets)],
        [
            "active probes returning RETRY",
            f"{sum(1 for p in audit.probes if p.retry_received)} / {len(audit.probes)}",
        ],
        [
            "probes completing handshake + HTTP/3 GET",
            f"{sum(1 for p in audit.probes if p.handshake_completed and p.http_status == 200)} / {len(audit.probes)}",
        ],
        ["verdict", "RETRY NOT deployed" if not audit.retry_deployed else "RETRY seen!"],
    ]
    table = format_table(["metric", "value"], rows, title="RETRY audit (Section 6)")
    probe_rows = [
        [
            format_ipv4(p.address),
            p.provider,
            "yes" if p.retry_received else "no",
            str(p.http_status) if p.http_status else "-",
        ]
        for p in audit.probes[:10]
    ]
    if probe_rows:
        table += "\n\n" + format_table(
            ["victim", "provider", "retry", "HTTP"], probe_rows
        )
    return table
