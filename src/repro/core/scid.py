"""Connection-ID and spoofing analysis per attack (Figure 9).

The SCID is the QUIC-specific backscatter feature: every connection
context a victim allocates shows up as a distinct Source Connection ID
in its responses, so SCID counts proxy the *server-side load* a flood
induced.  The paper contrasts this with the spoofed client addresses
(few) and ports (many): port randomization, not address randomization,
drives state allocation — and Google's per-request CID policy yields
more SCIDs than Facebook's despite fewer packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.internet.activescan import ActiveScanCensus
from repro.util.stats import EmpiricalCdf


@dataclass
class AttackFingerprint:
    """Per-attack feature vector for Figure 9."""

    victim_ip: int
    provider: Optional[str]
    packet_count: int
    unique_client_ips: int
    unique_client_ports: int
    unique_scids: int
    version_mix: dict


@dataclass
class ProviderProfile:
    """Distribution summary of attack features for one provider."""

    provider: str
    fingerprints: list = field(default_factory=list)

    def _cdf(self, attribute: str) -> EmpiricalCdf:
        values = [getattr(f, attribute) for f in self.fingerprints]
        return EmpiricalCdf(values)

    @property
    def attack_count(self) -> int:
        return len(self.fingerprints)

    def median(self, attribute: str) -> float:
        return self._cdf(attribute).median_value

    def cdf(self, attribute: str) -> EmpiricalCdf:
        return self._cdf(attribute)

    def dominant_version(self) -> tuple:
        """(version_name, share) across all the provider's attacks."""
        totals: dict[str, int] = {}
        for fingerprint in self.fingerprints:
            for name, count in fingerprint.version_mix.items():
                totals[name] = totals.get(name, 0) + count
        if not totals:
            return ("unknown", 0.0)
        top = max(totals.items(), key=lambda kv: kv[1])
        return top[0], top[1] / sum(totals.values())


def fingerprint_attacks(
    attacks: list, census: Optional[ActiveScanCensus] = None
) -> list:
    """Build fingerprints from detected QUIC flood attacks.

    The spoofed *client* side of a backscatter session is its
    destination side: dst IPs are the spoofed addresses, dst ports the
    randomized client ports, and the session's SCID set is what the
    victim allocated.
    """
    fingerprints = []
    for attack in attacks:
        session = attack.session
        provider = None
        if census is not None:
            record = census.get(attack.victim_ip)
            provider = record.provider if record else None
        fingerprints.append(
            AttackFingerprint(
                victim_ip=attack.victim_ip,
                provider=provider,
                packet_count=session.packet_count,
                unique_client_ips=len(session.dst_ips),
                unique_client_ports=len(session.dst_ports),
                unique_scids=len(session.scids),
                version_mix=dict(session.version_names),
            )
        )
    return fingerprints


def provider_profiles(fingerprints: list) -> dict:
    """Group fingerprints per provider (None → "unknown")."""
    profiles: dict[str, ProviderProfile] = {}
    for fingerprint in fingerprints:
        name = fingerprint.provider or "unknown"
        profile = profiles.setdefault(name, ProviderProfile(name))
        profile.fingerprints.append(fingerprint)
    return profiles
