"""Telescope-to-Internet extrapolation (Section 5.2 arithmetic).

A /9 darknet observes 1/512 of randomly spoofed traffic, so the paper
scales observed rates by 512: a 1 max-pps backscatter event implies
~512 pps toward the victim, and the largest observed event (27 pps)
extrapolates to 27 * 512 = 13,824 pps — past the rates that break the
4-worker NGINX setup in Table 1.

Beyond the point estimate, this module quantifies the *sampling*
uncertainty of that inference: packets land in the telescope
binomially with p = 1/extrapolation_factor, so an observed count k over
a window gives a confidence interval on the true rate (normal
approximation to the binomial, which is accurate at the counts that
pass the Moore thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.addresses import IPv4Network


@dataclass(frozen=True)
class RateEstimate:
    """An Internet-wide rate inferred from telescope observations."""

    observed_pps: float
    factor: float
    low_pps: float
    estimated_pps: float
    high_pps: float

    def __str__(self) -> str:
        return (
            f"{self.estimated_pps:,.0f} pps "
            f"[{self.low_pps:,.0f}, {self.high_pps:,.0f}] "
            f"(observed {self.observed_pps:.2f} x {self.factor:.0f})"
        )


class TelescopeExtrapolator:
    """Scales telescope observations to Internet-wide quantities."""

    def __init__(self, prefix: IPv4Network) -> None:
        self.prefix = prefix

    @property
    def factor(self) -> float:
        """1/coverage — 512 for the paper's /9."""
        return 2.0 ** self.prefix.prefix_len

    @property
    def coverage(self) -> float:
        """Fraction of IPv4 the telescope observes (2 permil for a /9)."""
        return 1.0 / self.factor

    def rate(self, observed_pps: float, window: float = 60.0, z: float = 1.96) -> RateEstimate:
        """Internet-wide packet rate with a (1-alpha) confidence band.

        ``observed_pps`` is the telescope rate over ``window`` seconds.
        The observed count k = observed_pps * window is binomial with
        p = coverage; the interval follows from k ± z*sqrt(k) (each
        spoofed packet lands in the telescope independently).
        """
        if observed_pps < 0:
            raise ValueError("observed rate cannot be negative")
        count = observed_pps * window
        spread = z * math.sqrt(count) if count > 0 else 0.0
        return RateEstimate(
            observed_pps=observed_pps,
            factor=self.factor,
            low_pps=max(0.0, (count - spread) / window) * self.factor,
            estimated_pps=observed_pps * self.factor,
            high_pps=(count + spread) / window * self.factor,
        )

    def attack_rate(self, attack) -> RateEstimate:
        """Internet-wide rate of a detected flood (uses its max-pps and
        the 1-minute slot the maximum was measured over)."""
        return self.rate(attack.max_pps, window=60.0)

    def scan_packets_per_sweep(self) -> int:
        """Packets one full-IPv4 single-packet sweep delivers here
        (2^23 for a /9 — the Figure 2 constant)."""
        return self.prefix.size

    def detection_probability(self, total_spoofed_packets: float) -> float:
        """Probability that a randomly spoofed event of N packets is
        seen at all (at least one packet lands in the telescope)."""
        if total_spoofed_packets < 0:
            raise ValueError("packet count cannot be negative")
        return 1.0 - (1.0 - self.coverage) ** total_spoofed_packets

    def min_rate_for_threshold(
        self, threshold_pps: float = 0.5
    ) -> float:
        """Smallest Internet-wide flood rate whose expected telescope
        rate clears a per-slot threshold — the detection floor the
        Moore max-pps rule implies for this telescope size."""
        return threshold_pps * self.factor
