"""The QUIC payload dissector.

Port-based selection alone misclassifies stray UDP/443 traffic, so the
paper validates every candidate with Wireshark's dissector.  This is
that dissector, built from scratch on the :mod:`repro.quic` substrate:

- walks coalesced long-header packets (Initial / 0-RTT / Handshake /
  Retry / Version Negotiation) using the RFC 8999 invariants;
- accepts short-header (1-RTT) packets only with enough bytes to hold a
  connection ID and a header-protection sample (a telescope cannot
  delimit short-header DCIDs, so this mirrors Wireshark's heuristic);
- for *client* Initials, derives the version's initial keys from the
  wire DCID and decrypts, exposing the TLS ClientHello exactly the way
  Wireshark shows it;
- for *server* Initials (backscatter), notes that no plaintext
  ClientHello is present and checks the zero-length DCID validity
  condition from Section 5.2 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.quic import tls
from repro.quic.crypto import DecryptError, derive_initial_keys
from repro.quic.frames import CryptoFrame, FrameParseError, crypto_payload
from repro.quic.header import (
    HeaderParseError,
    LongHeader,
    PacketType,
    RetryPacket,
    ShortHeader,
    VersionNegotiationPacket,
)
from repro.quic.packet import split_datagram, unprotect_initial
from repro.quic.versions import is_greased, version_by_value

#: Minimum short-header datagram the dissector accepts: first byte +
#: 8-byte CID + 1-byte packet number + 16-byte sample.
MIN_SHORT_HEADER_LEN = 26

# Legacy Google QUIC public flags (pre-IETF wire format).
_GQUIC_FLAG_VERSION = 0x01
_GQUIC_FLAG_CID = 0x08
#: minimum gQUIC client packet: flags + 8B CID + 4B version + pn
MIN_GQUIC_LEN = 14


class MalformedReason(enum.Enum):
    """Why a UDP/443 payload was rejected as non-QUIC.

    The closed taxonomy the pipeline tallies hostile traffic under
    (``class_counts['malformed:<reason>']``,
    ``repro_malformed_packets_total{reason=...}``): a telescope ingests
    arbitrary Internet garbage, so the reject path needs
    bounded-cardinality classifications, not free-form error strings.
    The reference table in ``docs/ROBUSTNESS.md`` is kept in sync by
    ``tests/test_docs_robustness_sync.py``.
    """

    #: zero-length UDP payload
    EMPTY = "empty"
    #: first byte has neither the long-header form bit nor the fixed bit
    NO_FIXED_BIT = "no-fixed-bit"
    #: long header ends before version/CID fields are complete
    TRUNCATED_HEADER = "truncated-header"
    #: connection-ID length byte truncated, > 20, or CID bytes missing
    BAD_CONNECTION_ID = "bad-connection-id"
    #: token/length varint truncated or malformed
    BAD_VARINT = "bad-varint"
    #: version negotiation with an empty or non-multiple-of-4 list
    BAD_VERSION_NEGOTIATION = "bad-version-negotiation"
    #: token, retry tag, or declared payload extends past the datagram
    TRUNCATED_PAYLOAD = "truncated-payload"
    #: long-header length field below the 4-byte RFC 9001 minimum
    PAYLOAD_TOO_SHORT = "payload-too-short"
    #: short-header datagram smaller than CID + pn + HP sample
    SHORT_TOO_SHORT = "short-too-short"
    #: a coalesced packet claims a zero-length slice (parser loop guard)
    NO_ADVANCE = "no-advance"
    #: UDP packet with 443 on both sides (classifier-level rejection)
    PORT_CONFLICT = "port-conflict"
    #: parser raised outside its typed error contract (defensive catch)
    INTERNAL_ERROR = "internal-error"
    #: typed parse error without a more specific classification
    MALFORMED = "malformed"


def classify_reason(slug: str) -> MalformedReason:
    """Map a :class:`HeaderParseError` reason slug onto the taxonomy."""
    try:
        return MalformedReason(slug)
    except ValueError:
        return MalformedReason.MALFORMED


@dataclass(frozen=True, slots=True)
class DissectedPacket:
    """Summary of one QUIC packet inside a datagram.

    Immutable: the dissector's memo hands the *same* instance to every
    consumer of a repeated payload, so any in-place mutation would
    silently corrupt the dissection of later packets.
    """

    packet_type: PacketType
    version: Optional[int] = None
    version_name: Optional[str] = None
    dcid: bytes = b""
    scid: bytes = b""
    token_length: int = 0
    has_plain_client_hello: bool = False
    client_hello_sni: Optional[str] = None
    decrypted: bool = False


@dataclass(frozen=True, slots=True)
class Dissection:
    """Result of dissecting one UDP payload.

    Immutable and shared across cache hits, like
    :class:`DissectedPacket`.
    """

    valid: bool
    packets: tuple = ()
    error: Optional[str] = None
    #: typed classification of the failure; ``None`` when ``valid``.
    reason: Optional[MalformedReason] = None

    @property
    def packet_types(self) -> list:
        return [p.packet_type for p in self.packets]

    @property
    def scids(self) -> list:
        return [p.scid for p in self.packets if p.scid]

    @property
    def has_retry(self) -> bool:
        return any(p.packet_type is PacketType.RETRY for p in self.packets)

    @property
    def has_version_negotiation(self) -> bool:
        return any(
            p.packet_type is PacketType.VERSION_NEGOTIATION for p in self.packets
        )

    @property
    def has_long_header(self) -> bool:
        """Any Initial/Handshake/0-RTT packet in the datagram."""
        return any(p.packet_type in _LONG_HEADER_TYPES for p in self.packets)

    @property
    def all_dcids_empty(self) -> bool:
        """The backscatter validity check of Section 5.2."""
        long_headers = [
            p for p in self.packets if p.packet_type in _LONG_HEADER_TYPES
        ]
        return bool(long_headers) and all(p.dcid == b"" for p in long_headers)


_LONG_HEADER_TYPES = frozenset(
    (PacketType.INITIAL, PacketType.HANDSHAKE, PacketType.ZERO_RTT)
)


class QuicDissector:
    """Stateless dissector over UDP payloads.

    Dissection is pure in the payload bytes, so results are memoized:
    scan tools replay a bounded set of handshake templates, and a
    telescope sees each template many thousands of times.  The memo is
    a two-generation cache: when the young generation fills up it is
    demoted to the old generation instead of dropped, so long-lived
    templates survive eviction epochs and only truly cold entries fall
    out.  ``cache_hits``/``cache_misses`` expose the hit rate to the
    pipeline and the throughput bench.
    """

    def __init__(
        self, try_decrypt_initials: bool = True, cache_size: int = 4096
    ) -> None:
        self.try_decrypt_initials = try_decrypt_initials
        self._cache: dict[bytes, Dissection] = {}
        self._old_cache: dict[bytes, Dissection] = {}
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0

    def dissect(self, payload: bytes) -> Dissection:
        """Dissect one UDP payload into QUIC packet summaries.

        ``valid=False`` means the payload is not QUIC (the classifier
        then excludes the packet, as the paper excludes Wireshark
        failures).
        """
        result = self._cache.get(payload)
        if result is None:
            result = self._old_cache.get(payload)
            if result is None:
                self.cache_misses += 1
                result = self._dissect_uncached(payload)
            else:
                self.cache_hits += 1
            # insert (miss) or promote (old-generation hit) into the
            # young generation, demoting it first if it is full
            if len(self._cache) >= self._cache_size:
                self._old_cache = self._cache
                self._cache = {}
            self._cache[payload] = result
        else:
            self.cache_hits += 1
        return result

    def dissect_once(self, payload: bytes) -> Dissection:
        """One uncached dissection (same never-raise contract).

        Entry point for callers that memoize at a higher level — the
        batch lane's fallback path caches :data:`LaneEntry` tuples
        keyed by payload, so routing through :meth:`dissect` would
        double-store every fallback payload and double-count the
        hit/miss telemetry.
        """
        return self._dissect_uncached(payload)

    def _dissect_uncached(self, payload: bytes) -> Dissection:
        # The never-raise contract: telescope input is arbitrary
        # Internet bytes, so a parser bug must degrade to a tallied
        # malformed classification, never to a crashed pipeline.
        try:
            return self._dissect_strict(payload)
        except Exception as exc:  # noqa: BLE001 - contract boundary
            return Dissection(
                valid=False,
                error=f"dissector error: {exc}",
                reason=MalformedReason.INTERNAL_ERROR,
            )

    def _dissect_strict(self, payload: bytes) -> Dissection:
        if not payload:
            return Dissection(
                valid=False, error="empty payload", reason=MalformedReason.EMPTY
            )
        # Cheap first-byte pre-check: with neither the long-header form
        # bit (0x80) nor the fixed bit (0x40) set, the header parser
        # always rejects the first packet — skip parsing (and its
        # exception overhead) for the stray-UDP bulk, and go straight to
        # the legacy gQUIC check (whose public-flags byte also has both
        # bits clear).  The error string matches the parser's, keeping
        # results bit-identical.
        if not payload[0] & 0xC0:
            gquic = self._dissect_gquic(payload)
            if gquic is not None:
                return gquic
            return Dissection(
                valid=False,
                error="short header without fixed bit",
                reason=MalformedReason.NO_FIXED_BIT,
            )
        try:
            views = split_datagram(payload)
        except HeaderParseError as exc:
            gquic = self._dissect_gquic(payload)
            if gquic is not None:
                return gquic
            return Dissection(
                valid=False, error=str(exc), reason=classify_reason(exc.reason)
            )
        packets = []
        for view in views:
            if isinstance(view, ShortHeader):
                if len(payload) - view.start < MIN_SHORT_HEADER_LEN:
                    return Dissection(
                        valid=False,
                        error="short header too short",
                        reason=MalformedReason.SHORT_TOO_SHORT,
                    )
                packets.append(DissectedPacket(packet_type=PacketType.ONE_RTT))
                continue
            if isinstance(view, VersionNegotiationPacket):
                packets.append(
                    DissectedPacket(
                        packet_type=PacketType.VERSION_NEGOTIATION,
                        dcid=view.dcid,
                        scid=view.scid,
                    )
                )
                continue
            if isinstance(view, RetryPacket):
                known = version_by_value(view.version)
                packets.append(
                    DissectedPacket(
                        packet_type=PacketType.RETRY,
                        version=view.version,
                        version_name=known.name if known else None,
                        dcid=view.dcid,
                        scid=view.scid,
                        token_length=len(view.token),
                    )
                )
                continue
            packets.append(self._dissect_long(payload, view))
        return Dissection(valid=True, packets=tuple(packets))

    def _dissect_gquic(self, payload: bytes) -> Optional[Dissection]:
        """Recognize legacy Google QUIC public headers (Q043/Q046).

        gQUIC predates the RFC 8999 invariants: a public-flags byte
        (version bit 0x01, connection-ID bit 0x08, both cleared in the
        0x80/0x40 positions IETF QUIC uses), an 8-byte connection ID and
        an ASCII version tag like ``Q043``.  Scanners still probe for
        these servers, so the classifier must count them as QUIC.
        """
        if len(payload) < MIN_GQUIC_LEN:
            return None
        flags = payload[0]
        if not (flags & _GQUIC_FLAG_VERSION) or not (flags & _GQUIC_FLAG_CID):
            return None
        if flags & 0xC0:
            return None  # collides with IETF header space
        version_tag = payload[9:13]
        if not (version_tag[0:1] == b"Q" and version_tag[1:].isdigit()):
            return None
        version_value = int.from_bytes(version_tag, "big")
        known = version_by_value(version_value)
        summary = DissectedPacket(
            packet_type=PacketType.GQUIC,
            version=version_value,
            version_name=known.name if known else f"gQUIC-{version_tag.decode()}",
            dcid=payload[1:9],
            has_plain_client_hello=b"CHLO" in payload[13:40],
        )
        return Dissection(valid=True, packets=(summary,))

    def _dissect_long(self, payload: bytes, view: LongHeader) -> DissectedPacket:
        known = version_by_value(view.version)
        decrypted = False
        has_plain_client_hello = False
        client_hello_sni: Optional[str] = None
        unknown_version = (
            view.version != 0 and known is None and not is_greased(view.version)
        )
        # Unknown versions get header-level dissection only, like
        # Wireshark with an unsupported draft.  Client Initials are
        # keyed on the wire DCID: decryptable.
        should_try = (
            not unknown_version
            and self.try_decrypt_initials
            and known is not None
            and known.ietf_layout
            and view.packet_type is PacketType.INITIAL
            and len(view.dcid) > 0
        )
        if should_try:
            try:
                client_keys, _server_keys = derive_initial_keys(known, view.dcid)
                _pn, frames = unprotect_initial(payload, view, client_keys)
            except (DecryptError, FrameParseError, HeaderParseError, ValueError):
                frames = None
            if frames is not None:
                decrypted = True
                stream = crypto_payload(
                    [f for f in frames if isinstance(f, CryptoFrame)]
                )
                if stream and tls.looks_like_client_hello(stream):
                    has_plain_client_hello = True
                    try:
                        client_hello_sni = tls.ClientHello.parse(stream).server_name
                    except tls.TlsParseError:
                        pass
        return DissectedPacket(
            packet_type=view.packet_type,
            version=view.version,
            version_name=known.name if known else None,
            dcid=view.dcid,
            scid=view.scid,
            token_length=len(view.token),
            has_plain_client_hello=has_plain_client_hello,
            client_hello_sni=client_hello_sni,
            decrypted=decrypted,
        )
