"""Multi-vector correlation (Section 5.2, Figure 8, Appendix C).

Each detected QUIC flood is classified against the TCP/ICMP floods on
the *same victim*:

- **concurrent** — at least one common flood overlaps it by ≥ 1 second
  (half of all QUIC floods; most overlap almost completely, Figure 12);
- **sequential** — the victim also saw common floods, but disjoint in
  time (Figure 13's gap distribution, hours to days);
- **isolated** — no common flood ever hit the victim in the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.dos import FloodAttack

CONCURRENT = "concurrent"
SEQUENTIAL = "sequential"
ISOLATED = "isolated"


@dataclass
class CorrelatedAttack:
    """One QUIC flood with its multi-vector classification."""

    attack: FloodAttack
    category: str
    #: for concurrent attacks: fraction of the QUIC flood's own duration
    #: covered by common floods (Figure 12; 1.0 = fully parallel).
    overlap_share: Optional[float] = None
    #: for sequential attacks: gap to the nearest common flood (s).
    nearest_gap: Optional[float] = None
    partners: list = field(default_factory=list)


@dataclass
class MultiVectorAnalysis:
    """Aggregate result of the correlation."""

    correlated: list = field(default_factory=list)

    def by_category(self) -> dict:
        counts = {CONCURRENT: 0, SEQUENTIAL: 0, ISOLATED: 0}
        for item in self.correlated:
            counts[item.category] += 1
        return counts

    def category_shares(self) -> dict:
        counts = self.by_category()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    @property
    def overlap_shares(self) -> list:
        """Figure 12 sample: overlap share per concurrent QUIC flood."""
        return [
            c.overlap_share
            for c in self.correlated
            if c.category == CONCURRENT and c.overlap_share is not None
        ]

    @property
    def sequential_gaps(self) -> list:
        """Figure 13 sample: gap to nearest common flood, seconds."""
        return [
            c.nearest_gap
            for c in self.correlated
            if c.category == SEQUENTIAL and c.nearest_gap is not None
        ]

    def victim_timeline(self, victim_ip: int) -> list:
        """Figure 11: (vector, start, end, category) rows for one victim."""
        rows = []
        for item in self.correlated:
            if item.attack.victim_ip != victim_ip:
                continue
            rows.append(
                ("quic", item.attack.start, item.attack.end, item.category)
            )
            for partner in item.partners:
                rows.append((partner.vector, partner.start, partner.end, ""))
        # de-duplicate partners shared between several QUIC floods
        unique = sorted(set(rows), key=lambda r: r[1])
        return unique


def correlate_attacks(
    quic_attacks: list,
    common_attacks: list,
    min_overlap: float = 1.0,
) -> MultiVectorAnalysis:
    """Classify every QUIC flood against same-victim TCP/ICMP floods."""
    by_victim: dict[int, list] = {}
    for attack in common_attacks:
        by_victim.setdefault(attack.victim_ip, []).append(attack)

    analysis = MultiVectorAnalysis()
    for attack in quic_attacks:
        partners = by_victim.get(attack.victim_ip, [])
        if not partners:
            analysis.correlated.append(CorrelatedAttack(attack, ISOLATED))
            continue
        overlapping = [p for p in partners if attack.overlaps(p, min_overlap)]
        if overlapping:
            share = _overlap_share(attack, overlapping)
            analysis.correlated.append(
                CorrelatedAttack(
                    attack, CONCURRENT, overlap_share=share, partners=overlapping
                )
            )
            continue
        nearest = min(attack.gap_to(p) for p in partners)
        analysis.correlated.append(
            CorrelatedAttack(
                attack, SEQUENTIAL, nearest_gap=nearest, partners=partners
            )
        )
    return analysis


def _overlap_share(attack: FloodAttack, partners: list) -> float:
    """Covered fraction of the QUIC flood, merging partner intervals."""
    if attack.duration <= 0:
        return 1.0
    intervals = sorted(
        (max(attack.start, p.start), min(attack.end, p.end)) for p in partners
    )
    covered = 0.0
    cursor = attack.start
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return min(1.0, covered / attack.duration)
