"""The end-to-end QUICsand pipeline.

One streaming pass over a telescope capture produces everything the
paper's evaluation reports:

1. classify each packet (port + dissector, Section 4.1);
2. keep hourly counters — research-vs-other for Figure 2, sanitized
   requests/responses for Figure 3;
3. feed per-class sessionizers (5-minute timeout) and the timeout
   sweep of Figure 4;
4. at finalization: identify research scanners (education-AS sources
   above a packet threshold) and remove their bias; detect floods with
   the Moore thresholds; correlate multi-vector attacks; attribute
   victims via census and PeeringDB metadata; fingerprint SCID usage;
   correlate request sources with GreyNoise; audit RETRY.

The pipeline never stores raw packets — memory is bounded by the
number of distinct sources and sessions.

The per-packet phase (steps 1–3) accumulates into a picklable
:class:`PartialState` with a deterministic ``merge()``: every counter
it keeps is either keyed per source (sessionizers, timeout sweep,
research candidates) or a plain sum (hourly series, class counters),
so hash-partitioning the stream by source IP across N worker processes
and merging the partials reproduces the serial state exactly.  See
:mod:`repro.core.parallel` for the sharded runner; ``workers`` on
:class:`AnalysisConfig` selects it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro import obs
from repro.internet.activescan import ActiveScanCensus
from repro.internet.asn import AsRegistry, NetworkType
from repro.internet.greynoise import GreyNoisePlatform
from repro.net.icmp import IcmpType
from repro.net.tcp import TcpFlags
from repro.util.batching import batched
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR
from repro.core.batchlane import BatchLane
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dos import DosDetector, DosThresholds
from repro.core.multivector import MultiVectorAnalysis, correlate_attacks
from repro.core.retry_audit import RetryAudit, audit_retry
from repro.core.scid import fingerprint_attacks, provider_profiles
from repro.core.sessions import DEFAULT_TIMEOUT, Sessionizer, TimeoutSweep
from repro.core.victims import VictimAnalysis, analyze_victims, session_network_types

# -- observability ----------------------------------------------------------
#
# Publication happens at *boundaries* (per batch, per classifier fold,
# per finalization step), never per packet: the hot loop keeps plain
# ints and the metrics layer sees them in bulk, so a metrics-on run
# stays within noise of a metrics-off run (asserted by the throughput
# bench).  The full catalog lives in docs/METRICS.md.

_M_PACKETS = obs.counter(
    "repro_pipeline_packets_total",
    "packets consumed by the per-packet phase (all classes)",
)
_M_BATCHES = obs.counter(
    "repro_pipeline_batches_total",
    "dispatch batches consumed by the per-packet phase",
)
_M_CLASS = obs.counter(
    "repro_pipeline_classified_total",
    "packets per traffic class (classifier counters, folded at stream end)",
    labels=("klass",),
)
_M_SESSIONS = obs.counter(
    "repro_pipeline_sessions_total",
    "closed sessions entering finalization, per traffic class "
    "(request sessions counted before research-scanner sanitization)",
    labels=("klass",),
)
_M_ATTACKS = obs.counter(
    "repro_pipeline_attacks_total",
    "flood events detected at finalization, per vector",
    labels=("vector",),
)
_M_RESEARCH = obs.counter(
    "repro_pipeline_research_sources_total",
    "sources identified as research scanners at finalization",
)
_M_STAGE = obs.histogram(
    "repro_pipeline_stage_seconds",
    "wall seconds per pipeline stage",
    labels=("stage",),
)
_M_DISSECT_HITS = obs.counter(
    "repro_dissect_cache_hits_total",
    "dissector memo hits (payload seen before)",
)
_M_DISSECT_MISSES = obs.counter(
    "repro_dissect_cache_misses_total",
    "dissector memo misses (payload dissected from bytes)",
)
_M_MALFORMED = obs.counter(
    "repro_malformed_packets_total",
    "UDP/443 packets rejected by the dissector, per typed reason "
    "(see MalformedReason in repro.core.dissect)",
    labels=("reason",),
)

# int views of the transport predicates the lane loops branch on —
# identical semantics to TcpHeader.is_syn_ack / .is_rst and
# IcmpHeader.is_backscatter, without enum dispatch per packet.
_TCP_SYN = int(TcpFlags.SYN)
_TCP_RST = int(TcpFlags.RST)
_TCP_SYN_ACK = int(TcpFlags.SYN | TcpFlags.ACK)
_ICMP_BACKSCATTER_TYPES = frozenset(
    (
        int(IcmpType.ECHO_REPLY),
        int(IcmpType.DEST_UNREACHABLE),
        int(IcmpType.TIME_EXCEEDED),
    )
)


@dataclass
class AnalysisConfig:
    """Pipeline knobs (paper defaults)."""

    session_timeout: float = DEFAULT_TIMEOUT
    thresholds: DosThresholds = field(default_factory=DosThresholds)
    #: a source is a research scanner when it sits in an education AS
    #: and exceeds this many QUIC packets.
    research_min_packets: int = 1000
    dissect_payloads: bool = True
    #: run the per-packet phase on the columnar batch fast lane (see
    #: :mod:`repro.core.batchlane`); results are bit-identical to the
    #: rich path, pinned by tests/test_lane_equivalence.py.  False
    #: forces the rich classifier/dissector (``--no-fast-lane``).
    fast_lane: bool = True
    #: probe this many top victims in the active RETRY audit.
    retry_probe_count: int = 10
    audit_seed: int = 424242
    #: worker processes for the per-packet phase; 1 runs in-process.
    workers: int = 1
    #: packets per dispatch batch (in-process classify batches and the
    #: per-shard IPC messages of the parallel runner).
    batch_size: int = 512


@dataclass
class PipelineResult:
    """Everything the benches and examples render."""

    window_start: float
    window_end: float
    config: AnalysisConfig

    # packet-level
    total_packets: int = 0
    class_counts: dict = field(default_factory=dict)
    research_sources: set = field(default_factory=set)
    research_packets: int = 0
    hourly_research: dict = field(default_factory=dict)
    hourly_other_quic: dict = field(default_factory=dict)
    hourly_requests: dict = field(default_factory=dict)
    hourly_responses: dict = field(default_factory=dict)
    dissection_failures: int = 0
    response_long_header_packets: int = 0
    response_empty_dcid_packets: int = 0
    passive_retry_packets: int = 0

    # session-level (sanitized: research removed)
    request_sessions: list = field(default_factory=list)
    response_sessions: list = field(default_factory=list)
    tcp_sessions: list = field(default_factory=list)
    icmp_sessions: list = field(default_factory=list)
    timeout_sweep: Optional[TimeoutSweep] = None

    # attack-level
    quic_detector: Optional[DosDetector] = None
    common_detector: Optional[DosDetector] = None
    multivector: Optional[MultiVectorAnalysis] = None
    victim_analysis: Optional[VictimAnalysis] = None
    fingerprints: list = field(default_factory=list)
    profiles: dict = field(default_factory=dict)
    retry_audit: Optional[RetryAudit] = None

    # correlation
    greynoise_summary: dict = field(default_factory=dict)
    request_country_counts: dict = field(default_factory=dict)
    request_network_types: dict = field(default_factory=dict)
    response_network_types: dict = field(default_factory=dict)

    # -- convenience -----------------------------------------------------

    @property
    def quic_attacks(self) -> list:
        return self.quic_detector.attacks if self.quic_detector else []

    @property
    def common_attacks(self) -> list:
        return self.common_detector.attacks if self.common_detector else []

    @property
    def malformed_counts(self) -> dict:
        """Typed malformed-input tallies, keyed by reason slug."""
        prefix = "malformed:"
        return {
            key[len(prefix):]: count
            for key, count in self.class_counts.items()
            if key.startswith(prefix)
        }

    @property
    def sanitized_quic_packets(self) -> int:
        return sum(self.hourly_other_quic.values())

    @property
    def request_share(self) -> float:
        """Requests among sanitized QUIC packets (paper: 15%)."""
        requests = sum(self.hourly_requests.values())
        total = requests + sum(self.hourly_responses.values())
        return requests / total if total else 0.0

    @property
    def research_share(self) -> float:
        """Research scanners among all QUIC packets (paper: 98.5%,
        subject to sweep sampling — see the scenario's research weight)."""
        total = self.research_packets + self.sanitized_quic_packets
        return self.research_packets / total if total else 0.0

    def message_type_shares(self) -> dict:
        """Initial/Handshake/... shares over response-session packets."""
        totals: dict[str, int] = {}
        for session in self.response_sessions:
            for name, count in session.message_types.items():
                totals[name] = totals.get(name, 0) + count
        grand = sum(totals.values())
        if not grand:
            return {}
        return {name: count / grand for name, count in sorted(totals.items())}

    @property
    def empty_dcid_share(self) -> float:
        """Backscatter validity: long-header responses with DCID len 0."""
        if not self.response_long_header_packets:
            return 0.0
        return self.response_empty_dcid_packets / self.response_long_header_packets


@dataclass
class PartialState:
    """Mergeable accumulator for the per-packet streaming phase.

    One instance holds everything steps 1–3 produce for one shard of
    the stream.  All state is keyed per source or additive, so merging
    shard partials (sources hash-partitioned, time order preserved
    within each source's substream) reconstructs the serial state
    exactly.  Instances are picklable: worker processes ship them back
    to the parent for merging.
    """

    window_start: Optional[float] = None
    window_end: Optional[float] = None
    total_packets: int = 0
    class_counts: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    response_long_header_packets: int = 0
    response_empty_dcid_packets: int = 0
    passive_retry_packets: int = 0
    #: NON_QUIC_UDP443 rejects keyed by MalformedReason slug — additive,
    #: so sharded merges reproduce the serial tally exactly.
    malformed_counts: dict = field(default_factory=dict)
    quic_source_packets: dict = field(default_factory=dict)
    per_source_hourly: dict = field(default_factory=dict)
    hourly_requests: dict = field(default_factory=dict)
    hourly_responses: dict = field(default_factory=dict)
    sessionizers: dict = field(default_factory=dict)
    sweep: TimeoutSweep = field(default_factory=TimeoutSweep)

    @classmethod
    def initial(cls, config: AnalysisConfig) -> "PartialState":
        timeout = config.session_timeout
        return cls(
            class_counts={packet_class: 0 for packet_class in PacketClass},
            sessionizers={
                PacketClass.QUIC_REQUEST: Sessionizer("quic-request", timeout),
                PacketClass.QUIC_RESPONSE: Sessionizer("quic-response", timeout),
                PacketClass.TCP_BACKSCATTER: Sessionizer("tcp-backscatter", timeout),
                PacketClass.ICMP_BACKSCATTER: Sessionizer("icmp-backscatter", timeout),
            },
        )

    def consume(self, packets: list, classifier: TrafficClassifier) -> None:
        """Feed one time-ordered batch through classify → dissect →
        sessionize → hourly counters → sweep observation."""
        if not packets:
            return
        if self.window_start is None:
            self.window_start = packets[0].timestamp
        self.window_end = packets[-1].timestamp
        self.total_packets += len(packets)
        classified_batch = classifier.classify_batch(packets)
        # local bindings: this loop runs once per packet
        request_cls = PacketClass.QUIC_REQUEST
        response_cls = PacketClass.QUIC_RESPONSE
        tcp_cls = PacketClass.TCP_BACKSCATTER
        icmp_cls = PacketClass.ICMP_BACKSCATTER
        nonquic_cls = PacketClass.NON_QUIC_UDP443
        malformed_counts = self.malformed_counts
        sessionizers = self.sessionizers
        request_add = sessionizers[request_cls].add
        response_add = sessionizers[response_cls].add
        sweep_observe = self.sweep.observe
        quic_source_packets = self.quic_source_packets
        per_source_hourly = self.per_source_hourly
        hourly_requests = self.hourly_requests
        hourly_responses = self.hourly_responses
        response_long = 0
        response_empty_dcid = 0
        retry_packets = 0
        for classified in classified_batch:
            cls = classified.packet_class
            if cls is request_cls or cls is response_cls:
                packet = classified.packet
                timestamp = packet.timestamp
                hour = int(timestamp // HOUR)
                source = packet.src
                quic_source_packets[source] = quic_source_packets.get(source, 0) + 1
                if cls is request_cls:
                    hours = per_source_hourly.setdefault(source, {})
                    hours[hour] = hours.get(hour, 0) + 1
                    hourly_requests[hour] = hourly_requests.get(hour, 0) + 1
                    sweep_observe(source, timestamp)
                    request_add(classified)
                else:
                    hourly_responses[hour] = hourly_responses.get(hour, 0) + 1
                    dissection = classified.dissection
                    if dissection is not None and dissection.valid:
                        if dissection.has_retry:
                            retry_packets += 1
                        if dissection.has_long_header:
                            response_long += 1
                            if dissection.all_dcids_empty:
                                response_empty_dcid += 1
                    sweep_observe(source, timestamp)
                    response_add(classified)
            elif cls is tcp_cls or cls is icmp_cls:
                sessionizers[cls].add(classified)
            elif cls is nonquic_cls:
                dissection = classified.dissection
                if dissection is None:
                    # both ports 443: rejected before dissection
                    reason = "port-conflict"
                elif dissection.reason is not None:
                    reason = dissection.reason.value
                else:
                    reason = "malformed"
                malformed_counts[reason] = malformed_counts.get(reason, 0) + 1
        self.response_long_header_packets += response_long
        self.response_empty_dcid_packets += response_empty_dcid
        self.passive_retry_packets += retry_packets
        _M_PACKETS.inc(len(packets))
        _M_BATCHES.inc()

    def consume_lane(self, packets: list, lane: BatchLane) -> None:
        """Columnar fast-lane twin of :meth:`consume`.

        Classification is inlined as int comparisons, dissection facts
        come as memoized :data:`~repro.core.batchlane.LaneEntry` tuples,
        and sessions absorb precomputed deltas
        (:meth:`~repro.core.sessions.Sessionizer.add_entry`) — no
        ``ClassifiedPacket``/``Dissection`` construction per packet.
        Every counter update mirrors :meth:`consume` exactly; the lane
        equivalence suite pins the two paths bit for bit.
        """
        if not packets:
            return
        if self.window_start is None:
            self.window_start = packets[0].timestamp
        self.window_end = packets[-1].timestamp
        self.total_packets += len(packets)
        entry_for = lane.entry_for
        dissect = lane.dissect_payloads
        malformed_counts = self.malformed_counts
        sessionizers = self.sessionizers
        request_add = sessionizers[PacketClass.QUIC_REQUEST].add_entry
        response_add = sessionizers[PacketClass.QUIC_RESPONSE].add_entry
        tcp_add = sessionizers[PacketClass.TCP_BACKSCATTER].add_entry
        icmp_add = sessionizers[PacketClass.ICMP_BACKSCATTER].add_entry
        sweep_observe = self.sweep.observe
        quic_source_packets = self.quic_source_packets
        per_source_hourly = self.per_source_hourly
        hourly_requests = self.hourly_requests
        hourly_responses = self.hourly_responses
        response_long = 0
        response_empty_dcid = 0
        retry_packets = 0
        n_request = n_response = n_nonquic = n_other_udp = 0
        n_tcp_request = n_tcp_back = n_tcp_other = 0
        n_icmp_back = n_icmp_other = n_other = 0
        for packet in packets:
            if packet.is_udp:
                src443 = packet.src_port == 443
                dst443 = packet.dst_port == 443
                if src443:
                    if dst443:
                        # never observed in the paper's data; rejected
                        # before dissection, like the rich classifier
                        n_nonquic += 1
                        malformed_counts["port-conflict"] = (
                            malformed_counts.get("port-conflict", 0) + 1
                        )
                        continue
                elif not dst443:
                    n_other_udp += 1
                    continue
                entry = None
                delta = None
                if dissect:
                    entry = entry_for(packet.payload)
                    if not entry[0]:
                        n_nonquic += 1
                        reason = entry[1]
                        malformed_counts[reason] = (
                            malformed_counts.get(reason, 0) + 1
                        )
                        continue
                    delta = entry[2]
                timestamp = packet.timestamp
                source = packet.src
                hour = int(timestamp // HOUR)
                quic_source_packets[source] = (
                    quic_source_packets.get(source, 0) + 1
                )
                if dst443:
                    n_request += 1
                    hours = per_source_hourly.setdefault(source, {})
                    hours[hour] = hours.get(hour, 0) + 1
                    hourly_requests[hour] = hourly_requests.get(hour, 0) + 1
                    sweep_observe(source, timestamp)
                    request_add(
                        source,
                        timestamp,
                        packet.dst,
                        packet.dst_port,
                        packet.wire_length,
                        delta,
                    )
                else:
                    n_response += 1
                    hourly_responses[hour] = hourly_responses.get(hour, 0) + 1
                    if entry is not None:
                        if entry[3]:
                            retry_packets += 1
                        if entry[4]:
                            response_long += 1
                            if entry[5]:
                                response_empty_dcid += 1
                    sweep_observe(source, timestamp)
                    response_add(
                        source,
                        timestamp,
                        packet.dst,
                        packet.dst_port,
                        packet.wire_length,
                        delta,
                    )
            elif packet.is_tcp:
                transport = packet.transport
                if transport is None:
                    n_tcp_other += 1
                    continue
                flags = int(transport.flags)
                if (flags & _TCP_SYN_ACK) == _TCP_SYN_ACK or flags & _TCP_RST:
                    n_tcp_back += 1
                    tcp_add(
                        packet.src,
                        packet.timestamp,
                        packet.dst,
                        packet.dst_port,
                        packet.wire_length,
                        None,
                    )
                elif flags & _TCP_SYN:
                    n_tcp_request += 1
                else:
                    n_tcp_other += 1
            elif packet.is_icmp:
                transport = packet.transport
                if (
                    transport is not None
                    and transport.icmp_type in _ICMP_BACKSCATTER_TYPES
                ):
                    n_icmp_back += 1
                    icmp_add(
                        packet.src,
                        packet.timestamp,
                        packet.dst,
                        None,
                        packet.wire_length,
                        None,
                    )
                else:
                    n_icmp_other += 1
            else:
                n_other += 1
        counters = lane.counters
        counters[PacketClass.QUIC_REQUEST] += n_request
        counters[PacketClass.QUIC_RESPONSE] += n_response
        counters[PacketClass.NON_QUIC_UDP443] += n_nonquic
        counters[PacketClass.OTHER_UDP] += n_other_udp
        counters[PacketClass.TCP_REQUEST] += n_tcp_request
        counters[PacketClass.TCP_BACKSCATTER] += n_tcp_back
        counters[PacketClass.TCP_OTHER] += n_tcp_other
        counters[PacketClass.ICMP_BACKSCATTER] += n_icmp_back
        counters[PacketClass.ICMP_OTHER] += n_icmp_other
        counters[PacketClass.OTHER] += n_other
        self.response_long_header_packets += response_long
        self.response_empty_dcid_packets += response_empty_dcid
        self.passive_retry_packets += retry_packets
        _M_PACKETS.inc(len(packets))
        _M_BATCHES.inc()

    def consume_lane_records(self, records: list, lane: BatchLane) -> None:
        """:meth:`consume_lane` over scalar wire records.

        The shared-memory shard transport ships packets as flat field
        tuples (see :mod:`repro.core.parallel`) — one record is
        ``(timestamp, src, dst, total_length, proto, kind, f1, f2, f3,
        payload_length, payload)`` with ``kind`` naming the parsed
        transport (0 none, 1 UDP, 2 TCP, 3 ICMP), ``f1/f2`` the ports
        (TCP/UDP) or ICMP type/code, and ``f3`` the TCP flags.
        ``payload`` is only materialized for dissectable UDP/443
        packets; ``payload_length`` is always the true length so wire
        lengths match :attr:`CapturedPacket.wire_length` exactly.
        """
        if not records:
            return
        if self.window_start is None:
            self.window_start = records[0][0]
        self.window_end = records[-1][0]
        self.total_packets += len(records)
        entry_for = lane.entry_for
        dissect = lane.dissect_payloads
        malformed_counts = self.malformed_counts
        sessionizers = self.sessionizers
        request_add = sessionizers[PacketClass.QUIC_REQUEST].add_entry
        response_add = sessionizers[PacketClass.QUIC_RESPONSE].add_entry
        tcp_add = sessionizers[PacketClass.TCP_BACKSCATTER].add_entry
        icmp_add = sessionizers[PacketClass.ICMP_BACKSCATTER].add_entry
        sweep_observe = self.sweep.observe
        quic_source_packets = self.quic_source_packets
        per_source_hourly = self.per_source_hourly
        hourly_requests = self.hourly_requests
        hourly_responses = self.hourly_responses
        response_long = 0
        response_empty_dcid = 0
        retry_packets = 0
        n_request = n_response = n_nonquic = n_other_udp = 0
        n_tcp_request = n_tcp_back = n_tcp_other = 0
        n_icmp_back = n_icmp_other = n_other = 0
        for record in records:
            (
                timestamp,
                source,
                dst,
                total_length,
                proto,
                kind,
                f1,
                f2,
                f3,
                payload_length,
                payload,
            ) = record
            if proto == 17:
                # ports mirror CapturedPacket's derivation: present for
                # parsed UDP/TCP transports, None otherwise
                if kind == 1 or kind == 2:
                    src443 = f1 == 443
                    dst443 = f2 == 443
                    dst_port = f2
                else:
                    n_other_udp += 1
                    continue
                if src443:
                    if dst443:
                        n_nonquic += 1
                        malformed_counts["port-conflict"] = (
                            malformed_counts.get("port-conflict", 0) + 1
                        )
                        continue
                elif not dst443:
                    n_other_udp += 1
                    continue
                entry = None
                delta = None
                if dissect:
                    entry = entry_for(payload)
                    if not entry[0]:
                        n_nonquic += 1
                        reason = entry[1]
                        malformed_counts[reason] = (
                            malformed_counts.get(reason, 0) + 1
                        )
                        continue
                    delta = entry[2]
                wire_length = total_length or (
                    28 + payload_length  # IPv4 20 + UDP 8
                    if kind == 1
                    else 40 + payload_length  # IPv4 20 + TCP 20
                )
                hour = int(timestamp // HOUR)
                quic_source_packets[source] = (
                    quic_source_packets.get(source, 0) + 1
                )
                if dst443:
                    n_request += 1
                    hours = per_source_hourly.setdefault(source, {})
                    hours[hour] = hours.get(hour, 0) + 1
                    hourly_requests[hour] = hourly_requests.get(hour, 0) + 1
                    sweep_observe(source, timestamp)
                    request_add(
                        source, timestamp, dst, dst_port, wire_length, delta
                    )
                else:
                    n_response += 1
                    hourly_responses[hour] = hourly_responses.get(hour, 0) + 1
                    if entry is not None:
                        if entry[3]:
                            retry_packets += 1
                        if entry[4]:
                            response_long += 1
                            if entry[5]:
                                response_empty_dcid += 1
                    sweep_observe(source, timestamp)
                    response_add(
                        source, timestamp, dst, dst_port, wire_length, delta
                    )
            elif proto == 6:
                if kind != 2:
                    n_tcp_other += 1
                    continue
                if (f3 & _TCP_SYN_ACK) == _TCP_SYN_ACK or f3 & _TCP_RST:
                    n_tcp_back += 1
                    wire_length = total_length or 40 + payload_length
                    tcp_add(source, timestamp, dst, f2, wire_length, None)
                elif f3 & _TCP_SYN:
                    n_tcp_request += 1
                else:
                    n_tcp_other += 1
            elif proto == 1:
                if kind == 3 and f1 in _ICMP_BACKSCATTER_TYPES:
                    n_icmp_back += 1
                    wire_length = total_length or 28 + payload_length
                    icmp_add(source, timestamp, dst, None, wire_length, None)
                else:
                    n_icmp_other += 1
            else:
                n_other += 1
        counters = lane.counters
        counters[PacketClass.QUIC_REQUEST] += n_request
        counters[PacketClass.QUIC_RESPONSE] += n_response
        counters[PacketClass.NON_QUIC_UDP443] += n_nonquic
        counters[PacketClass.OTHER_UDP] += n_other_udp
        counters[PacketClass.TCP_REQUEST] += n_tcp_request
        counters[PacketClass.TCP_BACKSCATTER] += n_tcp_back
        counters[PacketClass.TCP_OTHER] += n_tcp_other
        counters[PacketClass.ICMP_BACKSCATTER] += n_icmp_back
        counters[PacketClass.ICMP_OTHER] += n_icmp_other
        counters[PacketClass.OTHER] += n_other
        self.response_long_header_packets += response_long
        self.response_empty_dcid_packets += response_empty_dcid
        self.passive_retry_packets += retry_packets
        _M_PACKETS.inc(len(records))
        _M_BATCHES.inc()

    def record_classifier(self, classifier: TrafficClassifier) -> None:
        """Fold the classifier's counters into the partial state.

        Called exactly once per classifier lifetime (serial stream end,
        worker shard end, monitor ``finish()``), which also makes it the
        exactly-once publication point for the classifier-owned metrics:
        per-class packet counts and the dissector-memo hit/miss split.
        """
        for packet_class, count in classifier.counters.items():
            self.class_counts[packet_class] = (
                self.class_counts.get(packet_class, 0) + count
            )
            if count:
                _M_CLASS.inc(count, klass=packet_class.value)
        self.cache_hits += classifier.cache_hits
        self.cache_misses += classifier.cache_misses
        if classifier.cache_hits:
            _M_DISSECT_HITS.inc(classifier.cache_hits)
        if classifier.cache_misses:
            _M_DISSECT_MISSES.inc(classifier.cache_misses)
        publish = getattr(classifier, "publish_lane_metrics", None)
        if publish is not None:
            publish()

    def close(self) -> None:
        """End of shard stream: close every open session.

        Also the exactly-once publication point for the malformed-reason
        counters — called once per shard in the serial, worker, and
        streaming paths, so the metric rides the existing
        snapshot/merge machinery without double counting.
        """
        for sessionizer in self.sessionizers.values():
            sessionizer.flush()
        if obs.enabled():
            for reason, count in self.malformed_counts.items():
                if count:
                    _M_MALFORMED.inc(count, reason=reason)

    def merge_counts(self, other: "PartialState") -> None:
        """Fold the purely additive fields of ``other`` into this one.

        Everything except the sessionizers and the timeout sweep:
        window bounds (min/max), packet/class/cache tallies, malformed
        reasons, per-source and hourly counters.  These fields are
        partition-agnostic — they merge correctly whether the stream
        was split by source IP (``--workers``) or by destination
        prefix (telescope federation, :mod:`repro.federate`), which is
        why :meth:`merge` and the federation's overlap-aware merge
        share this step.
        """
        if other.window_start is not None:
            self.window_start = (
                other.window_start
                if self.window_start is None
                else min(self.window_start, other.window_start)
            )
        if other.window_end is not None:
            self.window_end = (
                other.window_end
                if self.window_end is None
                else max(self.window_end, other.window_end)
            )
        self.total_packets += other.total_packets
        for packet_class, count in other.class_counts.items():
            self.class_counts[packet_class] = (
                self.class_counts.get(packet_class, 0) + count
            )
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.response_long_header_packets += other.response_long_header_packets
        self.response_empty_dcid_packets += other.response_empty_dcid_packets
        self.passive_retry_packets += other.passive_retry_packets
        for reason, count in other.malformed_counts.items():
            self.malformed_counts[reason] = (
                self.malformed_counts.get(reason, 0) + count
            )
        for source, count in other.quic_source_packets.items():
            self.quic_source_packets[source] = (
                self.quic_source_packets.get(source, 0) + count
            )
        for source, hours in other.per_source_hourly.items():
            target = self.per_source_hourly.setdefault(source, {})
            for hour, count in hours.items():
                target[hour] = target.get(hour, 0) + count
        for hour, count in other.hourly_requests.items():
            self.hourly_requests[hour] = self.hourly_requests.get(hour, 0) + count
        for hour, count in other.hourly_responses.items():
            self.hourly_responses[hour] = self.hourly_responses.get(hour, 0) + count

    def merge(self, other: "PartialState") -> None:
        """Fold another source-disjoint shard's state into this one.

        The additive fields ride :meth:`merge_counts`; sessionizers and
        the sweep use their disjoint-source merges (which raise if the
        shards overlap — destination-partitioned vantage states go
        through :func:`repro.federate.merge.merge_federated_states`
        instead).
        """
        self.merge_counts(other)
        for packet_class, sessionizer in other.sessionizers.items():
            mine = self.sessionizers.get(packet_class)
            if mine is None:
                self.sessionizers[packet_class] = sessionizer
            else:
                mine.merge(sessionizer)
        self.sweep.merge(other.sweep)

    # -- snapshot/export hooks (telescope federation) --------------------

    def snapshot_bytes(self) -> bytes:
        """The state as a self-contained pickle for wire shipment.

        Open sessions, the sweep, and every counter travel; callbacks
        are ``None`` by construction on pipeline-owned sessionizers, so
        the pickle is always loadable on the aggregator side.  The
        federation protocol wraps these bytes in checksummed frames
        (:mod:`repro.federate.protocol`).
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_snapshot_bytes(cls, payload: bytes) -> "PartialState":
        """Rehydrate a state shipped by :meth:`snapshot_bytes`."""
        state = pickle.loads(payload)
        if not isinstance(state, cls):
            raise TypeError(
                f"snapshot payload is {type(state).__name__}, not {cls.__name__}"
            )
        return state

    def canonicalize(self) -> None:
        """Put all ordering-sensitive state into canonical order.

        Closed sessions sort by (first_ts, source) and every keyed dict
        is rebuilt key-sorted, so finalization — and everything it
        renders — is identical no matter how the stream was sharded.
        """
        for sessionizer in self.sessionizers.values():
            sessionizer.sort_closed()
        self.malformed_counts = dict(sorted(self.malformed_counts.items()))
        self.quic_source_packets = dict(sorted(self.quic_source_packets.items()))
        self.per_source_hourly = {
            source: dict(sorted(hours.items()))
            for source, hours in sorted(self.per_source_hourly.items())
        }
        self.hourly_requests = dict(sorted(self.hourly_requests.items()))
        self.hourly_responses = dict(sorted(self.hourly_responses.items()))


class QuicsandPipeline:
    """Single-pass streaming analysis of a telescope capture."""

    def __init__(
        self,
        registry: Optional[AsRegistry] = None,
        census: Optional[ActiveScanCensus] = None,
        greynoise: Optional[GreyNoisePlatform] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.registry = registry
        self.census = census
        self.greynoise = greynoise
        self.config = config or AnalysisConfig()

    def process(self, stream: Iterable) -> PipelineResult:
        """Consume a time-ordered packet stream and analyze it.

        With ``config.workers > 1`` the per-packet phase runs sharded
        across worker processes (see :mod:`repro.core.parallel`);
        results are identical to a serial run by construction.
        """
        cfg = self.config
        workers = max(1, int(cfg.workers or 1))
        if workers > 1:
            from repro.core.parallel import run_sharded

            with obs.span(_M_STAGE, stage="per-packet-parallel"):
                state = run_sharded(
                    stream, cfg, workers=workers, batch_size=cfg.batch_size
                )
        else:
            with obs.span(_M_STAGE, stage="per-packet-serial"):
                state = PartialState.initial(cfg)
                if cfg.fast_lane:
                    lane = BatchLane(dissect_payloads=cfg.dissect_payloads)
                    for batch in batched(stream, cfg.batch_size):
                        state.consume_lane(batch, lane)
                    state.record_classifier(lane)
                else:
                    classifier = TrafficClassifier(
                        dissect_payloads=cfg.dissect_payloads
                    )
                    for batch in batched(stream, cfg.batch_size):
                        state.consume(batch, classifier)
                    state.record_classifier(classifier)
                state.close()
        return self._finalize(state)

    def process_record_batches(self, batches: Iterable[list]) -> PipelineResult:
        """Analyze pre-batched 11-field lane records (the fused path).

        The generate→analyze fast lane: a scenario's
        ``lane_batches()`` feed (or any other source of
        :meth:`PartialState.consume_lane_records` batches) goes
        straight into the per-packet phase with no wire serialization
        and no dissection-side parsing.  Identical to
        :meth:`process` over the equivalent packet stream
        (``tests/test_genlane_equivalence.py``).
        """
        cfg = self.config
        with obs.span(_M_STAGE, stage="per-packet-serial"):
            state = PartialState.initial(cfg)
            lane = BatchLane(dissect_payloads=cfg.dissect_payloads)
            for batch in batches:
                state.consume_lane_records(batch, lane)
            state.record_classifier(lane)
            state.close()
        return self._finalize(state)

    def finalize_state(self, state: PartialState) -> PipelineResult:
        """Run the once-per-capture steps on an externally accumulated
        state (the streaming monitor's exact mode uses this — see
        :mod:`repro.stream`)."""
        return self._finalize(state)

    def _finalize(self, state: PartialState) -> PipelineResult:
        """Run the once-per-capture steps on the (merged) state."""
        with obs.span(_M_STAGE, stage="finalize"):
            return self._finalize_timed(state)

    def _finalize_timed(self, state: PartialState) -> PipelineResult:
        state.canonicalize()
        class_counts = {
            cls.value: n for cls, n in state.class_counts.items() if n
        }
        for reason, count in state.malformed_counts.items():
            if count:
                class_counts[f"malformed:{reason}"] = count
        result = PipelineResult(
            window_start=state.window_start or 0.0,
            window_end=state.window_end or 0.0,
            config=self.config,
            total_packets=state.total_packets,
            class_counts=class_counts,
            dissection_failures=state.class_counts.get(
                PacketClass.NON_QUIC_UDP443, 0
            ),
            response_long_header_packets=state.response_long_header_packets,
            response_empty_dcid_packets=state.response_empty_dcid_packets,
            passive_retry_packets=state.passive_retry_packets,
            hourly_requests=state.hourly_requests,
            hourly_responses=state.hourly_responses,
        )
        with obs.span(_M_STAGE, stage="identify-research"):
            self._identify_research(
                result, state.quic_source_packets, state.per_source_hourly
            )
        state.sweep.exclude_sources(result.research_sources)
        result.timeout_sweep = state.sweep
        with obs.span(_M_STAGE, stage="collect-sessions"):
            self._collect_sessions(result, state.sessionizers)
        with obs.span(_M_STAGE, stage="detect-attacks"):
            self._detect_attacks(result)
        with obs.span(_M_STAGE, stage="correlate"):
            self._correlate(result)
        if obs.enabled():
            _M_RESEARCH.inc(len(result.research_sources))
        return result

    # -- finalization steps ----------------------------------------------

    def _identify_research(
        self,
        result: PipelineResult,
        quic_source_packets: dict,
        per_source_hourly: dict,
    ) -> None:
        """Education-AS heavy hitters are research scanners (Figure 2)."""
        cfg = self.config
        for source, count in quic_source_packets.items():
            if count < cfg.research_min_packets:
                continue
            if self.registry is not None:
                if self.registry.network_type_of(source) is not NetworkType.EDUCATION:
                    continue
            result.research_sources.add(source)
            result.research_packets += count
        # hourly research vs other QUIC series
        for source, hours in per_source_hourly.items():
            target = (
                result.hourly_research
                if source in result.research_sources
                else result.hourly_other_quic
            )
            for hour, count in hours.items():
                target[hour] = target.get(hour, 0) + count
        for hour, count in result.hourly_responses.items():
            result.hourly_other_quic[hour] = (
                result.hourly_other_quic.get(hour, 0) + count
            )
        # sanitize the request series
        for source in result.research_sources:
            for hour, count in per_source_hourly.get(source, {}).items():
                result.hourly_requests[hour] -= count
                if result.hourly_requests[hour] <= 0:
                    del result.hourly_requests[hour]

    def _collect_sessions(self, result: PipelineResult, sessionizers: dict) -> None:
        if obs.enabled():
            for packet_class, sessionizer in sessionizers.items():
                if sessionizer.closed:
                    _M_SESSIONS.inc(
                        len(sessionizer.closed), klass=packet_class.value
                    )
        research = result.research_sources
        result.request_sessions = [
            s
            for s in sessionizers[PacketClass.QUIC_REQUEST].closed
            if s.source not in research
        ]
        result.response_sessions = sessionizers[PacketClass.QUIC_RESPONSE].closed
        result.tcp_sessions = sessionizers[PacketClass.TCP_BACKSCATTER].closed
        result.icmp_sessions = sessionizers[PacketClass.ICMP_BACKSCATTER].closed
        if self.registry is not None:
            result.request_network_types = session_network_types(
                result.request_sessions, self.registry
            )
            result.response_network_types = session_network_types(
                result.response_sessions, self.registry
            )
            for session in result.request_sessions:
                system = self.registry.lookup(session.source)
                country = system.country if system else "??"
                result.request_country_counts[country] = (
                    result.request_country_counts.get(country, 0) + 1
                )
        if self.greynoise is not None:
            result.greynoise_summary = self.greynoise.classify_sources(
                {s.source for s in result.request_sessions}
            )

    def _detect_attacks(self, result: PipelineResult) -> None:
        result.quic_detector = DosDetector(self.config.thresholds)
        result.quic_detector.detect_all(result.response_sessions)
        result.common_detector = DosDetector(self.config.thresholds)
        result.common_detector.detect_all(result.tcp_sessions)
        result.common_detector.detect_all(result.icmp_sessions)
        if obs.enabled():
            vectors: dict = {}
            for attack in result.quic_attacks + result.common_attacks:
                vectors[attack.vector] = vectors.get(attack.vector, 0) + 1
            for vector, count in vectors.items():
                _M_ATTACKS.inc(count, vector=vector)

    def _correlate(self, result: PipelineResult) -> None:
        result.multivector = correlate_attacks(
            result.quic_attacks, result.common_attacks
        )
        result.victim_analysis = analyze_victims(
            result.quic_attacks, self.census, self.registry
        )
        result.fingerprints = fingerprint_attacks(result.quic_attacks, self.census)
        result.profiles = provider_profiles(result.fingerprints)
        if self.census is not None:
            result.retry_audit = audit_retry(
                census=self.census,
                rng=SeededRng(self.config.audit_seed),
                passive_retry_packets=result.passive_retry_packets,
                passive_quic_packets=result.sanitized_quic_packets,
                top_victims=result.victim_analysis.top_victims(
                    self.config.retry_probe_count
                ),
            )
