"""The end-to-end QUICsand pipeline.

One streaming pass over a telescope capture produces everything the
paper's evaluation reports:

1. classify each packet (port + dissector, Section 4.1);
2. keep hourly counters — research-vs-other for Figure 2, sanitized
   requests/responses for Figure 3;
3. feed per-class sessionizers (5-minute timeout) and the timeout
   sweep of Figure 4;
4. at finalization: identify research scanners (education-AS sources
   above a packet threshold) and remove their bias; detect floods with
   the Moore thresholds; correlate multi-vector attacks; attribute
   victims via census and PeeringDB metadata; fingerprint SCID usage;
   correlate request sources with GreyNoise; audit RETRY.

The pipeline never stores raw packets — memory is bounded by the
number of distinct sources and sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.internet.activescan import ActiveScanCensus
from repro.internet.asn import AsRegistry, NetworkType
from repro.internet.greynoise import GreyNoisePlatform
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dos import DosDetector, DosThresholds
from repro.core.multivector import MultiVectorAnalysis, correlate_attacks
from repro.core.retry_audit import RetryAudit, audit_retry
from repro.core.scid import fingerprint_attacks, provider_profiles
from repro.core.sessions import DEFAULT_TIMEOUT, Sessionizer, TimeoutSweep
from repro.core.victims import VictimAnalysis, analyze_victims, session_network_types


@dataclass
class AnalysisConfig:
    """Pipeline knobs (paper defaults)."""

    session_timeout: float = DEFAULT_TIMEOUT
    thresholds: DosThresholds = field(default_factory=DosThresholds)
    #: a source is a research scanner when it sits in an education AS
    #: and exceeds this many QUIC packets.
    research_min_packets: int = 1000
    dissect_payloads: bool = True
    #: probe this many top victims in the active RETRY audit.
    retry_probe_count: int = 10
    audit_seed: int = 424242


@dataclass
class PipelineResult:
    """Everything the benches and examples render."""

    window_start: float
    window_end: float
    config: AnalysisConfig

    # packet-level
    total_packets: int = 0
    class_counts: dict = field(default_factory=dict)
    research_sources: set = field(default_factory=set)
    research_packets: int = 0
    hourly_research: dict = field(default_factory=dict)
    hourly_other_quic: dict = field(default_factory=dict)
    hourly_requests: dict = field(default_factory=dict)
    hourly_responses: dict = field(default_factory=dict)
    dissection_failures: int = 0
    response_long_header_packets: int = 0
    response_empty_dcid_packets: int = 0
    passive_retry_packets: int = 0

    # session-level (sanitized: research removed)
    request_sessions: list = field(default_factory=list)
    response_sessions: list = field(default_factory=list)
    tcp_sessions: list = field(default_factory=list)
    icmp_sessions: list = field(default_factory=list)
    timeout_sweep: Optional[TimeoutSweep] = None

    # attack-level
    quic_detector: Optional[DosDetector] = None
    common_detector: Optional[DosDetector] = None
    multivector: Optional[MultiVectorAnalysis] = None
    victim_analysis: Optional[VictimAnalysis] = None
    fingerprints: list = field(default_factory=list)
    profiles: dict = field(default_factory=dict)
    retry_audit: Optional[RetryAudit] = None

    # correlation
    greynoise_summary: dict = field(default_factory=dict)
    request_country_counts: dict = field(default_factory=dict)
    request_network_types: dict = field(default_factory=dict)
    response_network_types: dict = field(default_factory=dict)

    # -- convenience -----------------------------------------------------

    @property
    def quic_attacks(self) -> list:
        return self.quic_detector.attacks if self.quic_detector else []

    @property
    def common_attacks(self) -> list:
        return self.common_detector.attacks if self.common_detector else []

    @property
    def sanitized_quic_packets(self) -> int:
        return sum(self.hourly_other_quic.values())

    @property
    def request_share(self) -> float:
        """Requests among sanitized QUIC packets (paper: 15%)."""
        requests = sum(self.hourly_requests.values())
        total = requests + sum(self.hourly_responses.values())
        return requests / total if total else 0.0

    @property
    def research_share(self) -> float:
        """Research scanners among all QUIC packets (paper: 98.5%,
        subject to sweep sampling — see the scenario's research weight)."""
        total = self.research_packets + self.sanitized_quic_packets
        return self.research_packets / total if total else 0.0

    def message_type_shares(self) -> dict:
        """Initial/Handshake/... shares over response-session packets."""
        totals: dict[str, int] = {}
        for session in self.response_sessions:
            for name, count in session.message_types.items():
                totals[name] = totals.get(name, 0) + count
        grand = sum(totals.values())
        if not grand:
            return {}
        return {name: count / grand for name, count in sorted(totals.items())}

    @property
    def empty_dcid_share(self) -> float:
        """Backscatter validity: long-header responses with DCID len 0."""
        if not self.response_long_header_packets:
            return 0.0
        return self.response_empty_dcid_packets / self.response_long_header_packets


class QuicsandPipeline:
    """Single-pass streaming analysis of a telescope capture."""

    def __init__(
        self,
        registry: Optional[AsRegistry] = None,
        census: Optional[ActiveScanCensus] = None,
        greynoise: Optional[GreyNoisePlatform] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.registry = registry
        self.census = census
        self.greynoise = greynoise
        self.config = config or AnalysisConfig()

    def process(self, stream: Iterable) -> PipelineResult:
        """Consume a time-ordered packet stream and analyze it."""
        cfg = self.config
        classifier = TrafficClassifier(dissect_payloads=cfg.dissect_payloads)
        sweep = TimeoutSweep()
        sessionizers = {
            PacketClass.QUIC_REQUEST: Sessionizer("quic-request", cfg.session_timeout),
            PacketClass.QUIC_RESPONSE: Sessionizer("quic-response", cfg.session_timeout),
            PacketClass.TCP_BACKSCATTER: Sessionizer("tcp-backscatter", cfg.session_timeout),
            PacketClass.ICMP_BACKSCATTER: Sessionizer("icmp-backscatter", cfg.session_timeout),
        }
        quic_source_packets: dict[int, int] = {}
        per_source_hourly: dict[int, dict] = {}
        hourly_requests: dict[int, int] = {}
        hourly_responses: dict[int, int] = {}
        window_start = None
        window_end = None
        total = 0
        response_long = 0
        response_empty_dcid = 0
        retry_packets = 0

        for packet in stream:
            total += 1
            if window_start is None:
                window_start = packet.timestamp
            window_end = packet.timestamp
            classified = classifier.classify(packet)
            cls = classified.packet_class
            if cls.is_quic:
                hour = int(packet.timestamp // HOUR)
                source = packet.src
                quic_source_packets[source] = quic_source_packets.get(source, 0) + 1
                if cls is PacketClass.QUIC_REQUEST:
                    per_source_hourly.setdefault(source, {})
                    per_source_hourly[source][hour] = (
                        per_source_hourly[source].get(hour, 0) + 1
                    )
                    hourly_requests[hour] = hourly_requests.get(hour, 0) + 1
                else:
                    hourly_responses[hour] = hourly_responses.get(hour, 0) + 1
                    dissection = classified.dissection
                    if dissection is not None and dissection.valid:
                        if dissection.has_retry:
                            retry_packets += 1
                        long_headers = [
                            p
                            for p in dissection.packets
                            if p.packet_type.name in ("INITIAL", "HANDSHAKE", "ZERO_RTT")
                        ]
                        if long_headers:
                            response_long += 1
                            if all(p.dcid == b"" for p in long_headers):
                                response_empty_dcid += 1
                sweep.observe(source, packet.timestamp)
                sessionizers[cls].add(classified)
            elif cls in (PacketClass.TCP_BACKSCATTER, PacketClass.ICMP_BACKSCATTER):
                sessionizers[cls].add(classified)

        for sessionizer in sessionizers.values():
            sessionizer.flush()

        result = PipelineResult(
            window_start=window_start or 0.0,
            window_end=window_end or 0.0,
            config=cfg,
            total_packets=total,
            class_counts={cls.value: n for cls, n in classifier.counters.items() if n},
            dissection_failures=classifier.false_positive_count,
            response_long_header_packets=response_long,
            response_empty_dcid_packets=response_empty_dcid,
            passive_retry_packets=retry_packets,
            hourly_requests=hourly_requests,
            hourly_responses=hourly_responses,
        )
        self._identify_research(result, quic_source_packets, per_source_hourly)
        sweep.exclude_sources(result.research_sources)
        result.timeout_sweep = sweep
        self._collect_sessions(result, sessionizers)
        self._detect_attacks(result)
        self._correlate(result)
        return result

    # -- finalization steps ----------------------------------------------

    def _identify_research(
        self,
        result: PipelineResult,
        quic_source_packets: dict,
        per_source_hourly: dict,
    ) -> None:
        """Education-AS heavy hitters are research scanners (Figure 2)."""
        cfg = self.config
        for source, count in quic_source_packets.items():
            if count < cfg.research_min_packets:
                continue
            if self.registry is not None:
                if self.registry.network_type_of(source) is not NetworkType.EDUCATION:
                    continue
            result.research_sources.add(source)
            result.research_packets += count
        # hourly research vs other QUIC series
        for source, hours in per_source_hourly.items():
            target = (
                result.hourly_research
                if source in result.research_sources
                else result.hourly_other_quic
            )
            for hour, count in hours.items():
                target[hour] = target.get(hour, 0) + count
        for hour, count in result.hourly_responses.items():
            result.hourly_other_quic[hour] = (
                result.hourly_other_quic.get(hour, 0) + count
            )
        # sanitize the request series
        for source in result.research_sources:
            for hour, count in per_source_hourly.get(source, {}).items():
                result.hourly_requests[hour] -= count
                if result.hourly_requests[hour] <= 0:
                    del result.hourly_requests[hour]

    def _collect_sessions(self, result: PipelineResult, sessionizers: dict) -> None:
        research = result.research_sources
        result.request_sessions = [
            s
            for s in sessionizers[PacketClass.QUIC_REQUEST].closed
            if s.source not in research
        ]
        result.response_sessions = sessionizers[PacketClass.QUIC_RESPONSE].closed
        result.tcp_sessions = sessionizers[PacketClass.TCP_BACKSCATTER].closed
        result.icmp_sessions = sessionizers[PacketClass.ICMP_BACKSCATTER].closed
        if self.registry is not None:
            result.request_network_types = session_network_types(
                result.request_sessions, self.registry
            )
            result.response_network_types = session_network_types(
                result.response_sessions, self.registry
            )
            for session in result.request_sessions:
                system = self.registry.lookup(session.source)
                country = system.country if system else "??"
                result.request_country_counts[country] = (
                    result.request_country_counts.get(country, 0) + 1
                )
        if self.greynoise is not None:
            result.greynoise_summary = self.greynoise.classify_sources(
                {s.source for s in result.request_sessions}
            )

    def _detect_attacks(self, result: PipelineResult) -> None:
        result.quic_detector = DosDetector(self.config.thresholds)
        result.quic_detector.detect_all(result.response_sessions)
        result.common_detector = DosDetector(self.config.thresholds)
        result.common_detector.detect_all(result.tcp_sessions)
        result.common_detector.detect_all(result.icmp_sessions)

    def _correlate(self, result: PipelineResult) -> None:
        result.multivector = correlate_attacks(
            result.quic_attacks, result.common_attacks
        )
        result.victim_analysis = analyze_victims(
            result.quic_attacks, self.census, self.registry
        )
        result.fingerprints = fingerprint_attacks(result.quic_attacks, self.census)
        result.profiles = provider_profiles(result.fingerprints)
        if self.census is not None:
            result.retry_audit = audit_retry(
                census=self.census,
                rng=SeededRng(self.config.audit_seed),
                passive_retry_packets=result.passive_retry_packets,
                passive_quic_packets=result.sanitized_quic_packets,
                top_victims=result.victim_analysis.top_victims(
                    self.config.retry_probe_count
                ),
            )
