"""Machine-readable result export (the artifact angle).

The paper publishes its analysis artifacts on Zenodo; this module is
the reproduction's equivalent: every figure's underlying data series is
written as CSV plus one JSON summary, so results can be re-plotted or
diffed across runs without re-running the pipeline.

Layout written by :func:`export_results`::

    <dir>/summary.json          headline numbers
    <dir>/fig2_hourly.csv       hour, research_packets, other_packets
    <dir>/fig3_hourly.csv       hour, requests, responses
    <dir>/fig4_timeout.csv      timeout_minutes, sessions
    <dir>/fig5_network_types.csv type, request_sessions, response_sessions
    <dir>/fig6_victims.csv      victim, attacks
    <dir>/fig7_attacks.csv      vector, start, duration, packets, max_pps
    <dir>/fig8_categories.csv   category, count
    <dir>/fig12_overlap.csv     overlap_share
    <dir>/fig13_gaps.csv        gap_seconds
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.net.addresses import format_ipv4
from repro.core.pipeline import PipelineResult


def _write_csv(path: Path, header: list, rows: list) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_results(result: PipelineResult, directory: Union[str, Path]) -> list:
    """Write all data series; returns the list of files written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    def emit(name: str, header: list, rows: list) -> None:
        path = directory / name
        _write_csv(path, header, rows)
        written.append(path)

    hours = sorted(set(result.hourly_research) | set(result.hourly_other_quic))
    emit(
        "fig2_hourly.csv",
        ["hour", "research_packets", "other_packets"],
        [
            [h, result.hourly_research.get(h, 0), result.hourly_other_quic.get(h, 0)]
            for h in hours
        ],
    )
    hours = sorted(set(result.hourly_requests) | set(result.hourly_responses))
    emit(
        "fig3_hourly.csv",
        ["hour", "requests", "responses"],
        [
            [h, result.hourly_requests.get(h, 0), result.hourly_responses.get(h, 0)]
            for h in hours
        ],
    )
    if result.timeout_sweep is not None and result.timeout_sweep.source_count:
        emit(
            "fig4_timeout.csv",
            ["timeout_minutes", "sessions"],
            [[m, s] for m, s in result.timeout_sweep.sweep(range(1, 61))],
        )
    emit(
        "fig5_network_types.csv",
        ["network_type", "request_sessions", "response_sessions"],
        [
            [
                t.value,
                result.request_network_types.get(t, 0),
                result.response_network_types.get(t, 0),
            ]
            for t in sorted(
                set(result.request_network_types) | set(result.response_network_types),
                key=lambda t: t.value,
            )
        ],
    )
    if result.victim_analysis is not None:
        emit(
            "fig6_victims.csv",
            ["victim", "attacks"],
            [
                [format_ipv4(ip), n]
                for ip, n in sorted(
                    result.victim_analysis.attacks_per_victim.items(),
                    key=lambda kv: -kv[1],
                )
            ],
        )
    emit(
        "fig7_attacks.csv",
        ["vector", "start", "duration", "packets", "max_pps"],
        [
            [a.vector, f"{a.start:.3f}", f"{a.duration:.3f}", a.packet_count, f"{a.max_pps:.4f}"]
            for a in result.quic_attacks + result.common_attacks
        ],
    )
    if result.multivector is not None:
        emit(
            "fig8_categories.csv",
            ["category", "count"],
            sorted(result.multivector.by_category().items()),
        )
        emit(
            "fig12_overlap.csv",
            ["overlap_share"],
            [[f"{s:.4f}"] for s in result.multivector.overlap_shares],
        )
        emit(
            "fig13_gaps.csv",
            ["gap_seconds"],
            [[f"{g:.1f}"] for g in result.multivector.sequential_gaps],
        )

    summary = {
        "window_start": result.window_start,
        "window_end": result.window_end,
        "total_packets": result.total_packets,
        "class_counts": result.class_counts,
        "research_sources": len(result.research_sources),
        "research_packets": result.research_packets,
        "request_share": result.request_share,
        "quic_attacks": len(result.quic_attacks),
        "common_attacks": len(result.common_attacks),
        "detection_rate": (
            result.quic_detector.detection_rate if result.quic_detector else None
        ),
        "victims": (
            result.victim_analysis.victim_count if result.victim_analysis else 0
        ),
        "known_server_share": (
            result.victim_analysis.known_server_share if result.victim_analysis else 0
        ),
        "category_shares": (
            result.multivector.category_shares() if result.multivector else {}
        ),
        "message_type_shares": result.message_type_shares(),
        "empty_dcid_share": result.empty_dcid_share,
        "passive_retry_packets": result.passive_retry_packets,
        "retry_deployed": (
            result.retry_audit.retry_deployed if result.retry_audit else None
        ),
    }
    summary_path = directory / "summary.json"
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    written.append(summary_path)
    return written
