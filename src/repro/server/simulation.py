"""A minimal discrete-event simulation loop.

Deliberately tiny: a time-ordered heap of callbacks.  The NGINX model
processes its (deterministic-rate) replay stream inline for speed and
uses the loop for cross-cutting events — legitimate client probes,
periodic state expiry, measurement sampling.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class EventLoop:
    """Heap-based event scheduler with stable FIFO tie-breaking."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start
        self._heap: list = []
        self._sequence = 0

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._sequence, callback))
        self._sequence += 1

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self.schedule_at(self.now + delay, callback)

    def schedule_every(
        self, interval: float, callback: Callable[[], None], until: Optional[float] = None
    ) -> None:
        """Repeat ``callback`` every ``interval`` seconds (optionally bounded)."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            next_time = self.now + interval
            if until is None or next_time <= until:
                self.schedule_at(next_time, tick)

        self.schedule_at(self.now + interval, tick)

    def run_until(self, end: float) -> None:
        """Process events with timestamps <= end; advances ``now`` to end."""
        while self._heap and self._heap[0][0] <= end:
            when, _seq, callback = heapq.heappop(self._heap)
            self.now = when
            callback()
        self.now = max(self.now, end)

    def run(self) -> None:
        """Drain every scheduled event."""
        while self._heap:
            when, _seq, callback = heapq.heappop(self._heap)
            self.now = when
            callback()

    @property
    def pending(self) -> int:
        return len(self._heap)
