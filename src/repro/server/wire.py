"""Wire-level NGINX worker pool: the DES's ground truth.

:mod:`repro.server.nginx` models Table 1 at packet-rate level for
speed.  This module is the *slow but real* counterpart: a worker pool
that terminates actual QUIC datagrams with
:class:`~repro.quic.connection.ServerConnection` instances — real
Initial decryption, real Retry tokens, real response trains — under the
same resource policy (per-worker connection tables, periodic idle
sweeps).  Tests replay identical workloads through both and assert the
abstract model's availability matches the wire behaviour, which is what
licenses running Table 1 at 500k packets on the fast model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.rng import SeededRng
from repro.quic.connection import Datagram, ServerConnection
from repro.server.nginx import NginxConfig


@dataclass
class _WireWorker:
    """One worker: a real QUIC endpoint plus a bounded state table."""

    endpoint: ServerConnection
    capacity: int
    #: original-DCID -> creation timestamp, insertion-ordered.
    created_at: dict = field(default_factory=dict)

    @property
    def table_full(self) -> bool:
        return len(self.created_at) >= self.capacity

    def sweep(self, cutoff: float) -> None:
        for odcid in [k for k, t in self.created_at.items() if t <= cutoff]:
            del self.created_at[odcid]
            self.endpoint.connections.pop(odcid, None)


class WireNginxServer:
    """A pool of real QUIC-terminating workers with NGINX's limits."""

    def __init__(
        self,
        config: Optional[NginxConfig] = None,
        rng: Optional[SeededRng] = None,
        keepalive_pings: int = 2,
    ) -> None:
        self.config = config or NginxConfig()
        rng = rng or SeededRng(1)
        self._workers = [
            _WireWorker(
                endpoint=ServerConnection(
                    rng.child(f"worker:{i}"),
                    retry_enabled=self.config.retry_enabled,
                    keepalive_pings=keepalive_pings,
                    issue_session_state=False,
                ),
                capacity=self.config.connections_per_worker,
            )
            for i in range(self.config.workers)
        ]
        # Workers share the listening socket's token secrets: a Retry
        # token minted by one worker validates at any other.
        for worker in self._workers[1:]:
            worker.endpoint.token_minter = self._workers[0].endpoint.token_minter
            worker.endpoint.address_token_minter = (
                self._workers[0].endpoint.address_token_minter
            )
            worker.endpoint.ticket_minter = self._workers[0].endpoint.ticket_minter
        self._next_cleanup = self.config.cleanup_interval
        self.dropped_table_full = 0

    def _run_cleanups(self, now: float) -> None:
        while now >= self._next_cleanup:
            cutoff = self._next_cleanup - self.config.min_idle
            for worker in self._workers:
                worker.sweep(cutoff)
            self._next_cleanup += self.config.cleanup_interval

    def _worker_for(self, client_ip: int, client_port: int) -> _WireWorker:
        return self._workers[(client_ip * 31 + client_port) % len(self._workers)]

    def handle_datagram(
        self, data: bytes, client_ip: int, client_port: int, now: float
    ) -> list:
        """Terminate one datagram; returns real response datagrams."""
        self._run_cleanups(now)
        worker = self._worker_for(client_ip, client_port)
        known = set(worker.endpoint.connections)
        if worker.table_full and not self.config.retry_enabled:
            # a full accept table drops new handshakes before crypto
            self.dropped_table_full += 1
            return []
        responses: list[Datagram] = worker.endpoint.handle_datagram(
            data, client_ip, client_port, now
        )
        for odcid in set(worker.endpoint.connections) - known:
            if worker.table_full:
                # raced past capacity inside one datagram: evict newest
                worker.endpoint.connections.pop(odcid, None)
                self.dropped_table_full += 1
                return []
            worker.created_at[odcid] = now
        return responses

    @property
    def stats(self) -> dict:
        """Aggregated worker statistics (ServerConnection counters)."""
        totals: dict[str, int] = {}
        for worker in self._workers:
            for key, value in worker.endpoint.stats.items():
                totals[key] = totals.get(key, 0) + value
        totals["dropped_table_full"] = self.dropped_table_full
        return totals

    @property
    def open_states(self) -> int:
        return sum(len(w.created_at) for w in self._workers)
