"""Attack and probe clients for the server benchmark.

The paper records 500,000 packets with quiche (Cloudflare's reference
client) and replays *only the client Initial messages* at varying rates
— replaying real traffic avoids hand-crafting bias.  The replay client
mirrors that: it records distinct flows (5-tuple hashes standing in for
the recorded pcap) and replays them at a constant packet rate.  A replay
never holds a *fresh* Retry token, which is precisely why RETRY defeats
it.

:class:`LegitimateClient` issues low-rate genuine handshakes to measure
service availability from a real user's perspective; with RETRY on it
pays the extra round-trip (the paper's "Extra RTT" column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.rng import SeededRng


@dataclass
class ReplayedInitial:
    """One replayed client Initial."""

    timestamp: float
    flow_hash: int


class ReplayClient:
    """Replays recorded client Initials at a fixed packet rate."""

    def __init__(self, rng: SeededRng, recorded_flows: int = 500_000) -> None:
        if recorded_flows < 1:
            raise ValueError("need at least one recorded flow")
        self.rng = rng.child("replay-client")
        # The recording: distinct flows with distinct 5-tuples/DCIDs.
        self._flow_hashes = [
            self.rng.randint(0, 2**32 - 1) for _ in range(recorded_flows)
        ]

    def replay(
        self, rate_pps: float, total_packets: int, start: float = 0.0
    ) -> Iterator[ReplayedInitial]:
        """Yield replayed Initials at ``rate_pps`` in time order."""
        if rate_pps <= 0:
            raise ValueError("replay rate must be positive")
        count = min(total_packets, len(self._flow_hashes))
        spacing = 1.0 / rate_pps
        for i in range(count):
            yield ReplayedInitial(
                timestamp=start + i * spacing, flow_hash=self._flow_hashes[i]
            )

    @property
    def recorded_flow_count(self) -> int:
        return len(self._flow_hashes)


@dataclass
class ProbeOutcome:
    """Result of one legitimate handshake attempt."""

    timestamp: float
    served: bool
    round_trips: int


class LegitimateClient:
    """Low-rate genuine client used to sample service availability."""

    def __init__(self, rng: SeededRng) -> None:
        self.rng = rng.child("legit-client")

    def probe(self, server, now: float) -> ProbeOutcome:
        """One genuine connection attempt against the model server."""
        flow_hash = self.rng.randint(0, 2**32 - 1)
        if server.config.retry_enabled:
            # First Initial earns a Retry; the client echoes the token.
            first = server.handle_initial(now, flow_hash, has_valid_token=False)
            if first == 0:
                return ProbeOutcome(now, served=False, round_trips=1)
            second = server.handle_initial(
                now + 0.001, flow_hash, has_valid_token=True
            )
            served = second > 0
            if served:
                server.complete_handshake(now + 0.002, flow_hash)
            return ProbeOutcome(now, served=served, round_trips=2)
        datagrams = server.handle_initial(now, flow_hash)
        served = datagrams > 0
        if served:
            server.complete_handshake(now + 0.001, flow_hash)
        return ProbeOutcome(now, served=served, round_trips=1)
