"""The NGINX-like QUIC server model.

What makes a QUIC handshake flood effective (Section 3, Table 1) is the
*stateful* first round-trip: the server answers an unverified Initial
with cryptographic work **and** a connection context that lingers while
the (spoofed) client never completes.  The model captures exactly the
resources that bind in the paper's benchmark:

- **per-worker connection tables** — ``workers x connections_per_worker``
  slots (the paper uses 1024 per worker, twice the NGINX default);
  a spoofed handshake holds its slot until the server's periodic
  idle-state cleanup fires (a timer that sweeps connections idle for
  more than ``min_idle`` every ``cleanup_interval`` ≈ 60 s).  This
  batched reclamation is what produces Table 1's characteristic
  ``capacity x ceil(duration / cleanup)`` service pattern: 68% at
  100 pps, 7% at 1000 pps on 4 workers, and the twin 26% rows at
  10k/100k pps on 128 workers (the test ends before the first sweep);
- **per-worker crypto CPU** — each accepted Initial costs
  ``crypto_cost`` seconds of its worker's time (certificate signing +
  key schedule); a worker whose backlog exceeds ``max_cpu_backlog``
  drops packets like a full accept queue;
- **RETRY short-circuit** — with retry on, a token-less Initial gets a
  stateless ~HMAC-priced Retry and no slot; replayed floods never
  produce valid tokens, so they die before touching the table.

This reproduces Table 1's structure: the 4-worker table (4096 slots /
60 s ≈ 68 handshakes/s sustainable) collapses at 100-1000 pps, auto=128
workers (131k slots) survives 1000 pps but saturates at 10k+ pps, and
RETRY keeps availability at 100% for one extra round-trip.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

AUTO_WORKERS = 128  # the paper's 128-core machine


@dataclass
class NginxConfig:
    """Server configuration mirroring the Table 1 setups."""

    workers: int = 4
    connections_per_worker: int = 1024  # twice the NGINX default, as in the paper
    retry_enabled: bool = False
    #: CPU seconds per accepted Initial (cert + key schedule).
    crypto_cost: float = 230e-6
    #: CPU seconds per stateless Retry.
    retry_cost: float = 12e-6
    #: period of the idle-connection sweep (handshake timeout timer).
    cleanup_interval: float = 60.0
    #: a connection must be idle at least this long to be swept.
    min_idle: float = 10.0
    #: a worker drops packets once its CPU backlog exceeds this.
    max_cpu_backlog: float = 0.5
    #: datagrams per successful handshake response (Initial + Handshake
    #: + two keep-alive PINGs in the paper's setup).
    responses_per_handshake: int = 4

    @classmethod
    def auto(cls, **kwargs) -> "NginxConfig":
        """The ``worker_processes auto;`` configuration (128 workers)."""
        kwargs.setdefault("workers", AUTO_WORKERS)
        return cls(**kwargs)

    @property
    def table_capacity(self) -> int:
        return self.workers * self.connections_per_worker

    @property
    def sustainable_handshake_rate(self) -> float:
        """Long-run handshakes/s once the table cycles with the sweep."""
        return self.table_capacity / self.cleanup_interval


@dataclass
class _Worker:
    """One NGINX worker process: a connection table plus a CPU."""

    capacity: int
    slots: deque = field(default_factory=deque)  # insertion timestamps
    busy_until: float = 0.0

    def sweep(self, cutoff: float) -> None:
        """Batched idle cleanup: drop states created at or before cutoff."""
        while self.slots and self.slots[0] <= cutoff:
            self.slots.popleft()

    @property
    def table_full(self) -> bool:
        return len(self.slots) >= self.capacity


@dataclass
class ServerStats:
    """Counters the Table 1 harness reads."""

    initials_received: int = 0
    handshakes_served: int = 0
    retries_sent: int = 0
    dropped_table_full: int = 0
    dropped_cpu: int = 0
    responses_sent: int = 0


class NginxQuicServer:
    """Packet-rate-level model of the QUIC terminating server."""

    def __init__(self, config: Optional[NginxConfig] = None) -> None:
        self.config = config or NginxConfig()
        self._workers = [
            _Worker(capacity=self.config.connections_per_worker)
            for _ in range(self.config.workers)
        ]
        self._next_cleanup = self.config.cleanup_interval
        self.stats = ServerStats()

    def _worker_for(self, flow_hash: int) -> _Worker:
        return self._workers[flow_hash % len(self._workers)]

    def _run_cleanups(self, now: float) -> None:
        """Fire every idle sweep due at or before ``now``."""
        while now >= self._next_cleanup:
            cutoff = self._next_cleanup - self.config.min_idle
            for worker in self._workers:
                worker.sweep(cutoff)
            self._next_cleanup += self.config.cleanup_interval

    def handle_initial(
        self, now: float, flow_hash: int, has_valid_token: bool = False
    ) -> int:
        """Process one client Initial; returns the datagrams sent back.

        ``has_valid_token`` models a client that echoed a fresh Retry
        token (a replay never has one).
        """
        cfg = self.config
        stats = self.stats
        stats.initials_received += 1
        self._run_cleanups(now)
        worker = self._worker_for(flow_hash)

        if cfg.retry_enabled and not has_valid_token:
            backlog = worker.busy_until - now
            if backlog > cfg.max_cpu_backlog:
                stats.dropped_cpu += 1
                return 0
            worker.busy_until = max(worker.busy_until, now) + cfg.retry_cost
            stats.retries_sent += 1
            stats.responses_sent += 1
            return 1

        backlog = worker.busy_until - now
        if backlog > cfg.max_cpu_backlog:
            stats.dropped_cpu += 1
            return 0
        if worker.table_full:
            stats.dropped_table_full += 1
            return 0
        worker.busy_until = max(worker.busy_until, now) + cfg.crypto_cost
        worker.slots.append(now)
        stats.handshakes_served += 1
        stats.responses_sent += cfg.responses_per_handshake
        return cfg.responses_per_handshake

    def complete_handshake(self, now: float, flow_hash: int) -> None:
        """A legitimate client finished: its slot is released early."""
        worker = self._worker_for(flow_hash)
        if worker.slots:
            worker.slots.popleft()

    def would_serve(self, now: float, flow_hash: int) -> bool:
        """Non-mutating availability probe for legitimate clients."""
        self._run_cleanups(now)
        worker = self._worker_for(flow_hash)
        if worker.busy_until - now > self.config.max_cpu_backlog:
            return False
        if self.config.retry_enabled:
            return True  # retry path is stateless; the client retries
        return not worker.table_full

    @property
    def open_states(self) -> int:
        return sum(len(w.slots) for w in self._workers)
