"""The Table 1 harness: replay floods against server configurations.

Each row replays client Initials at a fixed rate against a fresh server
instance and reports the paper's columns: attack volume, retry flag,
workers, client requests, server responses, service availability and
whether legitimate clients paid an extra round-trip.

Availability follows the paper's method: responses are matched back to
requests (here: a replayed Initial counts as answered when the server
emitted its response train), i.e. ``answered / total``.  Legitimate-
client availability is sampled separately with probe handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import SeededRng
from repro.server.client import LegitimateClient, ReplayClient
from repro.server.nginx import AUTO_WORKERS, NginxConfig, NginxQuicServer


@dataclass
class BenchmarkRow:
    """One Table 1 row."""

    volume_pps: float
    retry: bool
    workers: int
    client_requests: int
    server_responses: int
    availability: float
    legit_availability: float
    extra_rtt: bool

    def as_table_row(self) -> list:
        return [
            f"{int(self.volume_pps):,}",
            "yes" if self.retry else "no",
            "auto=128" if self.workers == AUTO_WORKERS else str(self.workers),
            f"{self.client_requests:,}",
            f"{self.server_responses:,}",
            f"{self.availability * 100:.0f}%",
            f"{self.legit_availability * 100:.0f}%",
            "yes" if self.extra_rtt else "no",
        ]


#: The nine (volume, retry, workers, request-count) rows of Table 1.
TABLE1_SETUPS = [
    (10, False, 4, 3_001),
    (100, False, 4, 30_001),
    (1_000, False, 4, 300_001),
    (1_000, False, AUTO_WORKERS, 300_001),
    (10_000, False, AUTO_WORKERS, 500_000),
    (100_000, False, AUTO_WORKERS, 498_991),
    (1_000, True, 4, 300_001),
    (10_000, True, 4, 500_000),
    (100_000, True, 4, 500_000),
]


def run_attack(
    server: NginxQuicServer,
    rate_pps: float,
    total_requests: int,
    seed: int = 7,
    probe_interval: float = 1.0,
) -> BenchmarkRow:
    """Replay a flood against ``server`` and measure availability."""
    rng = SeededRng(seed)
    replay = ReplayClient(rng, recorded_flows=total_requests)
    legit = LegitimateClient(rng)
    answered = 0
    probes = []
    next_probe = probe_interval
    for initial in replay.replay(rate_pps, total_requests):
        while initial.timestamp >= next_probe:
            probes.append(legit.probe(server, next_probe))
            next_probe += probe_interval
        datagrams = server.handle_initial(initial.timestamp, initial.flow_hash)
        if server.config.retry_enabled:
            # A replayed Initial can only ever earn a Retry, never the
            # handshake — it is answered but induces no state.
            if datagrams > 0:
                answered += 1
        elif datagrams > 0:
            answered += 1
    if not probes:
        probes.append(legit.probe(server, total_requests / rate_pps))
    legit_ok = sum(1 for p in probes if p.served) / len(probes)
    return BenchmarkRow(
        volume_pps=rate_pps,
        retry=server.config.retry_enabled,
        workers=server.config.workers,
        client_requests=total_requests,
        server_responses=server.stats.responses_sent,
        availability=answered / total_requests if total_requests else 0.0,
        legit_availability=legit_ok,
        extra_rtt=server.config.retry_enabled,
    )


def run_table1(scale: float = 1.0, seed: int = 7) -> list:
    """Run every Table 1 row; ``scale`` shrinks request counts for
    quick runs (rates are preserved, so capacity effects persist as
    long as the scaled test still spans the state-linger window)."""
    rows = []
    for volume, retry, workers, requests in TABLE1_SETUPS:
        config = NginxConfig(workers=workers, retry_enabled=retry)
        server = NginxQuicServer(config)
        rows.append(
            run_attack(
                server,
                rate_pps=volume,
                total_requests=max(100, int(requests * scale)),
                seed=seed,
            )
        )
    return rows


def table1_rows(rows: list) -> tuple:
    """(headers, row lists) ready for :func:`repro.util.render.format_table`."""
    headers = [
        "Volume [pps]",
        "QUIC Retry",
        "Workers",
        "Client [#Req]",
        "Server [#Resp]",
        "Replay Answered",
        "Service Avail.",
        "Extra RTT",
    ]
    return headers, [row.as_table_row() for row in rows]
