"""Server substrate: the Table 1 DoS-resiliency experiment.

The paper benchmarks NGINX's QUIC stack on a 128-core machine: client
Initial floods at 10-100,000 pps against worker pools of 4 or 128,
with and without RETRY.  This package rebuilds that testbed as a
discrete-event simulation:

- :mod:`repro.server.simulation` — the event loop,
- :mod:`repro.server.nginx` — the worker-pool server model (per-worker
  connection tables, handshake-state lingering, crypto service times,
  RETRY short-circuit),
- :mod:`repro.server.client` — the replaying attack client (quiche-
  style recorded Initials) and the legitimate probe client,
- :mod:`repro.server.benchmark` — the Table 1 harness.
"""

from repro.server.benchmark import BenchmarkRow, run_attack, run_table1, table1_rows
from repro.server.client import LegitimateClient, ReplayClient
from repro.server.nginx import NginxConfig, NginxQuicServer
from repro.server.simulation import EventLoop
from repro.server.wire import WireNginxServer

__all__ = [
    "BenchmarkRow",
    "run_attack",
    "run_table1",
    "table1_rows",
    "LegitimateClient",
    "ReplayClient",
    "NginxConfig",
    "NginxQuicServer",
    "EventLoop",
    "WireNginxServer",
]
