"""Tests for HKDF, initial secrets, the AEAD substitution and PN coding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic import crypto
from repro.quic.crypto import (
    DecryptError,
    PacketKeys,
    aead_open,
    aead_seal,
    decode_packet_number,
    derive_initial_keys,
    encode_packet_number,
    header_protection_mask,
    hkdf_expand,
    hkdf_expand_label,
    hkdf_extract,
    keys_from_secret,
)
from repro.quic.versions import DRAFT_29, QUIC_V1


def test_hkdf_rfc5869_test_case_1():
    ikm = bytes([0x0B] * 22)
    salt = bytes(range(13))
    info = bytes(range(0xF0, 0xFA))
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_rfc5869_test_case_3_empty_salt_and_info():
    ikm = bytes([0x0B] * 22)
    prk = hkdf_extract(b"", ikm)
    okm = hkdf_expand(prk, b"", 42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_rfc9001_appendix_a_client_initial_keys():
    """The published RFC 9001 A.1 vectors — proof the key schedule is real."""
    client, server = derive_initial_keys(QUIC_V1, bytes.fromhex("8394c8f03e515708"))
    assert client.key.hex() == "1f369613dd76d5467730efcbe3b1a22d"
    assert client.iv.hex() == "fa044b2f42a3fd3b46fb255c"
    assert client.hp.hex() == "9f50449e04a0e810283a1e9933adedd2"
    assert server.key.hex() == "cf3a5331653c364c88f0f379b6067e37"


def test_initial_keys_depend_on_version_salt():
    dcid = bytes.fromhex("8394c8f03e515708")
    v1_client, _ = derive_initial_keys(QUIC_V1, dcid)
    d29_client, _ = derive_initial_keys(DRAFT_29, dcid)
    assert v1_client.key != d29_client.key


def test_initial_keys_depend_on_dcid():
    a, _ = derive_initial_keys(QUIC_V1, b"\x01" * 8)
    b, _ = derive_initial_keys(QUIC_V1, b"\x02" * 8)
    assert a.key != b.key


def test_expand_label_lengths():
    secret = b"\xab" * 32
    assert len(hkdf_expand_label(secret, "quic key", b"", 16)) == 16
    assert len(hkdf_expand_label(secret, "quic iv", b"", 12)) == 12


def test_hkdf_expand_rejects_oversize():
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 256 * 32)


KEYS = keys_from_secret(b"\x11" * 32)


def test_aead_roundtrip():
    sealed = aead_seal(KEYS, 7, b"aad", b"plaintext")
    assert len(sealed) == len(b"plaintext") + crypto.AEAD_TAG_LEN
    assert aead_open(KEYS, 7, b"aad", sealed) == b"plaintext"


def test_aead_detects_ciphertext_tampering():
    sealed = bytearray(aead_seal(KEYS, 7, b"aad", b"plaintext"))
    sealed[0] ^= 0x01
    with pytest.raises(DecryptError):
        aead_open(KEYS, 7, b"aad", bytes(sealed))


def test_aead_detects_aad_tampering():
    sealed = aead_seal(KEYS, 7, b"aad", b"plaintext")
    with pytest.raises(DecryptError):
        aead_open(KEYS, 7, b"AAD", sealed)


def test_aead_detects_wrong_packet_number():
    sealed = aead_seal(KEYS, 7, b"aad", b"plaintext")
    with pytest.raises(DecryptError):
        aead_open(KEYS, 8, b"aad", sealed)


def test_aead_rejects_short_ciphertext():
    with pytest.raises(DecryptError):
        aead_open(KEYS, 0, b"", b"\x00" * 8)


def test_aead_empty_plaintext():
    sealed = aead_seal(KEYS, 0, b"hdr", b"")
    assert len(sealed) == crypto.AEAD_TAG_LEN
    assert aead_open(KEYS, 0, b"hdr", sealed) == b""


@given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**30))
def test_aead_roundtrip_property(plaintext, pn):
    sealed = aead_seal(KEYS, pn, b"h", plaintext)
    assert aead_open(KEYS, pn, b"h", sealed) == plaintext


def test_hp_mask_is_deterministic_and_5_bytes():
    mask = header_protection_mask(b"\x01" * 16, b"\x02" * 16)
    assert len(mask) == 5
    assert mask == header_protection_mask(b"\x01" * 16, b"\x02" * 16)
    assert mask != header_protection_mask(b"\x01" * 16, b"\x03" * 16)


def test_hp_mask_rejects_short_sample():
    with pytest.raises(ValueError):
        header_protection_mask(b"\x01" * 16, b"\x02" * 8)


def test_encode_packet_number_widths():
    assert len(encode_packet_number(0)) == 1
    assert len(encode_packet_number(0xAC5C02, 0xABE8B3)) >= 2


def test_decode_packet_number_rfc_example():
    # RFC 9000 A.3: largest 0xa82f30ea, truncated 0x9b32 in 16 bits.
    assert decode_packet_number(0x9B32, 16, 0xA82F30EA) == 0xA82F9B32


@given(st.integers(min_value=0, max_value=2**40))
def test_pn_roundtrip_with_recent_ack(full_pn):
    largest_acked = max(-1, full_pn - 5)
    wire = encode_packet_number(full_pn, largest_acked)
    decoded = decode_packet_number(
        int.from_bytes(wire, "big"), len(wire) * 8, full_pn - 1
    )
    assert decoded == full_pn
