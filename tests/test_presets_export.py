"""Tests for scenario presets and the CSV/JSON result export."""

import csv
import json

import pytest

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.export import export_results
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.presets import bench_day, demo, paper_month
from repro.util.timeutil import APRIL_1_2021, DAY, HOUR, MAY_1_2021


# -- presets ------------------------------------------------------------


def test_demo_preset():
    config = demo()
    assert config.duration == 3 * HOUR
    assert isinstance(config, ScenarioConfig)


def test_bench_day_preset():
    config = bench_day()
    assert config.duration == DAY
    assert config.research_sample == pytest.approx(1 / 64)


def test_paper_month_preset_window():
    config = paper_month()
    assert config.start == APRIL_1_2021
    assert config.end == MAY_1_2021
    assert config.duration == pytest.approx(30 * DAY)


def test_preset_overrides():
    config = demo(seed=7, duration=1 * HOUR)
    assert config.seed == 7
    assert config.duration == HOUR


def test_paper_month_event_rates_land_at_paper_scale():
    """Planned floods over the month should approach the paper's 2905."""
    config = paper_month()
    expected = config.attacks.quic_floods_per_hour * config.duration / HOUR
    assert expected == pytest.approx(2880, rel=0.01)  # ~4/hour x 30 days


def test_demo_scenario_builds_and_generates():
    scenario = Scenario(demo(seed=3, duration=0.2 * HOUR, research_sample=1 / 8192))
    count = sum(1 for _ in scenario.packets())
    assert count > 50


# -- export ------------------------------------------------------------


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    scenario = Scenario(demo(seed=12, duration=2 * HOUR, research_sample=1 / 2048))
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        config=AnalysisConfig(retry_probe_count=0),
    )
    result = pipeline.process(scenario.packets())
    directory = tmp_path_factory.mktemp("export")
    files = export_results(result, directory)
    return result, directory, files


def test_export_writes_all_files(exported):
    _result, directory, files = exported
    names = {f.name for f in files}
    assert "summary.json" in names
    for expected in (
        "fig2_hourly.csv",
        "fig3_hourly.csv",
        "fig4_timeout.csv",
        "fig5_network_types.csv",
        "fig6_victims.csv",
        "fig7_attacks.csv",
        "fig8_categories.csv",
        "fig12_overlap.csv",
        "fig13_gaps.csv",
    ):
        assert expected in names, expected
        assert (directory / expected).stat().st_size > 0


def test_export_summary_consistent(exported):
    result, directory, _files = exported
    summary = json.loads((directory / "summary.json").read_text())
    assert summary["total_packets"] == result.total_packets
    assert summary["quic_attacks"] == len(result.quic_attacks)
    assert summary["retry_deployed"] is False  # audited, nothing found
    assert 0 <= summary["request_share"] <= 1


def test_export_fig7_rows_match_attacks(exported):
    result, directory, _files = exported
    with open(directory / "fig7_attacks.csv") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(result.quic_attacks) + len(result.common_attacks)
    vectors = {row["vector"] for row in rows}
    assert "quic" in vectors


def test_export_fig6_sorted_descending(exported):
    _result, directory, _files = exported
    with open(directory / "fig6_victims.csv") as handle:
        counts = [int(row["attacks"]) for row in csv.DictReader(handle)]
    assert counts == sorted(counts, reverse=True)


def test_export_fig4_monotone(exported):
    _result, directory, _files = exported
    with open(directory / "fig4_timeout.csv") as handle:
        sessions = [int(row["sessions"]) for row in csv.DictReader(handle)]
    assert sessions == sorted(sessions, reverse=True)


def test_export_creates_directory(tmp_path):
    scenario = Scenario(demo(seed=13, duration=0.2 * HOUR, research_sample=1 / 8192))
    pipeline = QuicsandPipeline(config=AnalysisConfig(retry_probe_count=0))
    result = pipeline.process(scenario.packets())
    target = tmp_path / "nested" / "dir"
    files = export_results(result, target)
    assert target.is_dir()
    assert files
