"""Tests for traffic classification and session aggregation."""

import pytest

from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection, ServerConnection
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.sessions import Session, Sessionizer, TimeoutSweep

RNG = SeededRng(4242)
QUIC_REQUEST_PAYLOAD = ClientConnection(RNG.child("c")).initial_datagram()
_server = ServerConnection(RNG.child("s"))
QUIC_RESPONSE_PAYLOAD = _server.handle_datagram(
    ClientConnection(RNG.child("c2")).initial_datagram(), 1, 2, now=0.0
)[0].data


def udp_packet(ts=0.0, src=1, dst=2, sport=50000, dport=443, payload=b""):
    return CapturedPacket(
        ts, IPv4Header(src, dst, IPProto.UDP), UdpHeader(sport, dport), payload
    )


def tcp_packet(flags, ts=0.0, src=1):
    return CapturedPacket(
        ts, IPv4Header(src, 2, IPProto.TCP), TcpHeader(443, 999, flags=flags)
    )


def icmp_packet(icmp_type, ts=0.0, src=1):
    return CapturedPacket(
        ts, IPv4Header(src, 2, IPProto.ICMP), IcmpHeader(icmp_type)
    )


# -- classification ----------------------------------------------------------


def test_quic_request_classified():
    classifier = TrafficClassifier()
    result = classifier.classify(udp_packet(dport=443, payload=QUIC_REQUEST_PAYLOAD))
    assert result.packet_class is PacketClass.QUIC_REQUEST
    assert result.dissection.valid


def test_quic_response_classified():
    classifier = TrafficClassifier()
    result = classifier.classify(
        udp_packet(sport=443, dport=50000, payload=QUIC_RESPONSE_PAYLOAD)
    )
    assert result.packet_class is PacketClass.QUIC_RESPONSE


def test_non_quic_udp443_excluded():
    classifier = TrafficClassifier()
    result = classifier.classify(udp_packet(dport=443, payload=b"\x01\x02\x03"))
    assert result.packet_class is PacketClass.NON_QUIC_UDP443
    assert classifier.false_positive_count == 1


def test_both_ports_443_excluded():
    classifier = TrafficClassifier()
    result = classifier.classify(
        udp_packet(sport=443, dport=443, payload=QUIC_REQUEST_PAYLOAD)
    )
    assert result.packet_class is PacketClass.NON_QUIC_UDP443


def test_other_udp_ignored():
    classifier = TrafficClassifier()
    result = classifier.classify(udp_packet(sport=53, dport=12345, payload=b"dns"))
    assert result.packet_class is PacketClass.OTHER_UDP


def test_port_only_mode_skips_dissection():
    classifier = TrafficClassifier(dissect_payloads=False)
    result = classifier.classify(udp_packet(dport=443, payload=b"not quic at all"))
    assert result.packet_class is PacketClass.QUIC_REQUEST
    assert result.dissection is None


def test_tcp_classification():
    classifier = TrafficClassifier()
    assert (
        classifier.classify(tcp_packet(TcpFlags.SYN | TcpFlags.ACK)).packet_class
        is PacketClass.TCP_BACKSCATTER
    )
    assert (
        classifier.classify(tcp_packet(TcpFlags.RST)).packet_class
        is PacketClass.TCP_BACKSCATTER
    )
    assert (
        classifier.classify(tcp_packet(TcpFlags.SYN)).packet_class
        is PacketClass.TCP_REQUEST
    )
    assert (
        classifier.classify(tcp_packet(TcpFlags.ACK)).packet_class
        is PacketClass.TCP_OTHER
    )


def test_icmp_classification():
    classifier = TrafficClassifier()
    assert (
        classifier.classify(icmp_packet(IcmpType.ECHO_REPLY)).packet_class
        is PacketClass.ICMP_BACKSCATTER
    )
    assert (
        classifier.classify(icmp_packet(IcmpType.ECHO_REQUEST)).packet_class
        is PacketClass.ICMP_OTHER
    )


def test_classifier_counters():
    classifier = TrafficClassifier()
    classifier.classify(udp_packet(dport=443, payload=QUIC_REQUEST_PAYLOAD))
    classifier.classify(tcp_packet(TcpFlags.RST))
    assert classifier.counters[PacketClass.QUIC_REQUEST] == 1
    assert classifier.counters[PacketClass.TCP_BACKSCATTER] == 1


# -- sessionizer -----------------------------------------------------------


def _classified(packet):
    return TrafficClassifier().classify(packet)


def test_sessionizer_groups_by_source_and_timeout():
    sessionizer = Sessionizer("quic-response", timeout=300.0)
    for ts in (0.0, 100.0, 250.0):
        sessionizer.add(_classified(udp_packet(ts=ts, src=7, sport=443, dport=50000, payload=QUIC_RESPONSE_PAYLOAD)))
    # gap > timeout starts a new session
    sessionizer.add(_classified(udp_packet(ts=600.0, src=7, sport=443, dport=50000, payload=QUIC_RESPONSE_PAYLOAD)))
    sessionizer.flush()
    assert len(sessionizer.closed) == 2
    first, second = sessionizer.closed
    assert first.packet_count == 3
    assert first.duration == 250.0
    assert second.packet_count == 1


def test_sessionizer_separate_sources():
    sessionizer = Sessionizer("quic-request", timeout=300.0)
    for src in (1, 2, 3):
        sessionizer.add(_classified(udp_packet(ts=0.0, src=src, payload=QUIC_REQUEST_PAYLOAD)))
    sessionizer.flush()
    assert len(sessionizer.closed) == 3
    assert sessionizer.source_count == 3


def test_sessionizer_rejects_bad_timeout():
    with pytest.raises(ValueError):
        Sessionizer("x", timeout=0)


def test_session_statistics_accumulate():
    sessionizer = Sessionizer("quic-response", timeout=300.0)
    for i, ts in enumerate((0.0, 30.0, 61.0)):
        sessionizer.add(
            _classified(
                udp_packet(
                    ts=ts, src=9, dst=100 + i, sport=443, dport=40000 + i,
                    payload=QUIC_RESPONSE_PAYLOAD,
                )
            )
        )
    sessionizer.flush()
    session = sessionizer.closed[0]
    assert session.packet_count == 3
    assert len(session.dst_ips) == 3
    assert len(session.dst_ports) == 3
    assert session.message_types.get("initial") == 3
    assert session.message_types.get("handshake") == 3
    assert len(session.scids) == 1  # same response payload replayed
    assert session.max_pps == pytest.approx(2 / 60.0)


def test_session_max_pps_on_minute_slots():
    sessionizer = Sessionizer("quic-response", timeout=3000.0)
    # 10 packets in minute 0, 2 in minute 5
    for i in range(10):
        sessionizer.add(_classified(udp_packet(ts=i * 0.1, src=5, sport=443, dport=1000, payload=QUIC_RESPONSE_PAYLOAD)))
    for i in range(2):
        sessionizer.add(_classified(udp_packet(ts=300 + i, src=5, sport=443, dport=1000, payload=QUIC_RESPONSE_PAYLOAD)))
    sessionizer.flush()
    assert sessionizer.closed[0].max_pps == pytest.approx(10 / 60.0)


def test_on_close_callback():
    closed = []
    sessionizer = Sessionizer("quic-request", timeout=10.0, on_close=closed.append)
    sessionizer.add(_classified(udp_packet(ts=0.0, src=1, payload=QUIC_REQUEST_PAYLOAD)))
    sessionizer.add(_classified(udp_packet(ts=100.0, src=1, payload=QUIC_REQUEST_PAYLOAD)))
    sessionizer.flush()
    assert len(closed) == 2
    assert sessionizer.closed == []


# -- timeout sweep -----------------------------------------------------------


def test_timeout_sweep_monotone():
    sweep = TimeoutSweep()
    # source 1: gaps of 30, 120, 600 seconds
    t = 0.0
    for gap in (0, 30, 120, 600):
        t += gap
        sweep.observe(1, t)
    sweep.observe(2, 5.0)
    assert sweep.source_count == 2
    assert sweep.packet_count == 5
    assert sweep.sessions_at(10) == 5
    assert sweep.sessions_at(60) == 4
    assert sweep.sessions_at(300) == 3
    assert sweep.sessions_at(10000) == 2  # the infinity floor


def test_timeout_sweep_exclude_sources():
    sweep = TimeoutSweep()
    for ts in (0.0, 1000.0):
        sweep.observe(1, ts)
    sweep.observe(2, 0.0)
    assert sweep.sessions_at(60) == 3
    sweep.exclude_sources({1})
    assert sweep.source_count == 1
    assert sweep.sessions_at(60) == 1


def test_timeout_sweep_packet_count_cached_through_exclusion():
    sweep = TimeoutSweep()
    for ts in (0.0, 10.0, 20.0):
        sweep.observe(1, ts)
    for ts in (0.0, 5.0):
        sweep.observe(2, ts)
    assert sweep.packet_count == 5
    assert sweep.packet_count == 5  # cached, not re-summed
    sweep.exclude_sources({1})
    assert sweep.packet_count == 2
    sweep.observe(3, 1.0)
    sweep.observe(3, 2.0)
    assert sweep.packet_count == 4
    # observations for an excluded source never count
    sweep.observe(1, 30.0)
    assert sweep.packet_count == 4


def test_timeout_sweep_exclude_keeps_sorted_incremental():
    """Excluding sources subtracts their gaps from the sorted list
    in place (including duplicates) instead of forcing a re-sort."""
    sweep = TimeoutSweep()
    for source, gaps in ((1, (30.0, 120.0)), (2, (30.0, 600.0)), (3, (45.0,))):
        t = 0.0
        sweep.observe(source, t)
        for gap in gaps:
            t += gap
            sweep.observe(source, t)
    assert sweep._sorted_gaps() == [30.0, 30.0, 45.0, 120.0, 600.0]
    sweep.exclude_sources({2})
    assert sweep._sorted_gaps() == [30.0, 45.0, 120.0]
    assert sweep.sessions_at(60) == 3  # sources 1,3 + the 120 s gap
    sweep.exclude_sources({2})  # no-op repeat
    assert sweep._sorted_gaps() == [30.0, 45.0, 120.0]


def test_timeout_sweep_merge_disjoint_sources():
    a = TimeoutSweep()
    for ts in (0.0, 30.0):
        a.observe(1, ts)
    b = TimeoutSweep()
    for ts in (10.0, 70.0):
        b.observe(2, ts)
    a.merge(b)
    assert a.source_count == 2
    assert a.packet_count == 4
    assert a.sessions_at(45) == 3
    c = TimeoutSweep()
    c.observe(1, 99.0)
    with pytest.raises(ValueError):
        a.merge(c)


def test_sessionizer_merge_disjoint_sources():
    first = Sessionizer("quic-request", timeout=60.0)
    second = Sessionizer("quic-request", timeout=60.0)
    classifier = TrafficClassifier()
    first.add(classifier.classify(udp_packet(ts=0.0, src=1, payload=QUIC_REQUEST_PAYLOAD)))
    second.add(classifier.classify(udp_packet(ts=5.0, src=2, payload=QUIC_REQUEST_PAYLOAD)))
    first.flush()
    second.flush()
    first.merge(second)
    first.sort_closed()
    assert [s.source for s in first.closed] == [1, 2]
    assert first.source_count == 2
    with pytest.raises(ValueError):
        first.merge(Sessionizer("tcp-backscatter", timeout=60.0))


def test_sessionizer_merge_rejects_overlapping_sources():
    first = Sessionizer("quic-request", timeout=60.0)
    second = Sessionizer("quic-request", timeout=60.0)
    classifier = TrafficClassifier()
    first.add(classifier.classify(udp_packet(ts=0.0, src=1, payload=QUIC_REQUEST_PAYLOAD)))
    second.add(classifier.classify(udp_packet(ts=5.0, src=1, payload=QUIC_REQUEST_PAYLOAD)))
    with pytest.raises(ValueError, match="overlap"):
        first.merge(second)
    # the rejected merge must leave the target untouched
    first.flush()
    assert len(first.closed) == 1
    assert first.source_count == 1


def test_sessionizer_merge_overlap_detected_after_close():
    # overlap detection covers *seen* sources, not just open sessions
    first = Sessionizer("quic-request", timeout=60.0)
    second = Sessionizer("quic-request", timeout=60.0)
    classifier = TrafficClassifier()
    first.add(classifier.classify(udp_packet(ts=0.0, src=3, payload=QUIC_REQUEST_PAYLOAD)))
    second.add(classifier.classify(udp_packet(ts=0.0, src=3, payload=QUIC_REQUEST_PAYLOAD)))
    first.flush()
    second.flush()
    with pytest.raises(ValueError, match="overlap"):
        first.merge(second)


def test_sessionizer_merge_rejects_mismatched_timeout():
    with pytest.raises(ValueError, match="timeout"):
        Sessionizer("quic-request", timeout=60.0).merge(
            Sessionizer("quic-request", timeout=300.0)
        )


def test_timeout_sweep_merge_rejects_excluded_shard():
    target = TimeoutSweep()
    target.observe(1, 0.0)
    shard = TimeoutSweep()
    shard.observe(2, 0.0)
    shard.exclude_sources({2})
    with pytest.raises(ValueError, match="exclud"):
        target.merge(shard)
    assert target.source_count == 1  # target untouched


def test_timeout_sweep_series_and_knee():
    sweep = TimeoutSweep()
    t = 0.0
    # many 2-4 minute gaps, nothing between 5 and 60 minutes
    for i in range(200):
        sweep.observe(1, t)
        t += 150 + (i % 3) * 60
    series = sweep.sweep([1, 5, 10, 30, 60])
    counts = [count for _m, count in series]
    assert counts == sorted(counts, reverse=True)
    assert sweep.knee_minutes() <= 6
