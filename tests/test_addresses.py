"""Tests for integer IPv4 addresses and CIDR prefixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Network, format_ipv4, parse_ipv4


def test_parse_format_known():
    assert parse_ipv4("0.0.0.0") == 0
    assert parse_ipv4("255.255.255.255") == 2**32 - 1
    assert parse_ipv4("10.0.0.1") == 0x0A000001
    assert format_ipv4(0x0A000001) == "10.0.0.1"


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_ipv4(bad)


def test_format_rejects_out_of_range():
    with pytest.raises(ValueError):
        format_ipv4(-1)
    with pytest.raises(ValueError):
        format_ipv4(2**32)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_roundtrip(address):
    assert parse_ipv4(format_ipv4(address)) == address


def test_network_normalizes_host_bits():
    net = IPv4Network(parse_ipv4("10.1.2.3"), 8)
    assert net.network == parse_ipv4("10.0.0.0")


def test_slash9_telescope_size():
    # The UCSD telescope is a /9: 1/512 of IPv4.
    net = IPv4Network.from_cidr("44.0.0.0/9")
    assert net.size == 2**23
    assert net.size / 2**32 == 1 / 512


def test_membership():
    net = IPv4Network.from_cidr("192.168.0.0/16")
    assert parse_ipv4("192.168.255.255") in net
    assert parse_ipv4("192.169.0.0") not in net


def test_first_last():
    net = IPv4Network.from_cidr("10.0.0.0/30")
    assert net.first == parse_ipv4("10.0.0.0")
    assert net.last == parse_ipv4("10.0.0.3")


def test_subnets():
    net = IPv4Network.from_cidr("10.0.0.0/8")
    subs = net.subnets(10)
    assert len(subs) == 4
    assert subs[1].network == parse_ipv4("10.64.0.0")
    with pytest.raises(ValueError):
        net.subnets(7)


def test_address_at():
    net = IPv4Network.from_cidr("10.0.0.0/24")
    assert net.address_at(0) == parse_ipv4("10.0.0.0")
    assert net.address_at(255) == parse_ipv4("10.0.0.255")
    with pytest.raises(ValueError):
        net.address_at(256)


def test_cidr_requires_prefix():
    with pytest.raises(ValueError):
        IPv4Network.from_cidr("10.0.0.0")


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)
def test_network_contains_its_range(address, prefix_len):
    net = IPv4Network(address, prefix_len)
    assert net.first in net
    assert net.last in net
    assert net.last - net.first == net.size - 1
