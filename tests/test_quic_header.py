"""Tests for QUIC header parsing: long/short/retry/version negotiation."""

import pytest

from repro.quic.header import (
    HeaderParseError,
    LongHeader,
    PacketType,
    RetryPacket,
    ShortHeader,
    VersionNegotiationPacket,
    parse_header,
)
from repro.quic.versions import QUIC_V1, DRAFT_29


def _long_wire(packet_type=PacketType.INITIAL, token=b"", payload_len=20):
    header = LongHeader(
        packet_type=packet_type,
        version=QUIC_V1.value,
        dcid=b"\xaa" * 8,
        scid=b"\xbb" * 8,
        token=token,
    )
    prefix = header.pack_prefix(pn_length=1, pn_and_payload_length=payload_len)
    return prefix + bytes(payload_len)


def test_parse_initial():
    wire = _long_wire()
    view = parse_header(wire)
    assert isinstance(view, LongHeader)
    assert view.packet_type is PacketType.INITIAL
    assert view.version == QUIC_V1.value
    assert view.dcid == b"\xaa" * 8
    assert view.scid == b"\xbb" * 8
    assert view.end == len(wire)


def test_parse_initial_with_token():
    wire = _long_wire(token=b"tok-tok")
    view = parse_header(wire)
    assert view.token == b"tok-tok"


def test_parse_handshake():
    wire = _long_wire(packet_type=PacketType.HANDSHAKE)
    view = parse_header(wire)
    assert view.packet_type is PacketType.HANDSHAKE
    assert view.token == b""


def test_start_and_end_offsets_in_coalesced_buffer():
    first = _long_wire()
    second = _long_wire(packet_type=PacketType.HANDSHAKE)
    buffer = first + second
    view1 = parse_header(buffer, 0)
    assert (view1.start, view1.end) == (0, len(first))
    view2 = parse_header(buffer, view1.end)
    assert (view2.start, view2.end) == (len(first), len(buffer))
    assert view2.packet_type is PacketType.HANDSHAKE


def test_short_header_parse():
    wire = bytes([0x40]) + b"\x01" * 20
    view = parse_header(wire)
    assert isinstance(view, ShortHeader)
    assert view.packet_type is PacketType.ONE_RTT
    assert view.dcid_assuming_length(8) == b"\x01" * 8


def test_short_header_spin_bit():
    assert parse_header(bytes([0x60]) + b"\x00" * 20).spin_bit
    assert not parse_header(bytes([0x40]) + b"\x00" * 20).spin_bit


def test_short_header_without_fixed_bit_rejected():
    with pytest.raises(HeaderParseError):
        parse_header(bytes([0x00]) + b"\x00" * 20)


def test_version_negotiation_roundtrip():
    packet = VersionNegotiationPacket(
        dcid=b"\x01" * 4,
        scid=b"\x02" * 4,
        supported_versions=(QUIC_V1.value, DRAFT_29.value),
    )
    view = parse_header(packet.serialize())
    assert isinstance(view, VersionNegotiationPacket)
    assert view.supported_versions == (QUIC_V1.value, DRAFT_29.value)
    assert view.dcid == b"\x01" * 4


def test_version_negotiation_malformed_list_rejected():
    packet = VersionNegotiationPacket(b"", b"", (QUIC_V1.value,)).serialize()
    with pytest.raises(HeaderParseError):
        parse_header(packet + b"\x00")  # list not multiple of 4


def test_retry_roundtrip():
    packet = RetryPacket(
        version=QUIC_V1.value,
        dcid=b"\x0a" * 8,
        scid=b"\x0b" * 8,
        token=b"token-bytes",
        integrity_tag=b"\x0c" * 16,
    )
    view = parse_header(packet.serialize())
    assert isinstance(view, RetryPacket)
    assert view.token == b"token-bytes"
    assert view.integrity_tag == b"\x0c" * 16


def test_retry_shorter_than_tag_rejected():
    packet = RetryPacket(
        version=QUIC_V1.value, dcid=b"", scid=b"", token=b"", integrity_tag=b"\x00" * 16
    ).serialize()
    with pytest.raises(HeaderParseError):
        parse_header(packet[:-10])


def test_empty_buffer_rejected():
    with pytest.raises(HeaderParseError):
        parse_header(b"")


def test_truncated_long_header_rejected():
    with pytest.raises(HeaderParseError):
        parse_header(bytes([0xC0, 0x00, 0x00]))


def test_cid_longer_than_20_rejected():
    wire = bytearray(_long_wire())
    wire[5] = 21  # dcid length byte
    with pytest.raises(HeaderParseError):
        parse_header(bytes(wire))


def test_long_header_without_fixed_bit_rejected():
    wire = bytearray(_long_wire())
    wire[0] &= ~0x40
    with pytest.raises(HeaderParseError):
        parse_header(bytes(wire))


def test_truncated_payload_rejected():
    wire = _long_wire(payload_len=100)
    with pytest.raises(HeaderParseError):
        parse_header(wire[:-50])


def test_payload_too_short_for_sample_rejected():
    wire = _long_wire(payload_len=3)
    with pytest.raises(HeaderParseError):
        parse_header(wire)


def test_pack_prefix_rejects_bad_pn_length():
    header = LongHeader(PacketType.INITIAL, QUIC_V1.value, b"", b"")
    with pytest.raises(HeaderParseError):
        header.pack_prefix(pn_length=5, pn_and_payload_length=10)


def test_pack_prefix_rejects_oversized_cid():
    header = LongHeader(PacketType.INITIAL, QUIC_V1.value, b"\x00" * 21, b"")
    with pytest.raises(HeaderParseError):
        header.pack_prefix(pn_length=1, pn_and_payload_length=10)
