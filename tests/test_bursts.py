"""Tests for burst pre-screening over telescope time series."""

import pytest

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.bursts import Burst, BurstDetector, burstiness, detect_bursts
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR


def test_flat_series_no_bursts():
    assert detect_bursts({i: 10 for i in range(50)}) == []


def test_single_spike_flagged():
    series = {i: 10 for i in range(50)}
    series[30] = 200
    bursts = detect_bursts(series)
    assert [b.bucket for b in bursts] == [30]
    assert bursts[0].excess_sigmas > 3


def test_gaps_count_as_zero():
    series = {0: 10, 1: 10, 2: 10, 3: 10, 20: 300}  # silent stretch then spike
    bursts = detect_bursts(series)
    assert 20 in [b.bucket for b in bursts]


def test_sustained_shift_absorbed():
    """A level shift fires at first, then becomes the new baseline."""
    series = {i: 10 for i in range(20)}
    series.update({i: 100 for i in range(20, 60)})
    bursts = detect_bursts(series)
    buckets = [b.bucket for b in bursts]
    assert 20 in buckets
    assert all(b < 30 for b in buckets)  # absorbed within a few buckets


def test_small_counts_suppressed():
    series = {i: 0 for i in range(30)}
    series[15] = 4  # below min_count
    assert detect_bursts(series, min_count=5.0) == []


def test_warmup_suppresses_first_buckets():
    detector = BurstDetector(warmup=3)
    assert detector.update(0, 1000.0) is None  # no baseline yet


def test_detector_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BurstDetector(alpha=0.0)
    with pytest.raises(ValueError):
        BurstDetector(threshold_sigmas=0)


def test_empty_series():
    assert detect_bursts({}) == []
    assert burstiness({}) == 0.0


def test_burstiness_orders_series():
    stable = {i: 100 + (i % 3) for i in range(48)}
    erratic = {i: (500 if i % 7 == 0 else 5) for i in range(48)}
    assert burstiness(erratic) > burstiness(stable)
    assert burstiness({0: 0, 1: 0}) == 0.0


def test_responses_more_erratic_than_requests_on_scenario():
    """The Figure 3 contrast, quantified: response burstiness exceeds
    request burstiness, and flagged response bursts line up with hours
    that contain detected floods."""
    scenario = Scenario(
        ScenarioConfig(seed=21, duration=12 * HOUR, research_sample=1 / 2048)
    )
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        config=AnalysisConfig(retry_probe_count=0),
    )
    result = pipeline.process(scenario.packets())
    assert burstiness(result.hourly_responses) > burstiness(result.hourly_requests)

    bursts = detect_bursts(result.hourly_responses, threshold_sigmas=2.0)
    if bursts:  # when the screen fires, it must point at real floods
        attack_hours = set()
        for attack in result.quic_attacks:
            for hour in range(int(attack.start // HOUR), int(attack.end // HOUR) + 1):
                attack_hours.add(hour)
        flagged = {b.bucket for b in bursts}
        assert flagged & attack_hours
